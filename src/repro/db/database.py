"""The public database facade.

:class:`Database` ties everything together: DDL, DML (trickle and bulk),
querying via SQL or via logical plans, EXPLAIN, and the maintenance
operations the paper describes (tuple mover, REBUILD, archival toggles).

>>> from repro import Database, types
>>> db = Database()
>>> db.sql("CREATE TABLE t (a INT, b VARCHAR)")
>>> db.sql("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
>>> db.sql("SELECT a FROM t WHERE b = 'x'").rows
[(1,)]
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..errors import BindingError, CatalogError, PlanningError, StorageError, TxnError
from ..governance import QueryContext, get_query_registry, governed
from ..governance import context as governance
from ..mvcc import EpochManager
from ..exec.expressions import Column, Expr
from ..exec.operators.scan import ColumnStoreScan
from ..exec.row_engine import RID_COLUMN, RowTableScan
from ..observability import ExecutionStats
from ..observability import registry as metrics
from ..planner.logical import LogicalNode, LogicalScan
from ..planner.optimizer import Optimizer, PhysicalPlan
from ..planner.schema_infer import infer_output_dtypes
from ..schema import TableSchema
from ..storage.config import StoreConfig
from ..txn import AUTO_COMMIT_TXN, TxnContext
from ..types import DataType
from ..wal.record import WalRecordType
from .catalog import Catalog, StorageKind, Table


@dataclass
class Result:
    """A query result: column names, types and presented Python rows.

    ``stats`` is the :class:`~repro.observability.ExecutionStats` handle
    when the query ran with ``stats=True`` (per-operator runtime counters
    plus the storage-counter delta), else ``None``.
    """

    columns: list[str]
    dtypes: list[DataType]
    rows: list[tuple[Any, ...]]
    stats: ExecutionStats | None = field(default=None, compare=False)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def to_pydict(self) -> dict[str, list[Any]]:
        return {
            name: [row[i] for row in self.rows] for i, name in enumerate(self.columns)
        }

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise PlanningError(
                f"scalar() needs a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Result(columns={self.columns}, rows={len(self.rows)})"


class Database:
    """An in-process analytic database with columnstore + batch mode."""

    def __init__(self, default_config: StoreConfig | None = None) -> None:
        self.catalog = Catalog()
        self.optimizer = Optimizer(self.catalog)
        self.default_config = default_config or StoreConfig()
        # Write-ahead log, attached by open()/load(); facade statements
        # append a redo record before mutating in-memory state. Direct
        # Table-level mutations bypass the log — durability covers the
        # facade surface, which is also what SQL goes through.
        self._wal = None
        self._wal_root: str | None = None
        # Fingerprint of the state the last save/load at a path captured:
        # save() skips rewriting an unchanged snapshot.
        self._save_fingerprint: tuple | None = None
        self._catalog_epoch = 0
        # Open explicit transaction (None outside BEGIN..COMMIT). The id
        # allocator only serves WAL-less databases; with a WAL the txn id
        # is the LSN of its TXN_BEGIN marker.
        self._txn: TxnContext | None = None
        self._next_txn_id = 1
        # MVCC: one epoch clock + reader registry shared by every table
        # (DESIGN.md "Multi-versioning"). Columnstore indexes are born
        # with a private manager; create_table and load() swap this one
        # in so commits across tables advance one clock.
        self.mvcc = EpochManager()
        # Hot backups currently copying (repro.backup): while nonzero,
        # save() defers the checkpoint so neither snapshot GC nor WAL
        # truncation can delete files a backup is reading.
        self._backups_in_flight = 0
        # Governance settings (statement_timeout / query_memory_budget /
        # query_memory_limit); sessions overlay their own on top.
        self.settings: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Write-ahead logging plumbing
    # ------------------------------------------------------------------ #
    @property
    def wal(self):
        """The attached :class:`~repro.wal.WriteAheadLog`, or ``None``."""
        return self._wal

    def _log(self, rtype: WalRecordType, table: str, payload: bytes) -> None:
        """Append + commit one statement's redo record (no-op when no WAL).

        Callers must have fully validated the statement first: a logged
        record is a promise that replay can apply it.
        """
        if self._wal is not None:
            self._wal.log_statement(rtype, table, payload)

    def set_durability(self, mode: str) -> None:
        """Switch the WAL durability mode (per-commit / group / off)."""
        if self._wal is None:
            raise StorageError(
                "no write-ahead log attached (use Database.open to get one)"
            )
        self._wal.set_durability(mode)

    def close(self) -> None:
        """Flush any pending group-commit window. Safe to call twice.

        An open transaction is rolled back first — close() without
        COMMIT means the work was never promised. Reader leases still
        registered at close are released *loudly*: a leaked lease would
        have pinned the GC horizon forever, so it is a caller bug worth
        a warning and a counter, not something to ignore quietly.
        """
        if self._txn is not None:
            # Teardown path: pass the transaction's own owner tag so an
            # abandoned session transaction still rolls back cleanly.
            self.rollback(self._txn.owner)
        leaked = self.mvcc.readers.release_all()
        if leaked:
            import warnings

            metrics.increment("mvcc.leases_leaked", leaked)
            warnings.warn(
                f"Database.close() released {leaked} reader lease(s) that "
                "were never released — a session forgot release_snapshot()",
                ResourceWarning,
                stacklevel=2,
            )
        if self._wal is not None:
            self._wal.close()

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #
    # Two guarantees, layered (see DESIGN.md "Transactions"):
    #
    # * **Statement atomicity** — every DML statement runs against a
    #   TxnContext that accumulates physical undo actions at each
    #   mutation point; an exception mid-statement rolls the in-memory
    #   state back to exactly the pre-statement state, and apply-then-log
    #   ordering means a failed statement is never in the log at all.
    # * **Multi-statement transactions** — BEGIN defers durability:
    #   statements append WAL records stamped with the txn id but do not
    #   fsync; COMMIT appends a TXN_COMMIT marker and makes the batch
    #   durable in one commit; ROLLBACK undoes the accumulated in-memory
    #   effects and logs a TXN_ABORT. Replay applies only records whose
    #   transaction committed, so a crash mid-transaction recovers to the
    #   last commit point.
    @property
    def in_transaction(self) -> bool:
        """Is an explicit BEGIN..COMMIT/ROLLBACK transaction open?"""
        return self._txn is not None

    def begin(self, owner: str | None = None) -> None:
        """Open an explicit transaction (SQL ``BEGIN``).

        Nested transactions are not supported: BEGIN inside an open
        transaction is an error rather than a silent commit-and-restart.

        ``owner`` tags the transaction with the session that opened it
        (the concurrency layer passes the session name): COMMIT and
        ROLLBACK then verify the same owner is ending it, so one session
        can never commit or abort another session's work.
        """
        if self._txn is not None:
            raise TxnError(
                "a transaction is already open (COMMIT or ROLLBACK it first; "
                "nested transactions are not supported)"
            )
        if self._wal is not None:
            # The begin marker's own LSN doubles as the transaction id,
            # which makes ids unique, ordered, and free.
            txn_id = self._wal.last_lsn + 1
            self._wal.append(WalRecordType.TXN_BEGIN, "", b"", txn_id)
        else:
            txn_id = self._next_txn_id
            self._next_txn_id += 1
        self._txn = TxnContext(txn_id, owner=owner)
        metrics.increment("txn.begins")

    def commit(self, owner: str | None = None) -> None:
        """Make the open transaction's work permanent (SQL ``COMMIT``)."""
        txn = self._require_txn("COMMIT", owner)
        # MVCC: install the transaction's stamps at a fresh epoch before
        # the commit marker is logged — the marker records the epoch so
        # replay can fast-forward the clock past it. Transactions that
        # touched no versioned storage (read-only, rowstore-only) skip
        # epoch allocation entirely.
        hooks = txn.take_commit_hooks()
        epoch = self.mvcc.commit(hooks) if hooks else None
        if self._wal is not None:
            from ..wal import replay as walreplay

            # The commit marker is what promotes the transaction's
            # records from "present in the log" to "applied by replay";
            # wal.commit() then makes the whole batch durable per the
            # configured durability mode — one fsync for N statements.
            payload = (
                walreplay.encode_json({"epoch": epoch}) if epoch is not None else b""
            )
            self._wal.append(WalRecordType.TXN_COMMIT, "", payload, txn.txn_id)
            self._wal.commit()
        txn.discard()
        self._txn = None
        metrics.increment("txn.commits")

    def rollback(self, owner: str | None = None) -> None:
        """Undo the open transaction's work (SQL ``ROLLBACK``)."""
        txn = self._require_txn("ROLLBACK", owner)
        # Undo in-memory effects first: if an undo action itself fails,
        # the abort marker must not already claim the rollback happened.
        txn.rollback()
        self._txn = None
        if self._wal is not None:
            self._wal.append(WalRecordType.TXN_ABORT, "", b"", txn.txn_id)
            self._wal.commit()
        metrics.increment("txn.rollbacks")

    @contextmanager
    def transaction(self):
        """``with db.transaction():`` — commit on success, rollback on error."""
        self.begin()
        try:
            yield self
        except BaseException:
            if self._txn is not None:
                self.rollback()
            raise
        else:
            if self._txn is not None:
                self.commit()

    def _require_txn(self, verb: str, owner: str | None = None) -> TxnContext:
        if self._txn is None:
            raise TxnError(f"{verb} outside a transaction (no BEGIN is open)")
        # A transaction opened by a session may only be ended by that
        # session. Direct (ownerless) use stays unrestricted so existing
        # single-caller code and WAL replay are unaffected.
        if self._txn.owner is not None and owner != self._txn.owner:
            raise TxnError(
                f"{verb} by session {owner!r} on a transaction owned by "
                f"session {self._txn.owner!r}"
            )
        return self._txn

    def _require_no_txn(self, operation: str) -> None:
        """Refuse operations that cannot serialize against an open txn.

        Checkpoints (save) and maintenance reorganizations (tuple mover,
        REBUILD, archival) are logged, non-undoable operations; running
        one mid-transaction would either bake uncommitted state into a
        snapshot or create log records that replay cannot order against
        the transaction's outcome.
        """
        if self._txn is not None:
            raise TxnError(
                f"{operation} is not allowed inside an open transaction — "
                "COMMIT or ROLLBACK first"
            )

    @contextmanager
    def _atomic_statement(self):
        """Statement-level atomicity scope for one DML/DDL statement.

        Yields the transaction context mutators record undo into. Inside
        an explicit transaction this is a savepoint: a failure rolls back
        to the statement start but the transaction stays open (and
        usable), matching SQL statement semantics. In auto-commit mode a
        throwaway context serves the same purpose and its undo log is
        discarded on success.
        """
        if self._txn is not None:
            txn = self._txn
            mark = txn.savepoint()
            try:
                yield txn
            except BaseException:
                txn.rollback_to(mark)
                metrics.increment("txn.statement_rollbacks")
                raise
            else:
                txn.statements += 1
        else:
            txn = TxnContext(AUTO_COMMIT_TXN)
            try:
                yield txn
            except BaseException:
                txn.rollback()
                metrics.increment("txn.statement_rollbacks")
                raise
            else:
                # Auto-commit: the statement IS the transaction, so its
                # MVCC stamps install at a fresh epoch right here.
                hooks = txn.take_commit_hooks()
                if hooks:
                    self.mvcc.commit(hooks)
                txn.discard()

    def _log_dml(self, rtype: WalRecordType, table: str, payload: bytes) -> None:
        """Log one applied statement (append-only inside a transaction).

        Auto-commit statements append **and** commit (their frame is the
        commit unit, as before). Inside an explicit transaction the
        record is stamped with the txn id and merely appended — it only
        becomes meaningful to replay if the TXN_COMMIT marker lands, and
        durability waits for :meth:`commit`.
        """
        if self._wal is None:
            return
        if self._txn is not None:
            self._wal.append(rtype, table, payload, self._txn.txn_id)
        else:
            self._wal.log_statement(rtype, table, payload)

    def _bump_epoch(self, txn: TxnContext) -> None:
        previous = self._catalog_epoch
        txn.record(
            f"restore catalog epoch to {previous}",
            lambda: setattr(self, "_catalog_epoch", previous),
        )
        self._catalog_epoch += 1

    # ------------------------------------------------------------------ #
    # DDL
    # ------------------------------------------------------------------ #
    def create_table(
        self,
        name: str,
        schema: TableSchema,
        storage: StorageKind | str = StorageKind.COLUMNSTORE,
        config: StoreConfig | None = None,
    ) -> Table:
        if isinstance(storage, str):
            storage = StorageKind(storage)
        if self.catalog.has_table(name):
            raise CatalogError(f"table {name!r} already exists")
        config = config or self.default_config
        with self._atomic_statement() as txn:
            table = self.catalog.create_table(name, schema, storage, config)
            if table.columnstore is not None:
                table.columnstore.attach_mvcc(self.mvcc)
            txn.record(
                f"un-create table {name}",
                lambda: self.catalog.drop_table(name),
            )
            self._bump_epoch(txn)
            if self._wal is not None:
                from ..storage import persist
                from ..wal import replay as walreplay

                self._log_dml(
                    WalRecordType.CREATE_TABLE,
                    name,
                    walreplay.encode_json(
                        {
                            "schema": persist.schema_to_json(schema),
                            "storage": storage.value,
                            "config": persist.config_to_json(config),
                        }
                    ),
                )
        return table

    def drop_table(self, name: str) -> None:
        if not self.catalog.has_table(name):
            raise CatalogError(f"unknown table {name!r}")
        with self._atomic_statement() as txn:
            dropped = self.catalog.table(name)
            self.catalog.drop_table(name)
            txn.record(
                f"restore dropped table {name}",
                lambda: self.catalog.restore_table(dropped),
            )
            self._bump_epoch(txn)
            self._log_dml(WalRecordType.DROP_TABLE, name, b"")

    def create_index(self, table: str, index_name: str, columns: list[str]):
        """Create a secondary row-store index (the logged DDL path)."""
        target = self.catalog.table(table)
        if target.rowstore is None:
            raise CatalogError(f"table {target.name!r} has no row store to index")
        if index_name in target.indexes:
            raise CatalogError(f"index {index_name!r} already exists")
        with self._atomic_statement() as txn:
            index = target.create_index(index_name, list(columns))
            txn.record(
                f"un-create index {index_name}",
                lambda: target.indexes.pop(index_name, None),
            )
            self._bump_epoch(txn)
            if self._wal is not None:
                from ..wal import replay as walreplay

                self._log_dml(
                    WalRecordType.CREATE_INDEX,
                    target.name,
                    walreplay.encode_json(
                        {"name": index_name, "columns": list(columns)}
                    ),
                )
        return index

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # ------------------------------------------------------------------ #
    # DML
    # ------------------------------------------------------------------ #
    # DML statements share one shape: validate and coerce *before* the
    # atomic scope (a failure there touches nothing), then apply with
    # undo recording, then log. Apply-then-log means a statement that
    # fails mid-apply is rolled back to the exact pre-statement state
    # AND never reaches the log — replay cannot diverge from memory.
    def insert(self, table: str, rows: Sequence[Sequence[Any]]) -> int:
        """Trickle-insert rows (columnstores route through delta stores)."""
        target = self.catalog.table(table)
        physical = [target.schema.coerce_row(row) for row in rows]
        with self._atomic_statement() as txn:
            count = target.insert_physical_rows(physical, txn)
            if self._wal is not None:
                from ..storage import persist

                # Log the already-coerced rows: coercion is not idempotent
                # (DECIMAL coercion scales ints), so replay must not redo it.
                self._log_dml(
                    WalRecordType.INSERT,
                    target.name,
                    persist.serialize_rows(target.schema, physical),
                )
        return count

    def bulk_load(self, table: str, rows: Sequence[Sequence[Any]]) -> int:
        """Bulk-load rows (large loads compress directly into row groups)."""
        target = self.catalog.table(table)
        physical = [target.schema.coerce_row(row) for row in rows]
        with self._atomic_statement() as txn:
            count = target.bulk_load_physical(physical, txn)
            if self._wal is not None:
                from ..storage import persist

                self._log_dml(
                    WalRecordType.BULK_LOAD,
                    target.name,
                    persist.serialize_rows(target.schema, physical),
                )
        return count

    def delete_where(self, table: str, predicate: Expr | None) -> int:
        """DELETE ... WHERE: runs the predicate against every storage.

        Returns the number of *logical* rows deleted — on BOTH-storage
        tables each logical row lives in two storages, and the count is
        authoritative regardless of which storages held it
        (:meth:`Table.delete_rows`).
        """
        target = self.catalog.table(table)
        # Resolve the predicate to locators *before* mutating: the redo
        # record carries locators, not the predicate, so replay is
        # independent of scan order (and predicates need no serializer).
        rids = (
            self._matching_rids(target, predicate)
            if target.rowstore is not None
            else []
        )
        locators = (
            self._matching_locators(target, predicate)
            if target.columnstore is not None
            else []
        )
        with self._atomic_statement() as txn:
            deleted = target.delete_rows(rids, locators, txn)
            if self._wal is not None and (rids or locators):
                from ..wal import replay as walreplay

                self._log_dml(
                    WalRecordType.DELETE,
                    target.name,
                    walreplay.encode_json(walreplay.encode_locators(rids, locators)),
                )
        return deleted

    def update_where(
        self,
        table: str,
        assignments: dict[str, Expr],
        predicate: Expr | None,
    ) -> int:
        """UPDATE ... SET ... WHERE, executed as delete + insert."""
        target = self.catalog.table(table)
        names = target.schema.names
        unknown = set(assignments) - set(names)
        if unknown:
            raise CatalogError(f"unknown columns in SET: {sorted(unknown)}")
        matched = self._matching_rows(target, predicate)
        if not matched:
            return 0

        def resolver(column: str):
            return target.schema.dtype(column)

        # Each assignment expression presents through ITS inferred type:
        # e.g. `amount * 2` was descaled by the binder and is already a
        # user-space float, while a bare column reference is physical.
        expr_dtypes: dict[str, DataType] = {}
        for name, expr in assignments.items():
            try:
                expr_dtypes[name] = expr.infer_dtype(resolver)
            except Exception:
                expr_dtypes[name] = target.schema.dtype(name)
        new_rows = []
        for row in matched:
            row_map = dict(zip(names, row))
            new_row = []
            for name in names:
                if name in assignments:
                    physical = assignments[name].eval_row(row_map)
                    new_row.append(expr_dtypes[name].present(physical))
                else:
                    new_row.append(target.schema.dtype(name).present(row_map[name]))
            new_rows.append(tuple(new_row))
        physical_rows = [target.schema.coerce_row(row) for row in new_rows]
        rids = (
            self._matching_rids(target, predicate)
            if target.rowstore is not None
            else []
        )
        locators = (
            self._matching_locators(target, predicate)
            if target.columnstore is not None
            else []
        )
        with self._atomic_statement() as txn:
            target.delete_by_locators(rids, txn)
            target.delete_by_locators(locators, txn)
            target.insert_physical_rows(physical_rows, txn)
            if self._wal is not None:
                from ..wal import replay as walreplay

                # One compound record: UPDATE is delete + insert, and losing
                # one half of that to a crash would corrupt, so both travel
                # in a single frame (the unit of atomicity).
                self._log_dml(
                    WalRecordType.UPDATE,
                    target.name,
                    walreplay.encode_update(
                        target.schema, rids, locators, physical_rows
                    ),
                )
        return len(new_rows)

    def _matching_rids(self, target: Table, predicate: Expr | None) -> list[Any]:
        assert target.rowstore is not None
        scan = RowTableScan(
            target.rowstore,
            target.schema.names,
            predicate=predicate,
            include_rids=True,
        )
        return [row[RID_COLUMN] for row in scan.rows()]

    def _matching_locators(self, target: Table, predicate: Expr | None) -> list[Any]:
        assert target.columnstore is not None
        scan = ColumnStoreScan(
            target.columnstore,
            target.schema.names,
            predicate=predicate,
            include_locators=True,
        )
        locators: list[Any] = []
        for batch in scan.batches():
            dense = batch.compact()
            if dense.locators is not None:
                locators.extend(dense.locators.tolist())
        return locators

    def _matching_rows(self, target: Table, predicate: Expr | None) -> list[tuple]:
        if target.rowstore is not None:
            scan = RowTableScan(target.rowstore, target.schema.names, predicate=predicate)
            names = target.schema.names
            return [tuple(row[n] for n in names) for row in scan.rows()]
        assert target.columnstore is not None
        scan = ColumnStoreScan(
            target.columnstore, target.schema.names, predicate=predicate
        )
        rows: list[tuple] = []
        for batch in scan.batches():
            rows.extend(batch.to_rows())
        return rows

    # ------------------------------------------------------------------ #
    # Governance (settings + query contexts)
    # ------------------------------------------------------------------ #
    _SETTING_NAMES = ("statement_timeout", "query_memory_budget", "query_memory_limit")

    def set_setting(self, name: str, value: int | None) -> None:
        """Set a governance setting (``SET name = value``).

        ``statement_timeout`` is milliseconds; the memory settings are
        bytes. ``None`` (SET ... = DEFAULT / OFF) clears the setting.
        Zero and negative values also clear — "0 = disabled" matches the
        usual server convention for statement_timeout.
        """
        name = name.lower()
        if name not in self._SETTING_NAMES:
            raise BindingError(
                f"unknown setting {name!r} (expected one of "
                f"{', '.join(self._SETTING_NAMES)})"
            )
        if value is None or value <= 0:
            self.settings.pop(name, None)
        else:
            self.settings[name] = int(value)

    def get_setting(self, name: str) -> int | None:
        name = name.lower()
        if name not in self._SETTING_NAMES:
            raise BindingError(
                f"unknown setting {name!r} (expected one of "
                f"{', '.join(self._SETTING_NAMES)})"
            )
        return self.settings.get(name)

    def new_query_context(
        self,
        sql: str = "",
        session: str | None = None,
        settings: dict[str, int] | None = None,
    ) -> QueryContext:
        """A registered-id :class:`QueryContext` for one statement.

        ``settings`` (a session overlay) wins over the database-level
        settings; both fall back to "no limit" when unset.
        """
        effective = dict(self.settings)
        if settings:
            effective.update(settings)
        return QueryContext(
            get_query_registry().next_query_id(),
            sql=sql,
            session=session,
            timeout_ms=effective.get("statement_timeout"),
            memory_budget_bytes=effective.get("query_memory_budget"),
            memory_limit_bytes=effective.get("query_memory_limit"),
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def scan_plan(self, table: str, columns: list[str] | None = None) -> LogicalScan:
        """A logical scan of a table (start of a hand-built plan)."""
        target = self.catalog.table(table)
        names = columns if columns is not None else target.schema.names
        return LogicalScan(
            table=target.name,
            projections={name: target.schema.column(name).name for name in names},
        )

    def compile(self, plan: LogicalNode, **options: Any) -> PhysicalPlan:
        """Optimize + build a physical plan (see Optimizer.compile)."""
        return self.optimizer.compile(plan, **options)

    def execute(self, plan: LogicalNode, stats: bool = False, **options: Any) -> Result:
        """Run a logical plan and present results as Python values.

        With ``stats=True`` the plan executes under per-operator stats
        collection and the returned :class:`Result` carries an
        :class:`~repro.observability.ExecutionStats` handle — collection
        never changes the produced rows, only observes them.

        Plans run under a :class:`~repro.governance.QueryContext` — the
        database's ``statement_timeout`` / memory settings apply, and the
        statement appears in ``SHOW QUERIES`` until it finishes. When a
        context is already active (a session governs its statements, or a
        subquery executes inside an outer statement) the outer context
        keeps governing and no new one is created.
        """
        if governance.current() is not None:
            physical, dtypes = self._prepare(plan, **options)
            return self._run_physical(physical, dtypes, stats=stats)
        ctx = self.new_query_context(sql=f"<plan:{type(plan).__name__}>")
        with governed(ctx):
            physical, dtypes = self._prepare(plan, **options)
            return self._run_physical(physical, dtypes, stats=stats)

    def _prepare(self, plan: LogicalNode, **options: Any):
        """Compile a logical plan and resolve output dtypes (no execution).

        Split from :meth:`execute` for the concurrency layer: a session
        compiles under the shared catalog lock, pins the physical plan's
        scan leaves to a snapshot, then releases the lock and runs
        :meth:`_run_physical` lock-free.
        """
        dtypes_by_name = infer_output_dtypes(plan, self.catalog)
        physical = self.optimizer.compile(plan, **options)
        dtypes = [dtypes_by_name[name] for name in physical.columns]
        return physical, dtypes

    def _run_physical(self, physical, dtypes, stats: bool = False) -> Result:
        """Execute a compiled plan and present results as Python values."""
        execution_stats: ExecutionStats | None = None
        if stats:
            raw_rows, execution_stats = physical.run_with_stats()
        else:
            raw_rows = physical.rows()
        rows = [
            tuple(dtype.present(value) for dtype, value in zip(dtypes, row))
            for row in raw_rows
        ]
        return Result(
            columns=physical.columns, dtypes=dtypes, rows=rows, stats=execution_stats
        )

    def sql(self, text: str, **options: Any) -> Result | None:
        """Execute a SQL statement; queries return a :class:`Result`.

        Queries and DML run under a fresh :class:`QueryContext` (unless
        one is already active); transaction control, SET/SHOW/KILL and
        DDL are control-plane statements and stay ungoverned — KILL must
        work even when the system is saturated with governed statements.
        """
        from ..sql import ast as A
        from ..sql.parser import parse_statement
        from ..sql.runner import run_parsed

        statement = parse_statement(text)
        ungoverned = (
            A.BeginStatement,
            A.CommitStatement,
            A.RollbackStatement,
            A.SetStatement,
            A.ShowStatement,
            A.KillStatement,
            A.CreateTableStatement,
            A.DropTableStatement,
        )
        if governance.current() is not None or isinstance(statement, ungoverned):
            return run_parsed(self, statement, **options)
        with governed(self.new_query_context(sql=text)):
            return run_parsed(self, statement, **options)

    def explain(self, text_or_plan: str | LogicalNode, **options: Any) -> str:
        """The optimized logical + physical plan as text."""
        if isinstance(text_or_plan, str):
            from ..sql.runner import plan_query

            plan = plan_query(self, text_or_plan)
        else:
            plan = text_or_plan
        return self.optimizer.compile(plan, **options).explain()

    def explain_analyze(self, text_or_plan: str | LogicalNode, **options: Any) -> str:
        """Execute a query and render the plan with runtime operator stats."""
        if isinstance(text_or_plan, str):
            from ..sql.runner import plan_query

            plan = plan_query(self, text_or_plan)
        else:
            plan = text_or_plan
        return self.optimizer.compile(plan, **options).explain_analyze()

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def _fingerprint(self, resolved_path: str) -> tuple:
        """State identity used to skip re-saving an unchanged database.

        Covers the target path, DDL history (catalog epoch) and every
        table's data version. Direct ``Table.create_index`` calls bypass
        the epoch — use :meth:`create_index` for skip-accurate DDL.
        """
        return (
            resolved_path,
            self._catalog_epoch,
            tuple(
                (name, self.catalog.table(name)._data_version)
                for name in self.catalog.table_names()
            ),
        )

    def save(self, path: str, disk=None, force: bool = False) -> None:
        """Persist the whole database to a directory, crash-safely.

        Compressed segments are written as immutable blobs (one file per
        segment, the paper's LOB model); delta stores, delete bitmaps and
        row-store heaps are serialized row-wise; the catalog is JSON.

        Every save is a fresh checksummed snapshot committed by a single
        atomic manifest rename (:mod:`repro.storage.snapshot`): a crash
        at any point leaves either the previous save or this one — never
        a hybrid. ``disk`` is the I/O abstraction (tests inject a
        :class:`~repro.storage.diskio.FaultyDisk`).

        With a WAL attached, a save doubles as a **checkpoint**: the
        manifest records the log's last LSN and every fully covered
        segment is truncated afterwards. A save whose state is identical
        to what the path already holds is skipped entirely (pass
        ``force=True`` to override).
        """
        import json
        from pathlib import Path

        from ..observability import registry as obs_metrics
        from ..storage import persist
        from ..storage.diskio import DiskIO
        from ..storage.snapshot import MANIFEST_NAME, SnapshotWriter

        # A snapshot taken mid-transaction would bake uncommitted state
        # into the base image (and truncate the log segments replay
        # would need to undo-by-omission). Refuse; the checkpoint runs
        # after COMMIT/ROLLBACK.
        self._require_no_txn("save (checkpoint)")
        if self._backups_in_flight > 0:
            # A hot backup is copying this directory: a checkpoint now
            # would garbage-collect the snapshot directory and truncate
            # the WAL segments the copy is reading. Defer — the WAL
            # keeps everything recoverable until the next checkpoint.
            obs_metrics.increment("backup.checkpoints_deferred")
            return
        disk = disk or DiskIO()
        root = Path(path)
        resolved = str(root.resolve())
        fingerprint = self._fingerprint(resolved)
        if (
            not force
            and fingerprint == self._save_fingerprint
            and disk.exists(root / MANIFEST_NAME)
        ):
            obs_metrics.increment("storage.snapshot.saves_skipped")
            return
        wal = self._wal if self._wal is not None and self._wal_root == resolved else None
        checkpoint_lsn = 0
        if wal is not None:
            # Everything the snapshot will contain must be durable in the
            # log first, or a crash mid-save could lose committed work.
            wal.flush()
            checkpoint_lsn = wal.last_lsn
        writer = SnapshotWriter(disk, root)
        catalog_entries = []
        for name in self.catalog.table_names():
            table = self.catalog.table(name)
            entry = {
                "name": table.name,
                "schema": persist.schema_to_json(table.schema),
                "storage": table.storage_kind.value,
                "config": persist.config_to_json(table.config),
                "indexes": {
                    index_name: index.columns
                    for index_name, index in table.indexes.items()
                },
            }
            catalog_entries.append(entry)
            if table.columnstore is not None:
                persist.save_columnstore(table.columnstore, writer, table.name)
            if table.rowstore is not None:
                rows = [row for _, row in table.rowstore.scan()]
                writer.write(
                    f"{table.name}/rowstore.rows",
                    persist.serialize_rows(table.schema, rows),
                )
        writer.write(
            "catalog.json", json.dumps(catalog_entries, indent=1).encode("utf-8")
        )
        writer.commit(checkpoint_lsn=checkpoint_lsn)
        if writer.committed:
            # Only a read-back-verified manifest licenses destroying log
            # segments (a dropped rename means the old snapshot is still
            # the live one and its log tail is still needed).
            if wal is not None:
                wal.truncate_covered(checkpoint_lsn)
            self._save_fingerprint = fingerprint

    def backup(self, dest: str, disk=None, barrier_hook=None):
        """Hot-backup this database into the fresh directory ``dest``.

        Takes a consistent, checksummed image — base snapshot, covered
        WAL prefix clipped at the backup LSN — while writers keep
        committing (:mod:`repro.backup.backup`). The backup pins an MVCC
        reader lease for its duration; restoring the image reproduces
        exactly the pinned epoch's visible state. Returns a
        :class:`~repro.backup.backup.BackupResult`.

        Single-caller use only — sessions go through
        :meth:`ConcurrentDatabase.backup`, which holds the write lock
        for the barrier phase.
        """
        from ..backup.backup import backup_database

        return backup_database(self, dest, disk=disk, barrier_hook=barrier_hook)

    @classmethod
    def load(
        cls,
        path: str,
        disk=None,
        durability: str | None = None,
        group_commit_size: int | None = None,
    ) -> "Database":
        """Reopen a database saved with :meth:`save`.

        Locates the newest complete manifest, verifies every file's size
        and CRC-32C before deserializing a byte, garbage-collects files
        left behind by interrupted saves, and raises structured
        :class:`~repro.errors.CorruptBlobError` /
        :class:`~repro.errors.RecoveryError` naming the offending path
        on any corruption. Pre-manifest directories load unverified.

        If the directory has a ``wal/`` log (or ``durability`` is given,
        which requests one), the log is recovered and every record past
        the snapshot's checkpoint LSN is replayed, then the log stays
        attached so further statements are durable.
        """
        import json
        from pathlib import Path

        from ..errors import RecoveryError
        from ..storage import persist
        from ..storage.diskio import DiskIO
        from ..storage.snapshot import MANIFEST_NAME, open_database_reader
        from ..wal.log import WAL_DIR_NAME, WriteAheadLog

        disk = disk or DiskIO()
        root = Path(path)
        from ..backup.manifest import RESTORE_MARKER_NAME

        if disk.exists(root / RESTORE_MARKER_NAME):
            raise RecoveryError(
                f"{root} holds an uncommitted restore (its "
                f"{RESTORE_MARKER_NAME} marker is present) — the restore "
                "crashed before completing; re-run it or delete the directory"
            )
        wal_dir = root / WAL_DIR_NAME
        has_wal = disk.is_dir(wal_dir)
        try:
            reader = open_database_reader(disk, root)
        except RecoveryError:
            if not has_wal or disk.exists(root / MANIFEST_NAME):
                # Either there is no log to recover from, or a manifest
                # *exists* but could not be used — that is corruption,
                # not a pre-first-checkpoint directory, and the log was
                # truncated at the snapshot's checkpoint: opening WAL-only
                # would silently present an empty database.
                raise
            # No snapshot yet but a log exists: the database crashed
            # before its first checkpoint — the log holds all state.
            reader = None
        db = cls()
        checkpoint_lsn = 0
        if reader is not None:
            try:
                catalog_entries = json.loads(
                    reader.read("catalog.json").decode("utf-8")
                )
            except (ValueError, UnicodeDecodeError) as exc:
                raise RecoveryError(f"unreadable catalog.json: {exc}") from exc
            for entry in catalog_entries:
                table_schema = persist.schema_from_json(entry["schema"])
                config = persist.config_from_json(entry["config"])
                table = db.create_table(
                    entry["name"], table_schema, storage=entry["storage"], config=config
                )
                if table.columnstore is not None:
                    table.columnstore = persist.load_columnstore(
                        table_schema, config, reader, table.name
                    )
                    table.columnstore.attach_mvcc(db.mvcc)
                if table.rowstore is not None:
                    rows = persist.deserialize_rows(
                        table_schema, reader.read(f"{table.name}/rowstore.rows")
                    )
                    table.rowstore.insert_many(rows)
                for index_name, columns in entry["indexes"].items():
                    table.create_index(index_name, columns)
            manifest = getattr(reader, "manifest", None)
            if manifest is not None:
                checkpoint_lsn = manifest.checkpoint_lsn
        resolved = str(root.resolve())
        if has_wal or durability is not None:
            from ..wal import replay as walreplay

            from ..wal.log import DEFAULT_GROUP_COMMIT_SIZE

            wal, recovery = WriteAheadLog.attach(
                disk,
                wal_dir,
                checkpoint_lsn=checkpoint_lsn,
                durability=durability or "group",
                group_commit_size=group_commit_size or DEFAULT_GROUP_COMMIT_SIZE,
            )
            replayed = walreplay.apply_records(db, recovery.replay_records)
            # Attach only after replay so nothing replayed is re-logged.
            db._wal = wal
            db._wal_root = resolved
            # WAL archiving is on by default for durable databases:
            # sealed segments are copied aside before anything deletes
            # them, which is what makes point-in-time recovery past the
            # latest backup possible. set_archiver also catches up on
            # segments sealed while no archiver was attached.
            from ..backup.archive import ARCHIVE_DIR_NAME, WalArchiver

            wal.set_archiver(WalArchiver(disk, root / ARCHIVE_DIR_NAME))
            if replayed == 0 and reader is not None:
                db._save_fingerprint = db._fingerprint(resolved)
        else:
            db._save_fingerprint = db._fingerprint(resolved)
        return db

    @classmethod
    def open(
        cls,
        path: str,
        disk=None,
        durability: str = "group",
        group_commit_size: int | None = None,
        default_config: StoreConfig | None = None,
    ) -> "Database":
        """Open a durable database at ``path``, creating it if absent.

        The returned database has a write-ahead log attached: every
        facade statement appends a redo record before applying, and
        reopening after a crash replays the committed tail. ``save``
        checkpoints the log.
        """
        from pathlib import Path

        from ..storage.diskio import DiskIO
        from ..storage.snapshot import MANIFEST_NAME
        from ..wal.log import DEFAULT_GROUP_COMMIT_SIZE, WAL_DIR_NAME, WriteAheadLog

        disk = disk or DiskIO()
        root = Path(path)
        existing = (
            disk.exists(root / MANIFEST_NAME)
            or disk.exists(root / "catalog.json")
            or disk.is_dir(root / WAL_DIR_NAME)
        )
        if existing:
            return cls.load(
                path,
                disk=disk,
                durability=durability,
                group_commit_size=group_commit_size,
            )
        db = cls(default_config)
        wal, _ = WriteAheadLog.attach(
            disk,
            root / WAL_DIR_NAME,
            checkpoint_lsn=0,
            durability=durability,
            group_commit_size=group_commit_size or DEFAULT_GROUP_COMMIT_SIZE,
        )
        db._wal = wal
        db._wal_root = str(root.resolve())
        from ..backup.archive import ARCHIVE_DIR_NAME, WalArchiver

        wal.set_archiver(WalArchiver(disk, root / ARCHIVE_DIR_NAME))
        return db

    @staticmethod
    def check(path: str, disk=None):
        """Integrity-scan a saved database without opening it.

        Returns an :class:`~repro.storage.snapshot.IntegrityReport` with
        a per-file verdict (``ok`` / ``missing`` / ``size-mismatch`` /
        ``checksum-mismatch`` / ``undecodable``). Never raises on
        corruption — corruption is the result being reported. Exposed on
        the CLI as ``repro check <dir>`` and the shell's ``\\check``.
        """
        from pathlib import Path

        from ..storage.diskio import DiskIO
        from ..storage.snapshot import check_database

        return check_database(disk or DiskIO(), Path(path))

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    # Maintenance operations are deterministic reorganizations of index
    # state, and they are *logged*: later DELETE/UPDATE records address
    # rows by post-reorganization locators, so replay must reproduce the
    # same reorganizations in the same order.
    def _columnstore_table(self, name: str) -> Table:
        target = self.catalog.table(name)
        if target.columnstore is None:
            raise CatalogError(f"table {target.name!r} has no columnstore index")
        return target

    def run_tuple_mover(self, table: str, include_open: bool = False):
        self._require_no_txn("the tuple mover")
        target = self._columnstore_table(table)
        if self._wal is not None:
            from ..wal import replay as walreplay

            self._log(
                WalRecordType.TUPLE_MOVER,
                target.name,
                walreplay.encode_json({"include_open": bool(include_open)}),
            )
        return target.run_tuple_mover(include_open)

    def rebuild(self, table: str) -> None:
        self._require_no_txn("REBUILD")
        target = self._columnstore_table(table)
        if target.storage_kind is StorageKind.BOTH:
            raise CatalogError("REBUILD on BOTH-storage tables is not supported")
        self._log(WalRecordType.REBUILD, target.name, b"")
        target.rebuild_columnstore()

    def vacuum(self, table: str | None = None) -> dict[str, int]:
        """Free MVCC versions no registered reader can see.

        Runs :meth:`ColumnStoreIndex.vacuum` on one table (or all) and
        returns the aggregate ``{"groups", "deltas", "tombstones"}``
        freed counts. Not logged: vacuum changes no visible state, and
        replay's deterministic txn-less GC reproduces it on its own.
        """
        totals = {"groups": 0, "deltas": 0, "tombstones": 0}
        names = [table] if table is not None else self.catalog.table_names()
        for name in names:
            target = self.catalog.table(name)
            if target.columnstore is not None:
                freed = target.columnstore.vacuum()
                for key in totals:
                    totals[key] += freed[key]
        return totals

    def set_archival(self, table: str, enabled: bool) -> None:
        self._require_no_txn("archival compression changes")
        target = self._columnstore_table(table)
        if self._wal is not None:
            from ..wal import replay as walreplay

            self._log(
                WalRecordType.ARCHIVAL,
                target.name,
                walreplay.encode_json({"enabled": bool(enabled)}),
            )
        target.set_archival(enabled)
