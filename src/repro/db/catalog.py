"""The catalog: tables, their storage and statistics.

A table can be stored as a **clustered columnstore** (the paper's 2014
enhancement: the columnstore *is* the base storage), as a plain **row
store** (the baseline), or as **both** (a row-store heap plus an updatable
columnstore index over it, the 2012 NCCI scenario made updatable). DML
goes through :class:`Table` so all storages stay consistent.
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Sequence

from ..errors import CatalogError, StorageError
from ..rowstore.compression import table_page_compressed_size
from ..rowstore.index import RowStoreIndex
from ..rowstore.table import RowId, RowStoreTable
from ..schema import TableSchema
from ..storage.columnstore import ColumnStoreIndex, RowLocator
from ..storage.config import StoreConfig
from ..storage.tuple_mover import TupleMover, TupleMoverReport
from ..planner.stats import ColumnStats, Histogram, HistogramBucket, TableStats
from ..types import TypeKind


class StorageKind(enum.Enum):
    COLUMNSTORE = "columnstore"
    ROWSTORE = "rowstore"
    BOTH = "both"


class Table:
    """One table: schema + storage + secondary indexes + statistics."""

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        storage: StorageKind = StorageKind.COLUMNSTORE,
        config: StoreConfig | None = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.storage_kind = storage
        self.config = config or StoreConfig()
        self.columnstore: ColumnStoreIndex | None = None
        self.rowstore: RowStoreTable | None = None
        self.indexes: dict[str, RowStoreIndex] = {}
        if storage in (StorageKind.COLUMNSTORE, StorageKind.BOTH):
            self.columnstore = ColumnStoreIndex(schema, self.config)
        if storage in (StorageKind.ROWSTORE, StorageKind.BOTH):
            self.rowstore = RowStoreTable(schema)
        self._stats_cache: TableStats | None = None
        self._stats_version = 0
        self._data_version = 0

    # ------------------------------------------------------------------ #
    # DML
    # ------------------------------------------------------------------ #
    def insert_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Validate and insert rows (trickle path); returns count."""
        return self.insert_physical_rows(
            [self.schema.coerce_row(row) for row in rows]
        )

    def insert_physical_rows(self, physical: Sequence[tuple[Any, ...]], txn=None) -> int:
        """Insert rows that are *already coerced* to physical values.

        WAL replay uses this path: coercion is not idempotent (DECIMAL
        coercion scales ints), so redo records carry physical rows and
        must not be coerced again. With a transaction context every
        mutation point records its physical undo.
        """
        for row in physical:
            self._insert_physical(row, txn)
        self._bump_data_version(txn)
        return len(physical)

    def _insert_physical(self, row: tuple[Any, ...], txn=None) -> None:
        if self.rowstore is not None:
            rid = self.rowstore.insert(row, txn)
            for index in self.indexes.values():
                index.insert(row, rid)
                if txn is not None:
                    txn.record(
                        f"un-index inserted row {rid}",
                        lambda index=index: index.delete(row, rid),
                    )
        if self.columnstore is not None:
            self.columnstore.insert(row, txn)

    def bulk_load(self, rows: Sequence[Sequence[Any]]) -> int:
        """Validate and load rows through the bulk path; returns count."""
        return self.bulk_load_physical(
            [self.schema.coerce_row(row) for row in rows]
        )

    def bulk_load_physical(self, physical: Sequence[tuple[Any, ...]], txn=None) -> int:
        """Bulk-load already-coerced rows (the WAL replay path)."""
        if self.storage_kind is StorageKind.COLUMNSTORE:
            assert self.columnstore is not None
            self.columnstore.bulk_load(physical, txn)
        else:
            # Row-store (and BOTH) inserts keep rid bookkeeping per row.
            for row in physical:
                self._insert_physical(row, txn)
        self._bump_data_version(txn)
        return len(physical)

    def delete_by_locators(self, locators: Iterable[Any], txn=None) -> int:
        """Delete rows addressed by scan-produced locators/rids.

        Each locator targets one storage; BOTH-storage tables are kept
        consistent by the facade running the same predicate against each
        storage (see :meth:`Table.delete_rows`).
        """
        deleted = 0
        for locator in locators:
            if isinstance(locator, RowId):
                deleted += self._delete_rowstore_rid(locator, txn)
            elif isinstance(locator, RowLocator):
                assert self.columnstore is not None
                if self.columnstore.delete(locator, txn):
                    deleted += 1
            else:
                raise StorageError(f"unknown locator {locator!r}")
        if deleted:
            self._bump_data_version(txn)
        return deleted

    def delete_rows(self, rids: list, locators: list, txn=None) -> int:
        """Delete the same logical rows from every storage; returns the
        *authoritative* logical row count.

        A BOTH-storage table holds each logical row twice (heap + index);
        the facade resolves the predicate against each storage and both
        physical deletes run here, but the count reported to the user is
        the number of distinct logical rows removed — never the
        per-storage sum, and never just one storage's count while the
        other silently diverges.
        """
        rowstore_deleted = self.delete_by_locators(rids, txn)
        columnstore_deleted = self.delete_by_locators(locators, txn)
        if self.rowstore is None:
            return columnstore_deleted
        if self.columnstore is None:
            return rowstore_deleted
        # Each logical row contributes at most one rid and one locator,
        # so the larger count is the number of logical rows any storage
        # still held (the smaller storage had already lost some).
        return max(rowstore_deleted, columnstore_deleted)

    def _delete_rowstore_rid(self, rid: RowId, txn=None) -> int:
        assert self.rowstore is not None
        row = self.rowstore.get(rid)
        if row is None:
            return 0
        # One undo entry per mutation, recorded immediately after each
        # succeeds: a fault anywhere in this sequence (even between two
        # index deletes) rolls back exactly the mutations that happened.
        self.rowstore.delete(rid)
        if txn is not None:
            txn.record(
                f"un-delete rowstore row {rid}",
                lambda: self._undo_undelete(rid),
            )
        for index in self.indexes.values():
            index.delete(row, rid)
            if txn is not None:
                txn.record(
                    f"re-index deleted row {rid}",
                    lambda index=index: index.insert(row, rid),
                )
        return 1

    def _undo_undelete(self, rid: RowId) -> None:
        assert self.rowstore is not None
        if not self.rowstore.undelete(rid):
            raise StorageError(f"delete undo: row {rid} is not tombstoned")

    def _bump_data_version(self, txn=None) -> None:
        if txn is not None:
            previous = self._data_version
            txn.record(
                f"restore {self.name} data version to {previous}",
                lambda: setattr(self, "_data_version", previous),
            )
        self._data_version += 1

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def run_tuple_mover(self, include_open: bool = False) -> TupleMoverReport:
        if self.columnstore is None:
            raise CatalogError(f"table {self.name!r} has no columnstore index")
        report = TupleMover(self.columnstore).run(include_open=include_open)
        self._data_version += 1
        return report

    def rebuild_columnstore(self) -> None:
        if self.columnstore is None:
            raise CatalogError(f"table {self.name!r} has no columnstore index")
        if self.storage_kind is StorageKind.BOTH:
            raise CatalogError("REBUILD on BOTH-storage tables is not supported")
        self.columnstore.rebuild()
        self._data_version += 1

    def set_archival(self, enabled: bool) -> None:
        if self.columnstore is None:
            raise CatalogError(f"table {self.name!r} has no columnstore index")
        if enabled:
            self.columnstore.archive()
        else:
            self.columnstore.unarchive()
        self._data_version += 1

    def create_index(self, index_name: str, columns: list[str]) -> RowStoreIndex:
        if self.rowstore is None:
            raise CatalogError(f"table {self.name!r} has no row store to index")
        if index_name in self.indexes:
            raise CatalogError(f"index {index_name!r} already exists")
        index = RowStoreIndex(self.rowstore, columns)
        self.indexes[index_name] = index
        return index

    # ------------------------------------------------------------------ #
    # Accounting / statistics
    # ------------------------------------------------------------------ #
    @property
    def row_count(self) -> int:
        if self.columnstore is not None:
            return self.columnstore.live_rows
        assert self.rowstore is not None
        return self.rowstore.row_count

    def size_report(self) -> dict[str, int]:
        """Sizes of each representation (for the compression experiments)."""
        report: dict[str, int] = {}
        if self.columnstore is not None:
            report["columnstore_bytes"] = self.columnstore.size_bytes
            report["columnstore_raw_bytes"] = self.columnstore.directory.raw_size_bytes
        if self.rowstore is not None:
            report["rowstore_used_bytes"] = self.rowstore.used_bytes
            report["rowstore_page_compressed_bytes"] = table_page_compressed_size(
                self.rowstore
            )
        return report

    def stats(self) -> TableStats:
        if self._stats_cache is not None and self._stats_version == self._data_version:
            return self._stats_cache
        self._stats_cache = self._compute_stats()
        self._stats_version = self._data_version
        return self._stats_cache

    def _compute_stats(self) -> TableStats:
        stats = TableStats(row_count=self.row_count)
        if self.columnstore is not None:
            self._stats_from_columnstore(stats)
        elif self.rowstore is not None:
            self._stats_from_rowstore(stats)
        return stats

    def _stats_from_columnstore(self, stats: TableStats) -> None:
        assert self.columnstore is not None
        directory = self.columnstore.directory
        rows_with_nulls: dict[str, int] = {}
        for info in directory.segment_infos():
            col_stats = stats.columns.setdefault(info.column, ColumnStats())
            if info.min_value is not None:
                if col_stats.min_value is None or info.min_value < col_stats.min_value:
                    col_stats.min_value = info.min_value
                if col_stats.max_value is None or info.max_value > col_stats.max_value:
                    col_stats.max_value = info.max_value
                # Each segment is one histogram bucket: its [min, max]
                # range and row count come straight from the directory.
                if col_stats.histogram is None:
                    col_stats.histogram = Histogram()
                col_stats.histogram.buckets.append(
                    HistogramBucket(
                        low=info.min_value,
                        high=info.max_value,
                        rows=info.row_count - info.null_count,
                    )
                )
            rows_with_nulls[info.column] = (
                rows_with_nulls.get(info.column, 0) + info.null_count
            )
        compressed = max(1, self.columnstore.compressed_rows)
        for column, nulls in rows_with_nulls.items():
            stats.columns.setdefault(column, ColumnStats()).null_fraction = (
                nulls / compressed
            )
        for col in self.schema:
            gd = directory.global_dictionary(col.name)
            if len(gd):
                stats.columns.setdefault(col.name, ColumnStats()).ndv = len(gd)
            elif col.dtype.kind in (TypeKind.INT, TypeKind.BIGINT, TypeKind.DATE):
                col_stats = stats.columns.get(col.name)
                if (
                    col_stats is not None
                    and col_stats.min_value is not None
                    and col_stats.max_value is not None
                ):
                    span = int(col_stats.max_value) - int(col_stats.min_value) + 1
                    col_stats.ndv = min(span, stats.row_count or 1)

    def _stats_from_rowstore(self, stats: TableStats) -> None:
        assert self.rowstore is not None
        names = self.schema.names
        distinct: dict[str, set] = {name: set() for name in names}
        nulls = {name: 0 for name in names}
        mins: dict[str, Any] = {}
        maxs: dict[str, Any] = {}
        for _rid, row in self.rowstore.scan():
            for name, value in zip(names, row):
                if value is None:
                    nulls[name] += 1
                    continue
                distinct[name].add(value)
                if name not in mins or value < mins[name]:
                    mins[name] = value
                if name not in maxs or value > maxs[name]:
                    maxs[name] = value
        total = max(1, self.rowstore.row_count)
        for name in names:
            stats.columns[name] = ColumnStats(
                min_value=mins.get(name),
                max_value=maxs.get(name),
                ndv=len(distinct[name]) or None,
                null_fraction=nulls[name] / total,
            )


class Catalog:
    """Name -> :class:`Table` registry (the planner's CatalogView).

    ``version`` is a monotonic DDL counter bumped by every create / drop
    / restore. Unlike the database's catalog *epoch* (which transaction
    rollback restores, because it feeds the save fingerprint), the
    version never goes backwards — snapshot readers record it at pin
    time to detect that the table set they bound against is still the
    one they are scanning.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self.version = 0

    def create_table(
        self,
        name: str,
        schema: TableSchema,
        storage: StorageKind = StorageKind.COLUMNSTORE,
        config: StoreConfig | None = None,
    ) -> Table:
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema, storage, config)
        self._tables[key] = table
        self.version += 1
        return table

    def drop_table(self, name: str) -> None:
        if name.lower() not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name.lower()]
        self.version += 1

    def restore_table(self, table: Table) -> None:
        """Re-register a dropped table object (DROP TABLE undo)."""
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table
        self.version += 1

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(t.name for t in self._tables.values())
