"""The database facade: catalog, tables, SQL entry point."""

from .catalog import Catalog, StorageKind, Table
from .database import Database, Result

__all__ = ["Catalog", "Database", "Result", "StorageKind", "Table"]
