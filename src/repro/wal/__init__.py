"""Write-ahead logging: durable DML between snapshots.

The snapshot layer (:mod:`repro.storage.snapshot`) makes whole saves
crash-safe; this package extends the guarantee to *every committed
statement*. The facade appends a redo record before mutating in-memory
state, :meth:`Database.load` replays the log tail past the newest
snapshot's checkpoint LSN, and :meth:`Database.save` doubles as the
checkpoint that lets covered segments be truncated.

See :mod:`repro.wal.record` for the on-disk framing,
:mod:`repro.wal.log` for the segmented log and group commit, and
:mod:`repro.wal.replay` for payload codecs and recovery application.
"""

from .log import (
    DEFAULT_GROUP_COMMIT_SIZE,
    DEFAULT_SEGMENT_BYTES,
    DURABILITY_MODES,
    WAL_DIR_NAME,
    WalRecovery,
    WalVerdict,
    WriteAheadLog,
    check_wal,
    normalize_durability,
)
from .record import (
    AUTO_COMMIT_TXN,
    TXN_MARKER_TYPES,
    WalRecord,
    WalRecordType,
    encode_record,
    scan_segment,
)

__all__ = [
    "AUTO_COMMIT_TXN",
    "TXN_MARKER_TYPES",
    "DEFAULT_GROUP_COMMIT_SIZE",
    "DEFAULT_SEGMENT_BYTES",
    "DURABILITY_MODES",
    "WAL_DIR_NAME",
    "WalRecord",
    "WalRecordType",
    "WalRecovery",
    "WalVerdict",
    "WriteAheadLog",
    "check_wal",
    "encode_record",
    "normalize_durability",
    "scan_segment",
]
