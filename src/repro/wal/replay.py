"""Redo-record payload codecs and replay application.

Payloads are redo-oriented and *physical enough to be deterministic*:

* row payloads (INSERT / BULK_LOAD / the insert half of UPDATE) carry
  already-coerced physical rows in the same column-wise format the
  snapshot layer uses (:func:`repro.storage.persist.serialize_rows`), so
  replay never re-runs type coercion (which is not idempotent — e.g.
  DECIMAL coercion scales ints);
* DELETE payloads carry the *locators* the original predicate scan
  produced (row-store rids and columnstore (group/delta, position)
  addresses), not the predicate — predicates are not serializable, and
  locators make replay independent of scan order;
* maintenance payloads (tuple mover, rebuild, archival) carry the
  operation's arguments; the operations themselves are deterministic
  functions of index state, which is what makes logical redo of
  later locator-addressed records sound.

Replay applies records through the same storage code paths as the
original execution (delta-store inserts honor the same close thresholds,
the bulk loader the same compression cutoffs), so the reconstructed
index is structurally identical, not just query-equivalent. Any
divergence — a locator that deletes nothing, a duplicate row id, an
unknown table — raises :class:`~repro.errors.ReplayError` naming the
record's LSN.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from ..errors import ReplayError, ReproError
from ..observability import registry as metrics
from ..rowstore.table import RowId
from ..storage import persist
from ..storage.columnstore import RowLocator
from .record import AUTO_COMMIT_TXN, TXN_MARKER_TYPES, WalRecord, WalRecordType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.database import Database


# ---------------------------------------------------------------------- #
# Payload encoding
# ---------------------------------------------------------------------- #
def encode_json(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> dict:
    return json.loads(payload.decode("utf-8"))


def encode_locators(rids: list[RowId], locators: list[RowLocator]) -> dict:
    """Locator lists as JSON-ready structures (part of DELETE/UPDATE)."""
    return {
        "rowstore": [[rid.page, rid.slot] for rid in rids],
        "columnstore": [
            [loc.kind, loc.container_id, loc.position] for loc in locators
        ],
    }

def decode_locators(body: dict) -> tuple[list[RowId], list[RowLocator]]:
    rids = [RowId(page, slot) for page, slot in body["rowstore"]]
    locators = [
        RowLocator(kind, container_id, position)
        for kind, container_id, position in body["columnstore"]
    ]
    return rids, locators


def encode_update(
    schema, rids: list[RowId], locators: list[RowLocator], rows: list[tuple]
) -> bytes:
    """UPDATE payload: a JSON locator header + the binary row blob."""
    header = encode_json(encode_locators(rids, locators))
    out = bytearray()
    from ..storage import serde

    serde.write_varint(out, len(header))
    out += header
    out += persist.serialize_rows(schema, rows)
    return bytes(out)


def decode_update(schema, payload: bytes):
    from ..storage import serde

    header_len, pos = serde.read_varint(payload, 0)
    header = decode_json(payload[pos : pos + header_len])
    rids, locators = decode_locators(header)
    rows = persist.deserialize_rows(schema, payload[pos + header_len :])
    return rids, locators, rows


# ---------------------------------------------------------------------- #
# Replay
# ---------------------------------------------------------------------- #
def committed_txn_ids(records: list[WalRecord]) -> set[int]:
    """Transaction ids whose TXN_COMMIT marker reached the log."""
    return {
        record.txn_id
        for record in records
        if record.rtype is WalRecordType.TXN_COMMIT
        and record.txn_id != AUTO_COMMIT_TXN
    }


def apply_records(db: "Database", records: list[WalRecord]) -> int:
    """Apply recovered redo records to a freshly loaded database.

    The caller attaches the WAL to ``db`` only *after* this returns, so
    nothing applied here is logged again.

    Transactional filtering: a record stamped with a nonzero txn id only
    takes effect if that transaction's TXN_COMMIT reached the log — a
    crash (or explicit ROLLBACK) mid-transaction leaves its DML records
    on disk, and replay must land on the last *committed* state, never a
    transaction prefix. Commit markers are collected in a first pass;
    records are still applied strictly in LSN order. This is sound
    because checkpoints refuse to run inside a transaction, so a
    snapshot never captures half of one and the skipped records never
    have effects baked into the base image. Returns the number of
    records applied to storage.
    """
    committed = committed_txn_ids(records)
    applied = 0
    max_epoch = 0
    for record in records:
        if record.rtype in TXN_MARKER_TYPES:
            # Delimiters only — nothing to apply, but commit markers
            # carry the MVCC epoch the transaction installed, and the
            # clock must land past every logged epoch so post-recovery
            # commits never reuse one.
            if record.rtype is WalRecordType.TXN_COMMIT and record.payload:
                epoch = decode_json(record.payload).get("epoch")
                if epoch:
                    max_epoch = max(max_epoch, int(epoch))
            continue
        if record.txn_id != AUTO_COMMIT_TXN and record.txn_id not in committed:
            metrics.increment("storage.wal.replay.uncommitted_skipped")
            continue
        try:
            _apply(db, record)
        except ReplayError:
            raise
        except ReproError as exc:
            raise ReplayError(
                f"replaying LSN {record.lsn} ({record.rtype.name} on "
                f"{record.table or '<db>'}): {exc}"
            ) from exc
        applied += 1
        metrics.increment("storage.wal.replay.records")
    if max_epoch:
        db.mvcc.advance_to(max_epoch)
    return applied


def _apply(db: "Database", record: WalRecord) -> None:
    rtype = record.rtype
    if rtype is WalRecordType.CREATE_TABLE:
        body = decode_json(record.payload)
        db.create_table(
            record.table,
            persist.schema_from_json(body["schema"]),
            storage=body["storage"],
            config=persist.config_from_json(body["config"]),
        )
        return
    if rtype is WalRecordType.DROP_TABLE:
        db.drop_table(record.table)
        return

    table = db.catalog.table(record.table)
    if rtype is WalRecordType.CREATE_INDEX:
        body = decode_json(record.payload)
        table.create_index(body["name"], body["columns"])
    elif rtype is WalRecordType.INSERT:
        table.insert_physical_rows(
            persist.deserialize_rows(table.schema, record.payload)
        )
    elif rtype is WalRecordType.BULK_LOAD:
        table.bulk_load_physical(
            persist.deserialize_rows(table.schema, record.payload)
        )
    elif rtype is WalRecordType.DELETE:
        body = decode_json(record.payload)
        rids, locators = decode_locators(body)
        deleted = table.delete_by_locators(rids)
        deleted += table.delete_by_locators(locators)
        expected = len(rids) + len(locators)
        if deleted != expected:
            raise ReplayError(
                f"LSN {record.lsn}: DELETE on {record.table} removed "
                f"{deleted} of {expected} logged rows — log and snapshot "
                "have diverged"
            )
    elif rtype is WalRecordType.UPDATE:
        rids, locators, rows = decode_update(table.schema, record.payload)
        table.delete_by_locators(rids)
        table.delete_by_locators(locators)
        table.insert_physical_rows(rows)
    elif rtype is WalRecordType.TUPLE_MOVER:
        body = decode_json(record.payload)
        table.run_tuple_mover(include_open=body["include_open"])
    elif rtype is WalRecordType.REBUILD:
        table.rebuild_columnstore()
    elif rtype is WalRecordType.ARCHIVAL:
        body = decode_json(record.payload)
        table.set_archival(body["enabled"])
    else:  # pragma: no cover - the enum is closed
        raise ReplayError(f"LSN {record.lsn}: unknown record type {rtype}")
