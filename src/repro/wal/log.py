"""The write-ahead log: segmented appends, group commit, recovery.

Layout: a ``wal/`` directory next to the snapshot directories, holding
append-only segment files named ``seg_<first-lsn>.wal``. Records are
framed by :mod:`repro.wal.record`; every byte flows through the
injectable :class:`~repro.storage.diskio.DiskIO`, so the crash sweeps
drive the WAL with the same :class:`FaultyDisk` as the snapshot layer.

**Durability modes** (the knob the paper's transactional integration
turns into policy):

``per-commit``
    every committed statement fsyncs the segment before returning —
    nothing committed is ever lost, one fsync per statement.
``group``
    commits accumulate and one fsync covers the whole batch (every
    ``group_commit_size`` commits, at checkpoints, or on an explicit
    :meth:`WriteAheadLog.flush`). Amortizes fsync across writers at the
    cost of a bounded window of recent commits on a power cut.
``off``
    never fsync on commit (the OS flushes when it pleases); the log
    still orders and frames records, so crash recovery replays whatever
    reached the disk — always a committed prefix, possibly short.

**Recovery** (:meth:`WriteAheadLog.attach`) scans every segment, verifies
per-record CRCs and LSN contiguity, truncates a torn final record in the
last segment (an interrupted append — the statement never committed) and
refuses with :class:`~repro.errors.WalCorruptError` on mid-log damage.
It returns the records past the snapshot's checkpoint LSN for replay.

**Checkpoints**: :meth:`Database.save` records the WAL's last LSN in the
snapshot manifest, then :meth:`truncate_covered` deletes every segment
whose records the snapshot now covers. A crash between the two leaves
stale segments whose records replay skips (their LSNs are ≤ the
checkpoint) and which the next checkpoint collects.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import WalCorruptError
from ..observability import registry as metrics
from ..storage.diskio import DiskIO
from .record import (
    SegmentScan,
    WalRecord,
    WalRecordType,
    encode_record,
    require_clean_scan,
    scan_segment,
)

WAL_DIR_NAME = "wal"
DEFAULT_SEGMENT_BYTES = 256 * 1024
DEFAULT_GROUP_COMMIT_SIZE = 8

DURABILITY_MODES = ("per-commit", "group", "off")
_DURABILITY_ALIASES = {"fsync-per-commit": "per-commit", "fsync": "per-commit"}

_SEGMENT_RE = re.compile(r"^seg_(\d{12,})\.wal$")


def normalize_durability(mode: str) -> str:
    mode = _DURABILITY_ALIASES.get(mode, mode)
    if mode not in DURABILITY_MODES:
        raise ValueError(
            f"unknown durability mode {mode!r} (choose from "
            f"{', '.join(DURABILITY_MODES)})"
        )
    return mode


def _segment_name(first_lsn: int) -> str:
    return f"seg_{first_lsn:012d}.wal"


@dataclass
class _Segment:
    """One live segment: its path, first LSN, and current byte size."""

    path: Path
    first_lsn: int
    size: int
    last_lsn: int  # last LSN written to this segment (first_lsn - 1 if empty)


@dataclass
class WalRecovery:
    """What :meth:`WriteAheadLog.attach` found on disk."""

    replay_records: list[WalRecord] = field(default_factory=list)
    last_lsn: int = 0
    truncated_segment: str | None = None
    truncated_at: int | None = None


class WriteAheadLog:
    """Append-only segmented redo log with group commit.

    Thread-safe: appends and commits serialize on an internal lock, and a
    commit whose records another writer's fsync already covered returns
    without syncing again (the classic group-commit piggyback).
    """

    def __init__(
        self,
        disk: DiskIO,
        root: Path,
        durability: str = "group",
        group_commit_size: int = DEFAULT_GROUP_COMMIT_SIZE,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        last_lsn: int = 0,
        segments: list[_Segment] | None = None,
    ) -> None:
        self.disk = disk
        self.root = Path(root)
        self.durability = normalize_durability(durability)
        self.group_commit_size = max(1, group_commit_size)
        self.segment_bytes = segment_bytes
        self._lock = threading.RLock()
        self._last_lsn = last_lsn
        self._durable_lsn = last_lsn
        self._pending_commits = 0
        self._segments: list[_Segment] = list(segments or [])
        # Optional WAL archiver (repro.backup.archive.WalArchiver):
        # sealed segments are copied into the archive on rotation and
        # before checkpoint truncation deletes them, which is what makes
        # point-in-time recovery past the latest backup possible.
        self.archiver = None

    # ------------------------------------------------------------------ #
    # Opening / recovery
    # ------------------------------------------------------------------ #
    @classmethod
    def attach(
        cls,
        disk: DiskIO,
        root: Path,
        checkpoint_lsn: int = 0,
        durability: str = "group",
        group_commit_size: int = DEFAULT_GROUP_COMMIT_SIZE,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> tuple["WriteAheadLog", WalRecovery]:
        """Open (or create) the log at ``root`` and recover its tail.

        Scans every segment, truncates a torn final record, raises
        :class:`WalCorruptError` on mid-log corruption or LSN gaps, and
        returns the log (positioned to append after the last valid
        record) plus the records with LSN > ``checkpoint_lsn`` that the
        caller must replay.
        """
        root = Path(root)
        recovery = WalRecovery(last_lsn=checkpoint_lsn)
        listed = _list_segments(disk, root)
        all_records: list[WalRecord] = []
        live_segments: list[_Segment] = []
        previous_last = None
        for index, (first_lsn, name) in enumerate(listed):
            if previous_last is not None and first_lsn != previous_last + 1:
                raise WalCorruptError(
                    f"segment starts at LSN {first_lsn} but the previous "
                    f"segment ended at {previous_last} (missing segment?)",
                    segment=name,
                )
            path = root / name
            data = disk.read_file(path)
            scan = scan_segment(data, first_lsn, source=name)
            require_clean_scan(scan, name)
            if scan.damage is not None:  # torn tail
                if index != len(listed) - 1:
                    raise WalCorruptError(
                        scan.damage.detail
                        + " (not the final segment — refusing to truncate)",
                        segment=name,
                        offset=scan.damage.offset,
                    )
                _truncate_segment(disk, path, data[: scan.good_bytes])
                recovery.truncated_segment = name
                recovery.truncated_at = scan.damage.offset
                metrics.increment("storage.wal.replay.torn_tails_truncated")
            all_records.extend(scan.records)
            last_lsn = scan.records[-1].lsn if scan.records else first_lsn - 1
            previous_last = last_lsn
            if scan.good_bytes > 0:
                live_segments.append(
                    _Segment(
                        path=path,
                        first_lsn=first_lsn,
                        size=scan.good_bytes,
                        last_lsn=last_lsn,
                    )
                )
        recovery.replay_records = [
            record for record in all_records if record.lsn > checkpoint_lsn
        ]
        if recovery.replay_records:
            first = recovery.replay_records[0].lsn
            if first != checkpoint_lsn + 1:
                raise WalCorruptError(
                    f"oldest replayable record is LSN {first} but the "
                    f"snapshot checkpoint is {checkpoint_lsn} — records "
                    f"{checkpoint_lsn + 1}..{first - 1} are missing"
                )
        last_lsn = max(checkpoint_lsn, all_records[-1].lsn if all_records else 0)
        recovery.last_lsn = last_lsn
        wal = cls(
            disk,
            root,
            durability=durability,
            group_commit_size=group_commit_size,
            segment_bytes=segment_bytes,
            last_lsn=last_lsn,
            segments=live_segments,
        )
        return wal, recovery

    # ------------------------------------------------------------------ #
    # Appending / committing
    # ------------------------------------------------------------------ #
    def log_statement(
        self, rtype: WalRecordType, table: str, payload: bytes, txn_id: int = 0
    ) -> int:
        """Append one statement's redo record and commit it.

        This is the facade's single entry point for auto-committed
        statements: the append and the commit happen under one lock
        acquisition, so concurrent writers' statements never interleave
        inside a commit boundary. Records inside an explicit transaction
        use :meth:`append` alone — durability waits for the TXN_COMMIT.
        """
        with self._lock:
            lsn = self.append(rtype, table, payload, txn_id)
            self.commit()
            return lsn

    def append(
        self, rtype: WalRecordType, table: str, payload: bytes, txn_id: int = 0
    ) -> int:
        """Append one record (no durability yet); returns its LSN."""
        with self._lock:
            lsn = self._last_lsn + 1
            frame = encode_record(rtype, lsn, table, payload, txn_id)
            segment = self._segment_for_append(lsn, len(frame))
            created = segment.size == 0
            self.disk.append_file(segment.path, frame)
            if created:
                # The append created the segment file; persist its
                # directory entry now. Without this a power cut could
                # unlink the file on a metadata-lazy filesystem no
                # matter how many times its *contents* were fsynced.
                self.disk.sync_dir(self.root)
            segment.size += len(frame)
            segment.last_lsn = lsn
            self._last_lsn = lsn
            metrics.increment("storage.wal.records_appended")
            metrics.increment("storage.wal.bytes_appended", len(frame))
            return lsn

    def _segment_for_append(self, lsn: int, frame_bytes: int) -> _Segment:
        tail = self._segments[-1] if self._segments else None
        if tail is not None and (
            tail.size == 0 or tail.size + frame_bytes <= self.segment_bytes
        ):
            return tail
        # Rotate: the previous segment must be durable before records
        # start landing in a new one, or a crash could lose the middle of
        # the log while keeping its end.
        if tail is not None and self._durable_lsn < tail.last_lsn:
            self._fsync_tail()
        if tail is not None:
            # The outgoing tail is sealed: archive it now so the archive
            # tracks rotation instead of lagging until the next
            # checkpoint truncation.
            self._archive(tail)
        segment = _Segment(
            path=self.root / _segment_name(lsn), first_lsn=lsn, size=0, last_lsn=lsn - 1
        )
        self._segments.append(segment)
        metrics.increment("storage.wal.segments_created")
        return segment

    def commit(self) -> None:
        """Make everything appended so far durable per the current mode."""
        with self._lock:
            metrics.increment("storage.wal.commits")
            if self._durable_lsn >= self._last_lsn:
                return  # piggybacked on an earlier writer's fsync
            self._pending_commits += 1
            if self.durability == "off":
                return
            if (
                self.durability == "per-commit"
                or self._pending_commits >= self.group_commit_size
            ):
                self._flush_pending()

    def flush(self) -> None:
        """Force-fsync all pending records regardless of mode."""
        with self._lock:
            if self._durable_lsn < self._last_lsn:
                self._flush_pending()

    def _flush_pending(self) -> None:
        batch = max(1, self._pending_commits)
        self._fsync_tail()
        if batch > 1:
            metrics.increment("storage.wal.group_commit.batched_commits", batch)
        metrics.get_registry().max_gauge(
            "storage.wal.group_commit.max_batch", batch
        )
        self._pending_commits = 0

    def _fsync_tail(self) -> None:
        """fsync every segment holding non-durable records."""
        for segment in self._segments:
            if segment.last_lsn > self._durable_lsn and segment.size > 0:
                self.disk.sync_file(segment.path)
                metrics.increment("storage.wal.fsyncs")
        self._durable_lsn = self._last_lsn

    # ------------------------------------------------------------------ #
    # Archiving
    # ------------------------------------------------------------------ #
    def set_archiver(self, archiver) -> None:
        """Attach a segment archiver and catch up on sealed segments.

        ``archiver`` is duck-typed (see
        :class:`repro.backup.archive.WalArchiver`): it must offer
        ``archive_segment(disk, path, first_lsn)`` and ``prune()``.
        Catch-up covers segments sealed while no archiver was attached —
        e.g. rotation immediately followed by a crash, before the
        rotation hook could run.
        """
        with self._lock:
            self.archiver = archiver
            for segment in self._segments[:-1]:
                if segment.size > 0:
                    self._archive(segment)

    def _archive(self, segment: _Segment) -> bool:
        """Copy one sealed segment into the archive (best-effort).

        Returns True when the segment is (now) safely archived. A real
        I/O failure or a CRC failure in the source must not fail the
        commit path that triggered the rotation — the segment simply
        stays pending (and, in :meth:`truncate_covered`, stays live) and
        ``wal.archive.failures`` counts the miss. An
        :class:`~repro.storage.diskio.InjectedFault` is a simulated
        power cut and propagates like one.
        """
        if self.archiver is None or segment.size == 0:
            return True
        try:
            return self.archiver.archive_segment(
                self.disk, segment.path, segment.first_lsn
            )
        except (OSError, WalCorruptError):
            metrics.increment("wal.archive.failures")
            return False

    def set_durability(self, mode: str) -> None:
        """Switch durability mode; tightening the mode flushes first."""
        mode = normalize_durability(mode)
        with self._lock:
            self.durability = mode
            if mode != "off":
                self.flush()

    def close(self) -> None:
        self.flush()

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def truncate_covered(self, checkpoint_lsn: int) -> int:
        """Delete segments every record of which is ≤ ``checkpoint_lsn``.

        Called after a snapshot whose manifest records ``checkpoint_lsn``
        committed; returns how many segments were removed. Removal is
        safe at any point after the manifest rename — replay skips
        covered records anyway — so a crash mid-truncation only leaves
        stale segments for the next checkpoint to collect.
        """
        removed = 0
        with self._lock:
            kept: list[_Segment] = []
            for segment in self._segments:
                if segment.last_lsn <= checkpoint_lsn and segment.size > 0:
                    # Archive-before-delete: with an archiver attached a
                    # covered segment may only vanish from the live log
                    # once the archive provably holds it — otherwise it
                    # stays live and the next checkpoint retries.
                    if not self._archive(segment):
                        kept.append(segment)
                        continue
                    self.disk.remove(segment.path)
                    removed += 1
                elif segment.last_lsn <= checkpoint_lsn and segment.size == 0:
                    self.disk.remove(segment.path)
                else:
                    kept.append(segment)
            self._segments = kept
            if removed:
                metrics.increment("storage.wal.segments_deleted", removed)
            metrics.increment("storage.wal.checkpoints")
            if self.archiver is not None:
                try:
                    self.archiver.prune()
                except OSError:  # pragma: no cover - platform dependent
                    metrics.increment("wal.archive.failures")
        return removed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def last_lsn(self) -> int:
        return self._last_lsn

    @property
    def durable_lsn(self) -> int:
        return self._durable_lsn

    def status(self) -> dict:
        """A point-in-time summary (the shell's ``\\wal`` command)."""
        with self._lock:
            status = {
                "durability": self.durability,
                "group_commit_size": self.group_commit_size,
                "last_lsn": self._last_lsn,
                "durable_lsn": self._durable_lsn,
                "pending_commits": self._pending_commits,
                "segments": len([s for s in self._segments if s.size > 0]),
                "bytes": sum(s.size for s in self._segments),
            }
            if self.archiver is not None:
                live = [
                    s.path.name for s in self._segments if s.size > 0
                ]
                status["archive"] = self.archiver.status(live_segments=live)
            return status


# ---------------------------------------------------------------------- #
# Shared helpers
# ---------------------------------------------------------------------- #
def _list_segments(disk: DiskIO, root: Path) -> list[tuple[int, str]]:
    """(first_lsn, file name) of every segment, in LSN order."""
    segments = []
    for name in disk.listdir(root):
        match = _SEGMENT_RE.match(name)
        if match:
            segments.append((int(match.group(1)), name))
    segments.sort()
    return segments


def _truncate_segment(disk: DiskIO, path: Path, good_prefix: bytes) -> None:
    """Drop a torn tail by atomically rewriting the valid prefix."""
    if good_prefix:
        disk.write_file(path, good_prefix)
    else:
        disk.remove(path)


# ---------------------------------------------------------------------- #
# Offline integrity checking (`repro check <dir>` / `\check`)
# ---------------------------------------------------------------------- #
@dataclass
class WalVerdict:
    """Verdict for one WAL segment (or the log as a whole)."""

    segment: str
    status: str  # ok | stale | torn-tail | corrupt | lsn-gap | checkpoint-gap
    detail: str = ""

    @property
    def ok(self) -> bool:
        # A torn tail is recoverable by design (recovery truncates it);
        # stale segments are covered by the checkpoint and merely await
        # collection. Neither loses committed data.
        return self.status in ("ok", "stale", "torn-tail")


def check_wal(disk: DiskIO, root: Path, checkpoint_lsn: int) -> list[WalVerdict]:
    """Scan WAL segments without mutating anything; never raises.

    Verifies per-record CRCs, LSN monotonicity within and across
    segments, and that the replayable tail connects to the manifest's
    checkpoint LSN; names the offending segment and byte offset.
    """
    verdicts: list[WalVerdict] = []
    segments = _list_segments(disk, Path(root))
    previous_last: int | None = None
    max_lsn = 0
    min_lsn: int | None = None
    broken = False
    for index, (first_lsn, name) in enumerate(segments):
        if previous_last is not None and first_lsn != previous_last + 1:
            verdicts.append(
                WalVerdict(
                    name,
                    "lsn-gap",
                    f"starts at LSN {first_lsn}, previous segment ended at "
                    f"{previous_last}",
                )
            )
            broken = True
        data = disk.read_file(Path(root) / name)
        scan = scan_segment(data, first_lsn, source=name)
        verdicts.append(_segment_verdict(name, scan, index == len(segments) - 1,
                                         checkpoint_lsn))
        if scan.damage is not None and scan.damage.kind == "corrupt":
            broken = True
        if scan.records:
            max_lsn = max(max_lsn, scan.records[-1].lsn)
            if min_lsn is None:
                min_lsn = scan.records[0].lsn
        previous_last = scan.records[-1].lsn if scan.records else first_lsn - 1
    if not broken and min_lsn is not None and max_lsn > checkpoint_lsn:
        # The replayable tail must connect to the checkpoint.
        oldest_needed = checkpoint_lsn + 1
        if min_lsn > oldest_needed:
            verdicts.append(
                WalVerdict(
                    "(log)",
                    "checkpoint-gap",
                    f"manifest checkpoint is LSN {checkpoint_lsn} but the "
                    f"oldest log record is {min_lsn} — records "
                    f"{oldest_needed}..{min_lsn - 1} are missing",
                )
            )
    return verdicts


def _segment_verdict(
    name: str, scan: SegmentScan, is_last: bool, checkpoint_lsn: int
) -> WalVerdict:
    if scan.damage is not None:
        if scan.damage.kind == "corrupt" or not is_last:
            return WalVerdict(
                name,
                "corrupt",
                f"byte {scan.damage.offset}: {scan.damage.detail}",
            )
        return WalVerdict(
            name,
            "torn-tail",
            f"byte {scan.damage.offset}: {scan.damage.detail} "
            "(recovery will truncate)",
        )
    if not scan.records:
        return WalVerdict(name, "ok", "empty segment")
    first, last = scan.records[0].lsn, scan.records[-1].lsn
    if last <= checkpoint_lsn:
        return WalVerdict(
            name, "stale", f"LSN {first}..{last} covered by checkpoint"
        )
    return WalVerdict(name, "ok", f"LSN {first}..{last}, {len(scan.records)} records")
