"""WAL record framing: fixed-header frames with per-record CRC-32C.

One log record is one committed statement (the facade never interleaves
records of two statements inside a frame, so a frame is the unit of
atomicity — there is no separate COMMIT marker to lose half of). The
wire layout, little-endian throughout::

    frame  := length:u32 | crc:u32 | body
    body   := type:u8 | lsn:u64 | txn_id:u64 | table_len:u16 | table:utf8 | payload

``txn_id`` ties a record to its transaction: 0 is the implicit
auto-commit transaction (the record commits with its own frame, as
before), while a nonzero id — the LSN of the transaction's
``TXN_BEGIN`` marker — marks a record that only takes effect if a
``TXN_COMMIT`` with the same id appears later in the log. Replay
collects the committed ids first and skips the rest
(:mod:`repro.wal.replay`).

``length`` counts the body bytes and ``crc`` is CRC-32C over the body,
so a torn append (only a prefix of the frame reached the disk) is
detected either by the frame extending past end-of-file or by a CRC
mismatch. :func:`scan_segment` classifies the damage: a bad record that
is the *last* thing in the segment is a torn tail (recovery truncates
it); a bad record *followed by* a well-formed record is mid-log
corruption (recovery refuses — valid data would be silently lost).

LSNs are assigned contiguously (1-based); the scanner enforces that each
record's LSN is exactly its predecessor's + 1, which catches spliced or
reordered segments that per-record CRCs cannot.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ..errors import WalCorruptError
from ..storage.diskio import crc32c

_FRAME_HEADER = struct.Struct("<II")  # body length, body crc32c
_BODY_HEADER = struct.Struct("<BQQH")  # record type, lsn, txn id, table-name length
MIN_BODY_BYTES = _BODY_HEADER.size

#: Transaction id of auto-committed statements (each record is its own
#: commit unit, exactly the pre-transaction behaviour).
AUTO_COMMIT_TXN = 0


class WalRecordType(enum.IntEnum):
    """Redo record types — one per mutating facade statement."""

    CREATE_TABLE = 1
    DROP_TABLE = 2
    CREATE_INDEX = 3
    INSERT = 4
    BULK_LOAD = 5
    DELETE = 6
    UPDATE = 7
    TUPLE_MOVER = 8
    REBUILD = 9
    ARCHIVAL = 10
    TXN_BEGIN = 11
    TXN_COMMIT = 12
    TXN_ABORT = 13


#: Marker records delimiting explicit transactions; they carry no table
#: or payload and replay never applies them to storage.
TXN_MARKER_TYPES = frozenset(
    {WalRecordType.TXN_BEGIN, WalRecordType.TXN_COMMIT, WalRecordType.TXN_ABORT}
)


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    lsn: int
    rtype: WalRecordType
    table: str
    payload: bytes
    txn_id: int = AUTO_COMMIT_TXN


@dataclass
class SegmentDamage:
    """Where and how a segment scan stopped early."""

    kind: str  # "torn-tail" | "corrupt"
    offset: int
    detail: str


@dataclass
class SegmentScan:
    """Result of scanning one segment: the valid prefix + any damage."""

    records: list[WalRecord]
    good_bytes: int  # byte offset of the end of the last valid record
    damage: SegmentDamage | None = None


def encode_record(
    rtype: WalRecordType,
    lsn: int,
    table: str,
    payload: bytes,
    txn_id: int = AUTO_COMMIT_TXN,
) -> bytes:
    table_bytes = table.encode("utf-8")
    body = (
        _BODY_HEADER.pack(int(rtype), lsn, txn_id, len(table_bytes))
        + table_bytes
        + payload
    )
    return _FRAME_HEADER.pack(len(body), crc32c(body)) + body


def _decode_body(body: bytes) -> WalRecord:
    """Decode a CRC-verified body; raises ``ValueError`` on bad structure."""
    rtype_raw, lsn, txn_id, table_len = _BODY_HEADER.unpack_from(body, 0)
    if MIN_BODY_BYTES + table_len > len(body):
        raise ValueError(f"table name ({table_len} bytes) overruns the body")
    table = body[MIN_BODY_BYTES : MIN_BODY_BYTES + table_len].decode("utf-8")
    return WalRecord(
        lsn=lsn,
        rtype=WalRecordType(rtype_raw),
        table=table,
        payload=body[MIN_BODY_BYTES + table_len :],
        txn_id=txn_id,
    )


def _record_at(data: bytes, pos: int) -> tuple[WalRecord, int] | str:
    """Decode the record at ``pos``; returns (record, end) or a reason string."""
    if len(data) - pos < _FRAME_HEADER.size:
        return f"only {len(data) - pos} bytes left, frame header needs 8"
    length, crc = _FRAME_HEADER.unpack_from(data, pos)
    body_start = pos + _FRAME_HEADER.size
    if length > len(data) - body_start:
        return (
            f"frame claims {length} body bytes but only "
            f"{len(data) - body_start} remain"
        )
    body = data[body_start : body_start + length]
    if crc32c(body) != crc:
        return "record CRC-32C mismatch"
    if length < MIN_BODY_BYTES:
        return f"body of {length} bytes is below the {MIN_BODY_BYTES}-byte minimum"
    try:
        record = _decode_body(body)
    except (ValueError, UnicodeDecodeError) as exc:
        return f"undecodable body: {exc}"
    return record, body_start + length


def scan_segment(data: bytes, first_lsn: int, source: str = "<segment>") -> SegmentScan:
    """Parse every record of one segment, classifying any damage.

    ``first_lsn`` is the LSN the segment's first record must carry (it is
    encoded in the segment's file name). The scan stops at the first bad
    record; whether that is a tolerable torn tail or hard corruption is
    decided by looking *past* it — real data after a bad record means
    truncating would silently lose committed statements, so that case is
    reported as ``corrupt`` and recovery refuses to open the log.
    """
    records: list[WalRecord] = []
    pos = 0
    expected_lsn = first_lsn
    while pos < len(data):
        outcome = _record_at(data, pos)
        if isinstance(outcome, str):
            kind = "corrupt" if _valid_record_after(data, pos) else "torn-tail"
            return SegmentScan(
                records, pos, SegmentDamage(kind, pos, outcome)
            )
        record, end = outcome
        if record.lsn != expected_lsn:
            return SegmentScan(
                records,
                pos,
                SegmentDamage(
                    "corrupt",
                    pos,
                    f"LSN {record.lsn} where {expected_lsn} was expected "
                    "(log sequence broken)",
                ),
            )
        records.append(record)
        expected_lsn = record.lsn + 1
        pos = end
    return SegmentScan(records, pos)


def _valid_record_after(data: bytes, bad_pos: int) -> bool:
    """Does a well-formed record exist after the bad one at ``bad_pos``?

    Checks the position the bad frame's length field claims (the common
    mid-log bit-flip case: the CRC or body was hit but the length is
    intact, so the next frame still starts where it should).
    """
    if len(data) - bad_pos < _FRAME_HEADER.size:
        return False
    length, _ = _FRAME_HEADER.unpack_from(data, bad_pos)
    claimed_end = bad_pos + _FRAME_HEADER.size + length
    if claimed_end >= len(data):
        return False
    return not isinstance(_record_at(data, claimed_end), str)


def require_clean_scan(scan: SegmentScan, source: str) -> None:
    """Raise :class:`WalCorruptError` if a scan found hard corruption."""
    if scan.damage is not None and scan.damage.kind == "corrupt":
        raise WalCorruptError(
            scan.damage.detail, segment=source, offset=scan.damage.offset
        )
