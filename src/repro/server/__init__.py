"""Embedded server: the concurrency layer over a local socket."""

from .server import DEFAULT_HOST, ReproServer, ServerClient, ServerError, serve

__all__ = ["DEFAULT_HOST", "ReproServer", "ServerClient", "ServerError", "serve"]
