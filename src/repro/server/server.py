"""Embedded SQL server: one session per connection, JSON lines over TCP.

``repro serve <dir>`` hosts a durable database on a local socket. The
protocol is deliberately tiny — one JSON object per line in each
direction — because the point of this layer is the *session semantics*
(snapshot reads, owned transactions, graceful drain), not wire-format
engineering:

    → {"sql": "SELECT a FROM t"}
    ← {"ok": true, "columns": ["a"], "rows": [[1], [2]], "rowcount": 2}
    → {"sql": "INSERT INTO t VALUES (3)"}
    ← {"ok": true, "columns": ["rows_affected"], "rows": [[1]], "rowcount": 1}
    → {"sql": "SELEC"}
    ← {"ok": false, "error": "...", "kind": "SqlSyntaxError"}

Values that JSON cannot carry natively (dates, decimals) are rendered
with ``str``. Each connection owns one :class:`Session`, so BEGIN /
COMMIT / ROLLBACK have per-connection semantics and a dropped
connection rolls its open transaction back.

Shutdown is graceful: the listener closes immediately, idle
connections are disconnected, and connections mid-statement finish and
send their response before closing (drain, bounded by a timeout). A
connection still running when the drain budget expires is severed and
counted in the ``server.drain_killed`` metric.

The server also applies **admission control**: beyond
``max_connections`` concurrent clients (plus a bounded listen backlog)
new connections are turned away with a retryable ``AdmissionError``
payload, and beyond ``max_statements`` concurrently-executing
statements a request is shed the same way instead of queueing without
bound. Every error payload carries ``retryable`` so clients know
whether backing off and retrying can succeed —
:class:`ServerClient.sql` does exactly that with jittered exponential
backoff.
"""

from __future__ import annotations

import json
import logging
import random
import socket
import threading
import time
from typing import Any

from ..errors import ConcurrencyError, ReproError
from .. import __version__ as _version
from ..concurrency import ConcurrentDatabase
from ..observability import registry as metrics

logger = logging.getLogger("repro.server")

DEFAULT_HOST = "127.0.0.1"
SHUTDOWN_DRAIN_SECONDS = 30.0
DEFAULT_MAX_CONNECTIONS = 64
DEFAULT_MAX_STATEMENTS = 16
DEFAULT_LISTEN_BACKLOG = 16


def _encode(payload: dict[str, Any]) -> bytes:
    return (json.dumps(payload, default=str) + "\n").encode("utf-8")


def _result_payload(result) -> dict[str, Any]:
    if result is None:  # DDL / txn control
        return {"ok": True, "columns": None, "rows": None, "rowcount": 0}
    rows = [list(row) for row in result.rows]
    return {
        "ok": True,
        "columns": list(result.columns),
        "rows": rows,
        "rowcount": len(rows),
    }


def _error_payload(error: str, kind: str, retryable: bool) -> dict[str, Any]:
    """An error response; ``retryable`` tells the client a backoff-and-
    retry can succeed (shed, lock timeout, cancelled — not syntax errors)."""
    return {"ok": False, "error": error, "kind": kind, "retryable": retryable}


class _Connection:
    """One client connection: a socket, a session, a handler thread."""

    def __init__(self, server: "ReproServer", sock: socket.socket, session) -> None:
        self.server = server
        self.sock = sock
        self.session = session
        self.busy = threading.Event()  # set while a statement executes
        self.thread: threading.Thread | None = None

    def serve(self) -> None:
        reader = self.sock.makefile("rb")
        try:
            for raw in reader:
                line = raw.strip()
                if not line:
                    continue
                response = self._handle_line(line)
                try:
                    self.sock.sendall(_encode(response))
                except OSError:
                    break  # client went away mid-response
                if self.server.stopping:
                    break
        except OSError:
            pass  # connection reset / closed under us — normal teardown
        finally:
            self.busy.clear()
            try:
                reader.close()
            except OSError:
                pass
            self.close()
            self.server._forget(self)

    def _handle_line(self, line: bytes) -> dict[str, Any]:
        try:
            request = json.loads(line)
            sql = request["sql"]
        except (ValueError, KeyError, TypeError) as exc:
            return _error_payload(f"bad request: {exc}", "Protocol", retryable=False)
        if not self.server._statement_slots.acquire(blocking=False):
            # Statement-level admission: at max_statements concurrent
            # executions, shed instead of queueing without bound.
            metrics.increment("governance.statements_shed")
            return _error_payload(
                f"server at max_statements={self.server.max_statements} "
                "concurrent statements — retry with backoff",
                "AdmissionError",
                retryable=True,
            )
        self.busy.set()
        try:
            return _result_payload(self.session.sql(sql))
        except ReproError as exc:
            return _error_payload(
                str(exc), type(exc).__name__, retryable=bool(exc.retryable)
            )
        except Exception as exc:  # engine bug — report, keep serving
            return _error_payload(str(exc), type(exc).__name__, retryable=False)
        finally:
            self.busy.clear()
            self.server._statement_slots.release()

    def close(self) -> None:
        try:
            self.session.close()
        finally:
            try:
                self.sock.close()
            except OSError:
                pass


class ReproServer:
    """Serve a :class:`ConcurrentDatabase` on a local TCP socket."""

    def __init__(
        self,
        cdb: ConcurrentDatabase,
        host: str = DEFAULT_HOST,
        port: int = 0,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        max_statements: int = DEFAULT_MAX_STATEMENTS,
        idle_timeout: float | None = None,
        listen_backlog: int = DEFAULT_LISTEN_BACKLOG,
    ) -> None:
        self.cdb = cdb
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.stopping = False
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[_Connection] = set()
        self._conn_lock = threading.Lock()
        # Admission control: connection cap, statement cap, and a bounded
        # accept backlog so overload turns into fast sheds, not queues.
        self.max_connections = max(1, int(max_connections))
        self.max_statements = max(1, int(max_statements))
        self.idle_timeout = idle_timeout
        self._listen_backlog = max(1, int(listen_backlog))
        self._statement_slots = threading.Semaphore(self.max_statements)
        self.drain_killed = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> int:
        """Bind and start accepting; returns the bound port."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(self._listen_backlog)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self.port

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self.stopping:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                break  # listener closed: shutdown
            if self.connection_count >= self.max_connections:
                # Connection-level admission: answer with a retryable
                # shed instead of letting the client hang in the backlog.
                metrics.increment("governance.statements_shed")
                try:
                    sock.sendall(
                        _encode(
                            _error_payload(
                                f"server at max_connections={self.max_connections}"
                                " — retry with backoff",
                                "AdmissionError",
                                retryable=True,
                            )
                        )
                    )
                except OSError:
                    pass
                sock.close()
                continue
            try:
                session = self.cdb.session()
            except ConcurrencyError:
                sock.close()  # database closing underneath us
                break
            if self.idle_timeout is not None:
                # Bounds both idle reads and stuck writes: a connection
                # that neither sends nor drains for this long is dropped
                # (its session rolls back in close()).
                sock.settimeout(self.idle_timeout)
            connection = _Connection(self, sock, session)
            with self._conn_lock:
                if self.stopping:
                    connection.close()
                    continue
                self._connections.add(connection)
            thread = threading.Thread(
                target=connection.serve,
                name=f"repro-server-{session.name}",
                daemon=True,
            )
            connection.thread = thread
            thread.start()

    def _forget(self, connection: _Connection) -> None:
        with self._conn_lock:
            self._connections.discard(connection)

    @property
    def connection_count(self) -> int:
        with self._conn_lock:
            return len(self._connections)

    def shutdown(self, drain_seconds: float = SHUTDOWN_DRAIN_SECONDS) -> None:
        """Stop accepting, drain in-flight statements, close everything.

        Idle connections are disconnected immediately; a connection in
        the middle of a statement gets to finish it and send the
        response. Safe to call twice.
        """
        if self.stopping:
            return
        self.stopping = True
        if self._listener is not None:
            # shutdown() before close(): on Linux, close() alone does
            # not wake a thread blocked in accept().
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            if not connection.busy.is_set():
                # Not executing: unblock its readline so the handler
                # exits. A statement that starts between the check and
                # the shutdown still completes — sendall fails only
                # after the response attempt, and the session rollback
                # in close() keeps the engine consistent either way.
                try:
                    connection.sock.shutdown(socket.SHUT_RD)
                except OSError:
                    pass
        deadline = drain_seconds
        for connection in connections:
            thread = connection.thread
            if thread is None:
                continue
            step = min(0.1, max(deadline, 0.0)) or 0.1
            while thread.is_alive() and deadline > 0:
                thread.join(timeout=step)
                deadline -= step
            if thread.is_alive():
                # Drain budget exhausted: cancel the in-flight statement
                # (it unwinds at its next governance checkpoint) and
                # sever the socket; the handler dies on its next I/O and
                # the session rolls back. Count it — a nonzero
                # server.drain_killed after shutdown means clients lost
                # in-flight work.
                self.drain_killed += 1
                metrics.increment("server.drain_killed")
                logger.warning(
                    "drain expired: killing connection %s mid-statement",
                    connection.session.name,
                )
                try:
                    connection.session.cancel_running()
                except Exception:
                    pass
                try:
                    connection.sock.close()
                except OSError:
                    pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(
    path: str,
    host: str = DEFAULT_HOST,
    port: int = 0,
    max_connections: int = DEFAULT_MAX_CONNECTIONS,
    max_statements: int = DEFAULT_MAX_STATEMENTS,
    idle_timeout: float | None = None,
    **open_kwargs: Any,
):
    """Open the database at ``path`` and serve it until interrupted.

    The CLI entry point (``repro serve <dir>``). Blocks; Ctrl-C drains
    and closes. Returns the exit code.
    """
    cdb = ConcurrentDatabase.open(path, **open_kwargs)
    server = ReproServer(
        cdb,
        host=host,
        port=port,
        max_connections=max_connections,
        max_statements=max_statements,
        idle_timeout=idle_timeout,
    )
    bound = server.start()
    print(f"repro {_version} serving {path!r} on {host}:{bound} (Ctrl-C to stop)")
    try:
        while True:
            threading.Event().wait(3600)
    except KeyboardInterrupt:
        print("shutting down: draining in-flight statements ...")
    finally:
        server.shutdown()
        cdb.close()
    return 0


class ServerError(RuntimeError):
    """An error response from the server, with its kind and retryability."""

    def __init__(self, kind: str, message: str, retryable: bool = False) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.retryable = retryable


class ServerClient:
    """Tiny test/tooling client for the JSON-lines protocol.

    ``connect_timeout`` bounds only the TCP connect; ``timeout`` bounds
    each response read (they used to be one knob, which made a slow
    query indistinguishable from an unreachable server). ``retries``
    makes :meth:`sql` retry *retryable* error responses (admission
    sheds, lock timeouts) with jittered exponential backoff.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        connect_timeout: float = 5.0,
        retries: int = 3,
        backoff: float = 0.05,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        # From here on the socket timeout governs reads/writes, not the
        # (usually much shorter) connect budget.
        self._sock.settimeout(timeout)
        self._reader = self._sock.makefile("rb")
        self._retries = max(0, int(retries))
        self._backoff = backoff

    def request(self, sql: str) -> dict[str, Any]:
        """Send one statement; return the raw response payload."""
        self._sock.sendall(_encode({"sql": sql}))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def sql(self, sql: str) -> dict[str, Any]:
        """Send one statement; raise :class:`ServerError` on failure.

        Retryable failures (shed by admission control, lock timeouts)
        are retried up to ``retries`` times with jittered exponential
        backoff before the error surfaces.
        """
        attempt = 0
        while True:
            response = self.request(sql)
            if response.get("ok"):
                return response
            retryable = bool(response.get("retryable"))
            if not retryable or attempt >= self._retries:
                raise ServerError(
                    response.get("kind", "Error"),
                    str(response.get("error")),
                    retryable=retryable,
                )
            # Full jitter: sleep uniformly within the doubled window so
            # shed clients don't retry in lockstep.
            time.sleep(random.uniform(0, self._backoff * (2**attempt)))
            attempt += 1

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
