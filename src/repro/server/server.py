"""Embedded SQL server: one session per connection, JSON lines over TCP.

``repro serve <dir>`` hosts a durable database on a local socket. The
protocol is deliberately tiny — one JSON object per line in each
direction — because the point of this layer is the *session semantics*
(snapshot reads, owned transactions, graceful drain), not wire-format
engineering:

    → {"sql": "SELECT a FROM t"}
    ← {"ok": true, "columns": ["a"], "rows": [[1], [2]], "rowcount": 2}
    → {"sql": "INSERT INTO t VALUES (3)"}
    ← {"ok": true, "columns": ["rows_affected"], "rows": [[1]], "rowcount": 1}
    → {"sql": "SELEC"}
    ← {"ok": false, "error": "...", "kind": "SqlSyntaxError"}

Values that JSON cannot carry natively (dates, decimals) are rendered
with ``str``. Each connection owns one :class:`Session`, so BEGIN /
COMMIT / ROLLBACK have per-connection semantics and a dropped
connection rolls its open transaction back.

Shutdown is graceful: the listener closes immediately, idle
connections are disconnected, and connections mid-statement finish and
send their response before closing (drain, bounded by a timeout).
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any

from ..errors import ConcurrencyError, ReproError
from .. import __version__ as _version
from ..concurrency import ConcurrentDatabase

DEFAULT_HOST = "127.0.0.1"
SHUTDOWN_DRAIN_SECONDS = 30.0


def _encode(payload: dict[str, Any]) -> bytes:
    return (json.dumps(payload, default=str) + "\n").encode("utf-8")


def _result_payload(result) -> dict[str, Any]:
    if result is None:  # DDL / txn control
        return {"ok": True, "columns": None, "rows": None, "rowcount": 0}
    rows = [list(row) for row in result.rows]
    return {
        "ok": True,
        "columns": list(result.columns),
        "rows": rows,
        "rowcount": len(rows),
    }


class _Connection:
    """One client connection: a socket, a session, a handler thread."""

    def __init__(self, server: "ReproServer", sock: socket.socket, session) -> None:
        self.server = server
        self.sock = sock
        self.session = session
        self.busy = threading.Event()  # set while a statement executes
        self.thread: threading.Thread | None = None

    def serve(self) -> None:
        reader = self.sock.makefile("rb")
        try:
            for raw in reader:
                line = raw.strip()
                if not line:
                    continue
                response = self._handle_line(line)
                try:
                    self.sock.sendall(_encode(response))
                except OSError:
                    break  # client went away mid-response
                if self.server.stopping:
                    break
        except OSError:
            pass  # connection reset / closed under us — normal teardown
        finally:
            self.busy.clear()
            try:
                reader.close()
            except OSError:
                pass
            self.close()
            self.server._forget(self)

    def _handle_line(self, line: bytes) -> dict[str, Any]:
        try:
            request = json.loads(line)
            sql = request["sql"]
        except (ValueError, KeyError, TypeError) as exc:
            return {"ok": False, "error": f"bad request: {exc}", "kind": "Protocol"}
        self.busy.set()
        try:
            return _result_payload(self.session.sql(sql))
        except ReproError as exc:
            return {"ok": False, "error": str(exc), "kind": type(exc).__name__}
        except Exception as exc:  # engine bug — report, keep serving
            return {"ok": False, "error": str(exc), "kind": type(exc).__name__}
        finally:
            self.busy.clear()

    def close(self) -> None:
        try:
            self.session.close()
        finally:
            try:
                self.sock.close()
            except OSError:
                pass


class ReproServer:
    """Serve a :class:`ConcurrentDatabase` on a local TCP socket."""

    def __init__(
        self,
        cdb: ConcurrentDatabase,
        host: str = DEFAULT_HOST,
        port: int = 0,
    ) -> None:
        self.cdb = cdb
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.stopping = False
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[_Connection] = set()
        self._conn_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> int:
        """Bind and start accepting; returns the bound port."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen()
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self.port

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self.stopping:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                break  # listener closed: shutdown
            try:
                session = self.cdb.session()
            except ConcurrencyError:
                sock.close()  # database closing underneath us
                break
            connection = _Connection(self, sock, session)
            with self._conn_lock:
                if self.stopping:
                    connection.close()
                    continue
                self._connections.add(connection)
            thread = threading.Thread(
                target=connection.serve,
                name=f"repro-server-{session.name}",
                daemon=True,
            )
            connection.thread = thread
            thread.start()

    def _forget(self, connection: _Connection) -> None:
        with self._conn_lock:
            self._connections.discard(connection)

    @property
    def connection_count(self) -> int:
        with self._conn_lock:
            return len(self._connections)

    def shutdown(self, drain_seconds: float = SHUTDOWN_DRAIN_SECONDS) -> None:
        """Stop accepting, drain in-flight statements, close everything.

        Idle connections are disconnected immediately; a connection in
        the middle of a statement gets to finish it and send the
        response. Safe to call twice.
        """
        if self.stopping:
            return
        self.stopping = True
        if self._listener is not None:
            # shutdown() before close(): on Linux, close() alone does
            # not wake a thread blocked in accept().
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            if not connection.busy.is_set():
                # Not executing: unblock its readline so the handler
                # exits. A statement that starts between the check and
                # the shutdown still completes — sendall fails only
                # after the response attempt, and the session rollback
                # in close() keeps the engine consistent either way.
                try:
                    connection.sock.shutdown(socket.SHUT_RD)
                except OSError:
                    pass
        deadline = drain_seconds
        for connection in connections:
            thread = connection.thread
            if thread is None:
                continue
            step = min(0.1, max(deadline, 0.0)) or 0.1
            while thread.is_alive() and deadline > 0:
                thread.join(timeout=step)
                deadline -= step
            if thread.is_alive():
                # Drain budget exhausted: sever the socket; the handler
                # dies on its next I/O and the session rolls back.
                try:
                    connection.sock.close()
                except OSError:
                    pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(path: str, host: str = DEFAULT_HOST, port: int = 0, **open_kwargs: Any):
    """Open the database at ``path`` and serve it until interrupted.

    The CLI entry point (``repro serve <dir>``). Blocks; Ctrl-C drains
    and closes. Returns the exit code.
    """
    cdb = ConcurrentDatabase.open(path, **open_kwargs)
    server = ReproServer(cdb, host=host, port=port)
    bound = server.start()
    print(f"repro {_version} serving {path!r} on {host}:{bound} (Ctrl-C to stop)")
    try:
        while True:
            threading.Event().wait(3600)
    except KeyboardInterrupt:
        print("shutting down: draining in-flight statements ...")
    finally:
        server.shutdown()
        cdb.close()
    return 0


class ServerClient:
    """Tiny test/tooling client for the JSON-lines protocol."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    def request(self, sql: str) -> dict[str, Any]:
        """Send one statement; return the raw response payload."""
        self._sock.sendall(_encode({"sql": sql}))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def sql(self, sql: str) -> dict[str, Any]:
        """Send one statement; raise on an error response."""
        response = self.request(sql)
        if not response.get("ok"):
            raise RuntimeError(
                f"{response.get('kind', 'Error')}: {response.get('error')}"
            )
        return response

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
