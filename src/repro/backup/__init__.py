"""Hot backup, WAL archiving, and point-in-time recovery.

Three cooperating pieces (DESIGN.md "Backup & point-in-time recovery"):

* :mod:`~repro.backup.backup` — a consistent, checksummed image of a
  *live* database: barrier (pin epoch, capture manifest bytes, defer
  checkpoints) then copy, committed by ``BACKUP_MANIFEST.json`` and
  verified by read-back.
* :mod:`~repro.backup.archive` — sealed WAL segments copied aside on
  rotation and before checkpoint truncation, turning the recovery log
  into replayable history; retention bounded by the oldest registered
  backup.
* :mod:`~repro.backup.restore` — lay a backup down, clip the WAL at a
  commit boundary, and let the engine's own replay do the rest.
"""

from .archive import ARCHIVE_DIR_NAME, WalArchiver, check_archive
from .backup import BackupJob, BackupResult, backup_database, prepare_backup
from .manifest import (
    BACKUP_MANIFEST_NAME,
    RESTORE_MARKER_NAME,
    BackupManifest,
    load_backup_manifest,
    verify_backup,
)
from .restore import (
    RestoreResult,
    commit_boundaries,
    resolve_target,
    restore_backup,
)

__all__ = [
    "ARCHIVE_DIR_NAME",
    "BACKUP_MANIFEST_NAME",
    "RESTORE_MARKER_NAME",
    "BackupJob",
    "BackupManifest",
    "BackupResult",
    "RestoreResult",
    "WalArchiver",
    "backup_database",
    "check_archive",
    "commit_boundaries",
    "load_backup_manifest",
    "prepare_backup",
    "resolve_target",
    "restore_backup",
    "verify_backup",
]
