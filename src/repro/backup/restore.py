"""Point-in-time restore: lay down a backup, replay to a commit boundary.

Restore is file-layout work, not engine work: it writes a *database
directory* that :meth:`Database.load` then recovers through the one
replay path the engine already trusts. The destination's WAL is
physically clipped at the recovery target, so a plain ``load`` replays
exactly to the requested point — there is no "replay up to N" parameter
to get wrong.

**Targets** must be *commit boundaries*: the LSN of an auto-committed
statement record, of a ``TXN_COMMIT``/``TXN_ABORT`` marker, or the
backup's own checkpoint LSN. Any other LSN lands mid-transaction; replay
of such a prefix would silently drop the transaction (its commit marker
is beyond the clip), so the target is rejected with
:class:`~repro.errors.RestoreTargetError` naming the enclosing
transaction and the nearest valid boundaries on both sides.

**Crash safety** mirrors the backup side, inverted: a
``RESTORE_IN_PROGRESS`` marker is the *first* file written and the
*last* removed. While it exists the destination is not a committed
database — :meth:`Database.load` refuses it and ``repro check`` reports
it — so a crash at any write point leaves something clearly
uncommitted, never a silently short database.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path, PurePosixPath

from ..errors import BackupError, RestoreError, RestoreTargetError
from ..observability import registry as metrics
from ..storage.diskio import DiskIO
from ..storage.snapshot import MANIFEST_NAME
from ..wal.log import WAL_DIR_NAME, _SEGMENT_RE, _segment_name
from ..wal.record import (
    TXN_MARKER_TYPES,
    AUTO_COMMIT_TXN,
    WalRecord,
    WalRecordType,
    encode_record,
    scan_segment,
)
from .manifest import (
    BACKUP_MANIFEST_NAME,
    IMAGE_DIR_NAME,
    RESTORE_MARKER_NAME,
    WAL_SUBDIR_NAME,
    verify_backup,
)


@dataclass
class RestoreResult:
    """What a completed restore produced."""

    dest: str
    target_lsn: int
    backup_lsn: int
    checkpoint_lsn: int
    records: int  # WAL records laid down for replay
    epoch: int | None  # known only when the target is the backup cut


# ---------------------------------------------------------------------- #
# Commit boundaries and target resolution
# ---------------------------------------------------------------------- #
def is_commit_boundary(record: WalRecord) -> bool:
    """Is the state *after* this record a committed point?"""
    if record.rtype in (WalRecordType.TXN_COMMIT, WalRecordType.TXN_ABORT):
        return True
    return (
        record.txn_id == AUTO_COMMIT_TXN
        and record.rtype not in TXN_MARKER_TYPES
    )


def commit_boundaries(records: list[WalRecord], checkpoint_lsn: int) -> list[int]:
    """Every valid recovery target, ascending (the checkpoint included)."""
    return [checkpoint_lsn] + [r.lsn for r in records if is_commit_boundary(r)]


def resolve_target(
    records: list[WalRecord],
    checkpoint_lsn: int,
    to_lsn: int | None = None,
    to_txn: int | None = None,
) -> int:
    """Map a requested target onto a commit boundary, or reject it.

    ``records`` is the contiguous history available for replay (LSNs
    ``checkpoint_lsn + 1 ..``). With neither ``to_lsn`` nor ``to_txn``
    the newest boundary wins (records of a transaction still in flight
    at the end of history are dropped, exactly like crash recovery).
    """
    if to_lsn is not None and to_txn is not None:
        raise RestoreTargetError("give either --to-lsn or --to-txn, not both")
    bounds = commit_boundaries(records, checkpoint_lsn)
    if to_txn is not None:
        for record in records:
            if (
                record.rtype is WalRecordType.TXN_COMMIT
                and record.txn_id == to_txn
            ):
                return record.lsn
        raise RestoreTargetError(
            f"transaction {to_txn} has no COMMIT in the available history — "
            "it aborted, never finished, or lies beyond the archive",
            target=to_txn,
        )
    if to_lsn is None:
        return bounds[-1]
    if to_lsn in set(bounds):
        return to_lsn
    last_available = records[-1].lsn if records else checkpoint_lsn
    if to_lsn < checkpoint_lsn:
        raise RestoreTargetError(
            f"LSN {to_lsn} predates this backup's base image (checkpoint "
            f"LSN {checkpoint_lsn}) — restore from an older backup",
            target=to_lsn,
            next_boundary=checkpoint_lsn,
        )
    if to_lsn > last_available:
        raise RestoreTargetError(
            f"LSN {to_lsn} is beyond the end of available history (last "
            f"available LSN is {last_available}) — archive more segments or "
            "pick an earlier target",
            target=to_lsn,
            previous_boundary=bounds[-1],
        )
    previous = max(b for b in bounds if b < to_lsn)
    following = min((b for b in bounds if b > to_lsn), default=None)
    record = next(r for r in records if r.lsn == to_lsn)
    raise RestoreTargetError(
        f"LSN {to_lsn} is not a commit boundary: record {record.rtype.name} "
        f"is inside transaction {record.txn_id} — nearest boundaries are "
        f"{previous} (before) and {following} (after)",
        target=to_lsn,
        previous_boundary=previous,
        next_boundary=following,
    )


# ---------------------------------------------------------------------- #
# The restore itself
# ---------------------------------------------------------------------- #
def restore_backup(
    backup_root,
    dest,
    disk: DiskIO | None = None,
    to_lsn: int | None = None,
    to_txn: int | None = None,
    archive=None,
) -> RestoreResult:
    """Restore ``backup_root`` into the fresh directory ``dest``.

    ``archive`` (a WAL-archive directory) extends the reachable history
    past the backup's own cut; without it, targets beyond ``backup_lsn``
    are unreachable. Fully verifies the backup image first — a torn
    backup raises :class:`~repro.errors.BackupError` before a single
    byte lands in ``dest``.
    """
    disk = disk or DiskIO()
    backup_root = Path(backup_root)
    dest = Path(dest)
    manifest = verify_backup(disk, backup_root)

    # -- assemble the available history: backup WAL, then the archive.
    by_lsn: dict[int, WalRecord] = {}
    for entry in manifest.files:
        rel = PurePosixPath(entry.path)
        if rel.parts[0] != WAL_SUBDIR_NAME:
            continue
        match = _SEGMENT_RE.match(rel.name)
        if match is None:
            raise BackupError(f"{backup_root}: unrecognized WAL file {entry.path}")
        first_lsn = int(match.group(1))
        scan = scan_segment(
            disk.read_file(backup_root / rel), first_lsn, source=str(rel)
        )
        if scan.damage is not None:
            raise BackupError(
                f"{backup_root}/{entry.path}: {scan.damage.detail} — the "
                "backup's WAL prefix is damaged"
            )
        for record in scan.records:
            by_lsn[record.lsn] = record
    if archive is not None:
        for first_lsn, name in _archive_segments(disk, Path(archive)):
            scan = scan_segment(
                disk.read_file(Path(archive) / name), first_lsn, source=name
            )
            if scan.damage is not None:
                raise RestoreError(
                    f"archived segment {name}: {scan.damage.detail} — "
                    "refusing to replay damaged history"
                )
            for record in scan.records:
                by_lsn.setdefault(record.lsn, record)

    # Only the contiguous prefix is replayable: a gap (an unarchived
    # segment) makes everything past it unreachable.
    ordered: list[WalRecord] = []
    lsn = manifest.checkpoint_lsn + 1
    while lsn in by_lsn:
        ordered.append(by_lsn[lsn])
        lsn += 1

    target = resolve_target(
        ordered, manifest.checkpoint_lsn, to_lsn=to_lsn, to_txn=to_txn
    )
    clipped = [r for r in ordered if r.lsn <= target]

    # -- lay the destination down under the in-progress marker.
    _claim_destination(disk, dest, backup_root, target)
    for entry in manifest.files:
        rel = PurePosixPath(entry.path)
        if rel.parts[0] != IMAGE_DIR_NAME:
            continue
        out = dest / PurePosixPath(*rel.parts[1:])
        disk.write_file(out, disk.read_file(backup_root / rel))
    disk.mkdir(dest / WAL_DIR_NAME)
    if clipped:
        merged = b"".join(
            encode_record(r.rtype, r.lsn, r.table, r.payload, r.txn_id)
            for r in clipped
        )
        segment_name = _segment_name(clipped[0].lsn)
        disk.write_file(dest / WAL_DIR_NAME / segment_name, merged)
        # Read-back: the laid-down log must scan clean up to the target
        # before the restore may commit.
        check = scan_segment(
            disk.read_file(dest / WAL_DIR_NAME / segment_name),
            clipped[0].lsn,
            source=segment_name,
        )
        if check.damage is not None or (
            check.records and check.records[-1].lsn != target
        ):
            raise RestoreError(
                f"{dest}: restored WAL failed read-back verification"
            )
    if manifest.snapshot_id is not None and not disk.exists(dest / MANIFEST_NAME):
        raise RestoreError(f"{dest}: restored image failed read-back verification")

    # -- commit: removing the marker is what makes dest a database.
    disk.remove(dest / RESTORE_MARKER_NAME)
    metrics.increment("restore.records_restored", len(clipped))
    metrics.increment("restore.completed")
    return RestoreResult(
        dest=str(dest),
        target_lsn=target,
        backup_lsn=manifest.backup_lsn,
        checkpoint_lsn=manifest.checkpoint_lsn,
        records=len(clipped),
        epoch=manifest.epoch if target == manifest.backup_lsn else None,
    )


def _claim_destination(
    disk: DiskIO, dest: Path, backup_root: Path, target: int
) -> None:
    """Make ``dest`` ours: empty, or a previous *uncommitted* restore.

    A directory that holds anything but a marked-in-progress restore is
    refused — restore never overwrites a committed database.
    """
    existing = disk.listdir(dest)
    # Stray ``*.tmp`` files are write-temp leftovers (a crash can land
    # between a temp write and its rename) — they never name committed
    # state, so a dest holding only those is still claimable.
    committed = [name for name in existing if not name.endswith(".tmp")]
    if committed and not disk.exists(dest / RESTORE_MARKER_NAME):
        raise RestoreError(
            f"{dest} is not empty and is not an interrupted restore — "
            "refusing to overwrite it"
        )
    for name in existing:
        if name != RESTORE_MARKER_NAME:
            disk.remove_tree(dest / name)
    marker = json.dumps(
        {"backup": str(backup_root), "target_lsn": target}, sort_keys=True
    ).encode("utf-8")
    disk.write_file(dest / RESTORE_MARKER_NAME, marker)


def _archive_segments(disk: DiskIO, root: Path) -> list[tuple[int, str]]:
    segments = []
    for name in disk.listdir(root):
        match = _SEGMENT_RE.match(name)
        if match:
            segments.append((int(match.group(1)), name))
    segments.sort()
    return segments
