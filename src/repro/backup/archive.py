"""WAL archiving: sealed segments copied aside for point-in-time recovery.

The live WAL is a *recovery* log: checkpoints truncate everything a
snapshot covers, so on its own it can only replay forward from the last
checkpoint. The archive turns it into a *history* log: every sealed
segment is CRC-verified and copied into ``<root>/wal_archive/`` — on
rotation (so the archive tracks the log as it grows) and, as a
backstop, before checkpoint truncation deletes a segment
(archive-before-delete: with an archiver attached, no segment ever
leaves the live log without provably existing in the archive first).

Retention is bounded by the oldest registered backup: a backup registers
itself in ``backups.json`` on completion, and :meth:`WalArchiver.prune`
removes archived segments every record of which is at or below the
oldest backup's checkpoint LSN — those effects are baked into every
backup's base image, so no restore can need them. With no registered
backup nothing is pruned: the operator may be archiving ahead of their
first backup.

This is the same log-shipping machinery a read replica would consume
(ROADMAP "scale-out"): an archive directory on shared storage *is* a
replication feed with file-level granularity.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import WalCorruptError
from ..observability import registry as metrics
from ..storage.diskio import DiskIO, crc32c
from ..wal.log import _SEGMENT_RE, WalVerdict, _list_segments
from ..wal.record import scan_segment

#: Default archive location, a sibling of the ``wal/`` directory.
ARCHIVE_DIR_NAME = "wal_archive"

#: The retention registry: which backups still need which segments.
BACKUPS_REGISTRY_NAME = "backups.json"


class WalArchiver:
    """Copies sealed WAL segments into an archive directory.

    Attached to a :class:`~repro.wal.log.WriteAheadLog` via
    ``set_archiver``; also used standalone by restore to read the
    archive back. All writes go through the same
    write-temp/fsync/atomic-rename protocol as snapshots, so a crash
    mid-archive leaves at most a ``*.tmp`` stray, never a half segment
    under a real name.
    """

    def __init__(self, disk: DiskIO, root: Path) -> None:
        self.disk = disk
        self.root = Path(root)
        # (name, size) -> last LSN, so status() does not rescan segments.
        self._last_lsn_cache: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------ #
    # Archiving
    # ------------------------------------------------------------------ #
    def archive_segment(self, disk: DiskIO, src: Path, first_lsn: int) -> bool:
        """CRC-verify one sealed segment and copy it into the archive.

        Idempotent: a segment already archived with identical bytes is
        skipped. Raises :class:`~repro.errors.WalCorruptError` when the
        *source* fails its scan (archiving damage would launder it into
        the history), and returns False when the written copy fails
        read-back verification (the bad copy is removed so a retry can
        succeed).
        """
        src = Path(src)
        data = disk.read_file(src)
        scan = scan_segment(data, first_lsn, source=src.name)
        if scan.damage is not None:
            raise WalCorruptError(
                f"refusing to archive damaged segment: {scan.damage.detail}",
                segment=src.name,
                offset=scan.damage.offset,
            )
        dest = self.root / src.name
        if self.disk.exists(dest) and self.disk.read_file(dest) == data:
            return True  # already archived, byte-identical
        self.disk.write_file(dest, data)
        readback = self.disk.read_file(dest)
        if crc32c(readback) != crc32c(data):  # pragma: no cover - lying disk
            self.disk.remove(dest)
            return False
        if scan.records:
            self._last_lsn_cache[(src.name, len(data))] = scan.records[-1].lsn
        metrics.increment("wal.archive.segments_archived")
        metrics.increment("wal.archive.bytes", len(data))
        return True

    # ------------------------------------------------------------------ #
    # Reading the archive back
    # ------------------------------------------------------------------ #
    def archived_segments(self) -> list[tuple[int, str]]:
        """(first_lsn, name) of every archived segment, in LSN order."""
        return _list_segments(self.disk, self.root)

    def segment_spans(self) -> list[tuple[str, int, int]]:
        """(name, first_lsn, last_lsn) per archived segment, LSN order.

        Consecutive segments imply each other's bounds (LSNs are
        contiguous), so only the newest segment needs a scan — and that
        scan is cached by (name, size).
        """
        listed = self.archived_segments()
        spans: list[tuple[str, int, int]] = []
        for index, (first_lsn, name) in enumerate(listed):
            if index + 1 < len(listed):
                last = listed[index + 1][0] - 1
            else:
                last = self._scan_last_lsn(name, first_lsn)
            spans.append((name, first_lsn, last))
        return spans

    def _scan_last_lsn(self, name: str, first_lsn: int) -> int:
        path = self.root / name
        size = self.disk.file_size(path)
        cached = self._last_lsn_cache.get((name, size))
        if cached is not None:
            return cached
        scan = scan_segment(self.disk.read_file(path), first_lsn, source=name)
        last = scan.records[-1].lsn if scan.records else first_lsn - 1
        self._last_lsn_cache[(name, size)] = last
        return last

    def last_archived_lsn(self) -> int:
        """The newest archived LSN, 0 when the archive is empty."""
        spans = self.segment_spans()
        return spans[-1][2] if spans else 0

    # ------------------------------------------------------------------ #
    # Retention: bounded by the oldest registered backup
    # ------------------------------------------------------------------ #
    def register_backup(
        self,
        dest: str,
        backup_lsn: int,
        checkpoint_lsn: int,
        epoch: int | None = None,
        snapshot_id: int | None = None,
    ) -> None:
        """Record a completed backup in the retention registry."""
        backups = self.registered_backups()
        backups.append(
            {
                "dest": str(dest),
                "backup_lsn": int(backup_lsn),
                "checkpoint_lsn": int(checkpoint_lsn),
                "epoch": epoch,
                "snapshot_id": snapshot_id,
            }
        )
        payload = json.dumps(
            {"format_version": 1, "backups": backups}, indent=1, sort_keys=True
        ).encode("utf-8")
        self.disk.write_file(self.root / BACKUPS_REGISTRY_NAME, payload)

    def registered_backups(self) -> list[dict]:
        path = self.root / BACKUPS_REGISTRY_NAME
        if not self.disk.exists(path):
            return []
        try:
            body = json.loads(self.disk.read_file(path).decode("utf-8"))
            return list(body["backups"])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            # An unreadable registry must not license pruning: behave as
            # if no backup were registered (keep everything).
            return []

    def retention_floor(self) -> int | None:
        """Oldest checkpoint LSN any registered backup still builds on.

        Segments whose every record is at or below this are baked into
        every backup's base image. ``None`` (no registered backups)
        means nothing may be pruned.
        """
        backups = self.registered_backups()
        if not backups:
            return None
        return min(int(b["checkpoint_lsn"]) for b in backups)

    def prune(self) -> int:
        """Remove archived segments no registered backup can ever need."""
        floor = self.retention_floor()
        if floor is None:
            return 0
        pruned = 0
        for name, _first, last in self.segment_spans():
            if last <= floor:
                self.disk.remove(self.root / name)
                pruned += 1
        if pruned:
            metrics.increment("wal.archive.segments_pruned", pruned)
        return pruned

    # ------------------------------------------------------------------ #
    # Status (the shell's \wal, `repro check`)
    # ------------------------------------------------------------------ #
    def status(self, live_segments: list[str] | None = None) -> dict:
        spans = self.segment_spans()
        archived_names = {name for name, _f, _l in spans}
        pending = [
            name for name in (live_segments or []) if name not in archived_names
        ]
        return {
            "dir": str(self.root),
            "archived_segments": len(spans),
            "pending_segments": len(pending),
            "last_archived_lsn": spans[-1][2] if spans else 0,
            "registered_backups": len(self.registered_backups()),
        }


def check_archive(disk: DiskIO, root: Path) -> list[WalVerdict]:
    """Offline verdicts for an archive directory (`repro check`).

    Verifies each archived segment's CRCs and completeness, LSN
    contiguity across the archive, and — against the retention
    registry — that the archive still starts early enough to serve
    point-in-time targets past each registered backup.
    """
    root = Path(root)
    verdicts: list[WalVerdict] = []
    listed = _list_segments(disk, root)
    previous_last: int | None = None
    first_archived: int | None = None
    for first_lsn, name in listed:
        if previous_last is not None and first_lsn != previous_last + 1:
            verdicts.append(
                WalVerdict(
                    name,
                    "archive-gap",
                    f"starts at LSN {first_lsn}, previous archived segment "
                    f"ended at {previous_last} — restore targets in between "
                    "are unreachable",
                )
            )
        data = disk.read_file(root / name)
        scan = scan_segment(data, first_lsn, source=name)
        if scan.damage is not None:
            # Archived segments are sealed copies: *any* damage —
            # including what the live log would tolerate as a torn
            # tail — makes the copy unusable for restore.
            verdicts.append(
                WalVerdict(
                    name,
                    "corrupt",
                    f"byte {scan.damage.offset}: {scan.damage.detail}",
                )
            )
        else:
            first = scan.records[0].lsn if scan.records else first_lsn
            last = scan.records[-1].lsn if scan.records else first_lsn - 1
            verdicts.append(
                WalVerdict(
                    name, "ok", f"LSN {first}..{last}, {len(scan.records)} records"
                )
            )
            if first_archived is None:
                first_archived = first
            previous_last = last
            continue
        previous_last = None  # damage breaks the chain; report once
    archiver = WalArchiver(disk, root)
    if first_archived is not None:
        for backup in archiver.registered_backups():
            needed = int(backup["backup_lsn"]) + 1
            if first_archived > needed:
                verdicts.append(
                    WalVerdict(
                        "(archive)",
                        "archive-gap",
                        f"backup {backup['dest']} ends at LSN "
                        f"{backup['backup_lsn']} but the oldest archived "
                        f"record is {first_archived} — restore targets "
                        f"{needed}..{first_archived - 1} are unreachable",
                    )
                )
    return verdicts
