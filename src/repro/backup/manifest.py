"""The backup image format: layout constants and the commit record.

A backup directory looks like::

    <dest>/BACKUP_MANIFEST.json     the commit record (atomic rename, last)
    <dest>/image/MANIFEST.json      verbatim copy of the source manifest
    <dest>/image/snap_000007/...    the snapshot's data files, verbatim
    <dest>/wal/seg_<lsn>.wal        the covered WAL prefix, clipped at
                                    the backup LSN

``BACKUP_MANIFEST.json`` mirrors the snapshot-manifest protocol
(:mod:`repro.storage.snapshot`): it lists every file with its byte size
and CRC-32C, carries a checksum over itself, and is written *last* via
write-temp/fsync/atomic-rename. A backup without a valid manifest is by
definition torn — restore refuses it with
:class:`~repro.errors.BackupError` — so a crash at any point during the
copy can never produce something restorable-as-valid.

The nested ``image/`` layout is deliberate: a backup directory is not a
database directory and cannot be opened in place. Restore
(:mod:`repro.backup.restore`) lays the image down at the destination,
clips the WAL at the recovery target, and only then removes its
``RESTORE_IN_PROGRESS`` marker — the restore-side commit point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import BackupError
from ..storage.diskio import DiskIO, crc32c

BACKUP_MANIFEST_NAME = "BACKUP_MANIFEST.json"
BACKUP_FORMAT_VERSION = 1

#: Written first by restore, removed last: while present the destination
#: is not a committed database and must refuse to open.
RESTORE_MARKER_NAME = "RESTORE_IN_PROGRESS"

#: Subdirectory of a backup holding the snapshot image (manifest + blobs).
IMAGE_DIR_NAME = "image"

#: Subdirectory of a backup holding the covered WAL prefix.
WAL_SUBDIR_NAME = "wal"


@dataclass
class BackupFileEntry:
    """One file of a backup, path relative to the backup directory."""

    path: str
    size: int
    crc32c: int


@dataclass
class BackupManifest:
    """The commit record of one backup."""

    backup_lsn: int
    checkpoint_lsn: int
    snapshot_id: int | None = None
    epoch: int | None = None
    files: list[BackupFileEntry] = field(default_factory=list)

    def to_json(self) -> bytes:
        body = {
            "format_version": BACKUP_FORMAT_VERSION,
            "backup_lsn": self.backup_lsn,
            "checkpoint_lsn": self.checkpoint_lsn,
            "snapshot_id": self.snapshot_id,
            "epoch": self.epoch,
            "files": [
                {"path": e.path, "size": e.size, "crc32c": f"{e.crc32c:08x}"}
                for e in self.files
            ],
        }
        body["manifest_crc32c"] = f"{_self_checksum(body):08x}"
        return (json.dumps(body, indent=1, sort_keys=True) + "\n").encode("utf-8")

    @classmethod
    def from_json(cls, payload: bytes, source: str) -> "BackupManifest":
        try:
            body = json.loads(payload.decode("utf-8"))
            if body["format_version"] != BACKUP_FORMAT_VERSION:
                raise BackupError(
                    f"{source}: unsupported backup format_version "
                    f"{body['format_version']}"
                )
            recorded = int(body["manifest_crc32c"], 16)
            del body["manifest_crc32c"]
            if recorded != _self_checksum(body):
                raise BackupError(f"{source}: backup manifest self-checksum mismatch")
            files = [
                BackupFileEntry(
                    path=str(entry["path"]),
                    size=int(entry["size"]),
                    crc32c=int(entry["crc32c"], 16),
                )
                for entry in body["files"]
            ]
            return cls(
                backup_lsn=int(body["backup_lsn"]),
                checkpoint_lsn=int(body["checkpoint_lsn"]),
                snapshot_id=(
                    int(body["snapshot_id"]) if body["snapshot_id"] is not None else None
                ),
                epoch=int(body["epoch"]) if body["epoch"] is not None else None,
                files=files,
            )
        except BackupError:
            raise
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise BackupError(f"{source}: unreadable backup manifest ({exc})") from exc


def _self_checksum(body: dict) -> int:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return crc32c(canonical.encode("utf-8"))


def load_backup_manifest(disk: DiskIO, root: Path) -> BackupManifest:
    """The committed manifest of a backup directory.

    Raises :class:`BackupError` when the manifest is absent (a torn or
    never-completed backup) or unreadable.
    """
    path = Path(root) / BACKUP_MANIFEST_NAME
    if not disk.exists(path):
        raise BackupError(
            f"{root}: no {BACKUP_MANIFEST_NAME} — not a completed backup "
            "(torn or never finished)"
        )
    return BackupManifest.from_json(disk.read_file(path), source=str(path))


def verify_backup(disk: DiskIO, root: Path) -> BackupManifest:
    """Fully verify a backup image: manifest plus every listed file.

    Checks existence, byte size, and CRC-32C of each file against the
    manifest. Raises :class:`BackupError` naming every offending path;
    returns the manifest when the image is intact.
    """
    root = Path(root)
    manifest = load_backup_manifest(disk, root)
    failures: list[str] = []
    for entry in manifest.files:
        path = root / entry.path
        if not disk.exists(path):
            failures.append(f"{entry.path} [missing]")
            continue
        data = disk.read_file(path)
        if len(data) != entry.size:
            failures.append(
                f"{entry.path} [size mismatch: expected {entry.size}, "
                f"got {len(data)}]"
            )
        elif crc32c(data) != entry.crc32c:
            failures.append(f"{entry.path} [checksum mismatch]")
    if failures:
        raise BackupError(
            f"backup {root} failed verification: " + "; ".join(failures)
        )
    return manifest
