"""Hot backup: a consistent, checksummed image taken while writers run.

The protocol splits into a *barrier* and a *copy*:

**Barrier** (:func:`prepare_backup`, run under whatever exclusion keeps
writers out for an instant — :meth:`ConcurrentDatabase.backup` takes the
write lock, the single-caller :class:`Database` needs nothing):

1. flush the WAL — everything committed so far becomes durable;
2. capture ``backup_lsn`` (the log's last LSN) — the backup's upper
   cut line;
3. pin an MVCC reader lease — the backup's *epoch*; vacuum cannot free
   anything the pinned epoch still sees while the copy runs;
4. capture the snapshot manifest **bytes** — a later checkpoint cannot
   swap a newer manifest (with a checkpoint past ``backup_lsn``) under
   the copy's feet;
5. bump ``Database._backups_in_flight`` — checkpoints are deferred, so
   neither snapshot GC nor WAL truncation can delete files the copy is
   about to read.

**Copy** (:meth:`BackupJob.run`, outside any lock): writers keep
committing; everything they append lands *after* ``backup_lsn`` and is
simply not part of this backup. The copy CRC-verifies every source file
against the captured manifest, clips the live WAL to exactly
``(checkpoint_lsn, backup_lsn]`` re-encoded into one merged segment, and
commits by writing ``BACKUP_MANIFEST.json`` last — then reads the whole
image back (:func:`~repro.backup.manifest.verify_backup`) before
declaring success, removing the manifest again if read-back fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path, PurePosixPath

from ..errors import BackupError
from ..observability import registry as metrics
from ..storage.diskio import DiskIO, crc32c
from ..storage.snapshot import MANIFEST_NAME, Manifest
from ..wal.log import WAL_DIR_NAME, _list_segments, _segment_name
from ..wal.record import WalRecord, encode_record, scan_segment
from .manifest import (
    BACKUP_MANIFEST_NAME,
    IMAGE_DIR_NAME,
    WAL_SUBDIR_NAME,
    BackupFileEntry,
    BackupManifest,
    verify_backup,
)


@dataclass
class BackupResult:
    """What a completed backup captured."""

    dest: str
    backup_lsn: int
    checkpoint_lsn: int
    snapshot_id: int | None
    epoch: int
    files: int
    bytes: int
    wal_records: int


class BackupJob:
    """The copy phase of one backup; created by :func:`prepare_backup`."""

    def __init__(
        self,
        db,
        disk: DiskIO,
        source_root: Path,
        dest: Path,
        backup_lsn: int,
        checkpoint_lsn: int,
        snapshot_id: int | None,
        manifest_bytes: bytes | None,
        lease,
    ) -> None:
        self.db = db
        self.disk = disk
        self.source_root = source_root
        self.dest = dest
        self.backup_lsn = backup_lsn
        self.checkpoint_lsn = checkpoint_lsn
        self.snapshot_id = snapshot_id
        self.manifest_bytes = manifest_bytes
        self.lease = lease

    def run(self) -> BackupResult:
        """Copy, commit, verify. Always releases the barrier's lease and
        checkpoint deferral, even on failure."""
        try:
            return self._copy()
        except Exception:
            metrics.increment("backup.failed")
            raise
        finally:
            # An InjectedFault (a simulated power cut) unwinds through
            # here too; releasing in-memory state is moot post-"crash"
            # but keeps the source database usable when the test harness
            # continues running in the same process.
            self.lease.release()
            self.db._backups_in_flight -= 1

    # ------------------------------------------------------------------ #
    def _copy(self) -> BackupResult:
        metrics.increment("backup.started")
        if self.disk.exists(self.dest / BACKUP_MANIFEST_NAME):
            raise BackupError(
                f"{self.dest}: already holds a completed backup — refusing "
                "to overwrite it"
            )
        entries: list[BackupFileEntry] = []
        total_bytes = 0

        def put(relpath: str, data: bytes) -> None:
            nonlocal total_bytes
            self.disk.write_file(self.dest / PurePosixPath(relpath), data)
            entries.append(
                BackupFileEntry(path=relpath, size=len(data), crc32c=crc32c(data))
            )
            total_bytes += len(data)

        # -- the base image: the captured snapshot, verified as we read.
        if self.manifest_bytes is not None:
            src_manifest = Manifest.from_json(
                self.manifest_bytes, source=str(self.source_root / MANIFEST_NAME)
            )
            snap_dir = self.source_root / src_manifest.directory
            for entry in src_manifest.files:
                data = self.disk.read_file(snap_dir / PurePosixPath(entry.path))
                if len(data) != entry.size or crc32c(data) != entry.crc32c:
                    raise BackupError(
                        f"source file {src_manifest.directory}/{entry.path} "
                        "failed checksum verification — refusing to back up "
                        "a corrupt image"
                    )
                put(
                    f"{IMAGE_DIR_NAME}/{src_manifest.directory}/{entry.path}",
                    data,
                )
            put(f"{IMAGE_DIR_NAME}/{MANIFEST_NAME}", self.manifest_bytes)

        # -- the covered WAL prefix, clipped to (checkpoint, backup_lsn].
        records = _collect_live_records(
            self.disk,
            self.source_root / WAL_DIR_NAME,
            low=self.checkpoint_lsn,
            high=self.backup_lsn,
        )
        if records:
            merged = b"".join(
                encode_record(r.rtype, r.lsn, r.table, r.payload, r.txn_id)
                for r in records
            )
            put(f"{WAL_SUBDIR_NAME}/{_segment_name(records[0].lsn)}", merged)

        # -- commit: the backup manifest is written last, then the whole
        # image is read back; only a verified backup keeps its manifest.
        manifest = BackupManifest(
            backup_lsn=self.backup_lsn,
            checkpoint_lsn=self.checkpoint_lsn,
            snapshot_id=self.snapshot_id,
            epoch=self.lease.epoch,
            files=entries,
        )
        self.disk.write_file(self.dest / BACKUP_MANIFEST_NAME, manifest.to_json())
        try:
            verify_backup(self.disk, self.dest)
        except BackupError:
            self.disk.remove(self.dest / BACKUP_MANIFEST_NAME)
            raise
        metrics.increment("backup.completed")
        metrics.increment("backup.files_copied", len(entries))
        metrics.increment("backup.bytes_copied", total_bytes)
        wal = self.db.wal
        if wal is not None and wal.archiver is not None:
            wal.archiver.register_backup(
                str(self.dest),
                backup_lsn=self.backup_lsn,
                checkpoint_lsn=self.checkpoint_lsn,
                epoch=self.lease.epoch,
                snapshot_id=self.snapshot_id,
            )
        return BackupResult(
            dest=str(self.dest),
            backup_lsn=self.backup_lsn,
            checkpoint_lsn=self.checkpoint_lsn,
            snapshot_id=self.snapshot_id,
            epoch=self.lease.epoch,
            files=len(entries),
            bytes=total_bytes,
            wal_records=len(records),
        )


def prepare_backup(db, dest, disk: DiskIO | None = None, barrier_hook=None) -> BackupJob:
    """The barrier phase: capture a consistent cut of a live database.

    Must run while no writer is mid-commit (the concurrency facade holds
    the write lock; plain single-caller use needs nothing). Returns a
    :class:`BackupJob` whose :meth:`~BackupJob.run` does the long copy —
    with writers free to commit again.

    ``barrier_hook(db)``, if given, runs as the last barrier step: tests
    use it to fingerprint the exact state the pinned epoch covers.
    """
    if db.wal is None or db._wal_root is None:
        raise BackupError(
            "hot backup needs a durable database (open it with Database.open)"
        )
    disk = disk or db.wal.disk
    source_root = Path(db._wal_root)
    dest = Path(dest)
    db.wal.flush()
    backup_lsn = db.wal.last_lsn
    lease = db.mvcc.readers.pin(tag="backup")
    try:
        manifest_bytes = None
        snapshot_id = None
        checkpoint_lsn = 0
        if disk.exists(source_root / MANIFEST_NAME):
            manifest_bytes = disk.read_file(source_root / MANIFEST_NAME)
            src_manifest = Manifest.from_json(
                manifest_bytes, source=str(source_root / MANIFEST_NAME)
            )
            snapshot_id = src_manifest.snapshot_id
            checkpoint_lsn = src_manifest.checkpoint_lsn
        db._backups_in_flight += 1
    except BaseException:
        lease.release()
        raise
    try:
        if barrier_hook is not None:
            barrier_hook(db)
    except BaseException:
        lease.release()
        db._backups_in_flight -= 1
        raise
    return BackupJob(
        db=db,
        disk=disk,
        source_root=source_root,
        dest=dest,
        backup_lsn=backup_lsn,
        checkpoint_lsn=checkpoint_lsn,
        snapshot_id=snapshot_id,
        manifest_bytes=manifest_bytes,
        lease=lease,
    )


def backup_database(db, dest, disk: DiskIO | None = None, barrier_hook=None) -> BackupResult:
    """Barrier + copy in one call (the single-caller convenience)."""
    return prepare_backup(db, dest, disk=disk, barrier_hook=barrier_hook).run()


def _collect_live_records(
    disk: DiskIO, wal_dir: Path, low: int, high: int
) -> list[WalRecord]:
    """Records with ``low < lsn <= high`` from the live WAL directory.

    Segments are read while writers may be appending: a frame that is
    mid-append when we read shows up as a torn tail *past* ``high`` (the
    barrier flushed everything up to ``high`` before the copy started),
    so scan damage is tolerated as long as every needed LSN was
    recovered. A missing needed LSN is a hard error — the backup would
    be unrestorable.
    """
    if high <= low:
        return []
    found: dict[int, WalRecord] = {}
    for first_lsn, name in _list_segments(disk, wal_dir):
        if first_lsn > high:
            continue
        scan = scan_segment(disk.read_file(wal_dir / name), first_lsn, source=name)
        for record in scan.records:
            if low < record.lsn <= high:
                found[record.lsn] = record
    missing = [lsn for lsn in range(low + 1, high + 1) if lsn not in found]
    if missing:
        raise BackupError(
            f"WAL records {missing[0]}..{missing[-1]} needed by the backup "
            "are missing from the live log"
        )
    return [found[lsn] for lsn in range(low + 1, high + 1)]
