"""B+tree secondary indexes over row-store tables."""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import StorageError
from ..schema import TableSchema
from ..storage.btree import BPlusTree
from .table import RowId, RowStoreTable


class RowStoreIndex:
    """A (possibly non-unique) B+tree index mapping key columns to row ids.

    Non-unique keys are disambiguated by appending the row id to the key
    tuple, keeping B+tree keys unique while preserving range-scan order.
    """

    def __init__(self, table: RowStoreTable, columns: list[str], order: int = 64) -> None:
        schema: TableSchema = table.schema
        self.table = table
        self.columns = list(columns)
        self._positions = [schema.position(c) for c in columns]
        self._tree = BPlusTree(order=order)
        for rid, row in table.scan():
            self.insert(row, rid)

    def __len__(self) -> int:
        return len(self._tree)

    def _key_of(self, row: tuple[Any, ...]) -> tuple:
        key = tuple(row[p] for p in self._positions)
        if any(v is None for v in key):
            return key  # NULLs index as None (sort handled by wrapper below)
        return key

    def insert(self, row: tuple[Any, ...], rid: RowId) -> None:
        key = self._key_of(row)
        if any(v is None for v in key):
            return  # NULL keys are not indexed (filtered like SQL Server's)
        self._tree.insert((*key, rid.page, rid.slot), rid)

    def delete(self, row: tuple[Any, ...], rid: RowId) -> bool:
        key = self._key_of(row)
        if any(v is None for v in key):
            return False
        return self._tree.delete((*key, rid.page, rid.slot))

    def seek_equal(self, key: tuple) -> Iterator[RowId]:
        """All row ids whose index key equals ``key`` exactly."""
        if len(key) != len(self.columns):
            raise StorageError(
                f"seek key arity {len(key)} does not match index ({len(self.columns)})"
            )
        low = (*key, -1, -1)
        high = (*key, float("inf"), float("inf"))
        for _, rid in self._tree.range(low, high):
            yield rid

    def seek_range(
        self, low: tuple | None, high: tuple | None
    ) -> Iterator[RowId]:
        """Row ids with low <= key <= high on the leading columns."""
        low_key = (*low, -1, -1) if low is not None else None
        high_key = (*high, float("inf"), float("inf")) if high is not None else None
        for _, rid in self._tree.range(low_key, high_key):
            yield rid
