"""PAGE-compression analogue for row-store size accounting.

SQL Server's PAGE compression applies, per page: row compression (variable-
length storage of fixed-width types), column-prefix compression and a
per-page dictionary. Benchmark E1 compares columnstore compression against
this baseline, so we compute the compressed page size the same way the real
feature does — per page, bottom-up — without changing the stored
representation (the ratio is the experiment's metric).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..schema import TableSchema
from ..types import TypeKind
from .page import _ROW_OVERHEAD_BYTES
from .table import RowStoreTable


def _varlen_int_bytes(value: int) -> int:
    """Row compression: integers take only the bytes they need."""
    if value == 0:
        return 1
    magnitude = abs(int(value))
    return max(1, (magnitude.bit_length() + 8) // 8)


def _value_bytes(kind: TypeKind, value: Any) -> int:
    """Row-compressed size of one value."""
    if value is None:
        return 0  # null bitmap covers it
    if kind is TypeKind.VARCHAR:
        return len(str(value).encode("utf-8"))
    if kind is TypeKind.FLOAT:
        return 8
    if kind is TypeKind.BOOL:
        return 1
    return _varlen_int_bytes(int(value))


def _common_prefix_len(values: list[bytes]) -> int:
    if not values:
        return 0
    first = min(values)
    last = max(values)
    limit = min(len(first), len(last))
    i = 0
    while i < limit and first[i] == last[i]:
        i += 1
    return i


def page_compressed_size(schema: TableSchema, rows: Sequence[tuple[Any, ...]]) -> int:
    """Compressed size of one page's rows under PAGE compression."""
    if not rows:
        return 96
    total = 96  # page header
    n = len(rows)
    for position, col in enumerate(schema):
        kind = col.dtype.kind
        values = [row[position] for row in rows]
        # Column-prefix compression (strings only, like the real feature's
        # dominant win) and per-page dictionary for repeated values.
        if kind is TypeKind.VARCHAR:
            encoded = [str(v).encode("utf-8") for v in values if v is not None]
            prefix = _common_prefix_len(encoded)
            distinct: dict[Any, int] = {}
            column_bytes = 0
            for v in values:
                if v is None:
                    continue
                if v in distinct:
                    column_bytes += 2  # dictionary reference
                else:
                    distinct[v] = 1
                    body = len(str(v).encode("utf-8")) - prefix
                    column_bytes += max(0, body) + 2
            column_bytes += prefix  # anchor stored once
            total += column_bytes
        else:
            distinct_vals: dict[Any, int] = {}
            for v in values:
                size = _value_bytes(kind, v)
                if v is not None and v in distinct_vals:
                    total += min(2, size)  # dictionary reference
                else:
                    if v is not None:
                        distinct_vals[v] = 1
                    total += size
    total += n * (_ROW_OVERHEAD_BYTES - 2)  # slimmer slot array under compression
    total += (n * len(schema.columns) + 7) // 8  # null bitmap
    return total


def table_page_compressed_size(table: RowStoreTable) -> int:
    """PAGE-compressed size of a whole table, page by page."""
    total = 0
    for page in table._pages:
        rows = [row for _, row in page.live_rows()]
        total += page_compressed_size(table.schema, rows)
    return total


def table_uncompressed_size(table: RowStoreTable) -> int:
    """Raw (row-compressed-off) heap size for ratio baselines."""
    return table.used_bytes
