"""The row-store heap table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import StorageError
from ..schema import TableSchema
from .page import PAGE_SIZE_BYTES, Page, row_size_bytes


@dataclass(frozen=True)
class RowId:
    """Stable address of a row-store row: (page, slot)."""

    page: int
    slot: int


class RowStoreTable:
    """A heap of slotted pages holding physical row tuples."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._pages: list[Page] = []
        self._live = 0

    # ------------------------------------------------------------------ #
    # DML
    # ------------------------------------------------------------------ #
    def insert(self, row: tuple[Any, ...], txn=None) -> RowId:
        """Insert a physical row; returns its row id.

        With a transaction context, records an undo action that removes
        the slot again (and the page, if this insert allocated it), so a
        rolled-back insert leaves the heap layout — and therefore every
        future row id — exactly as if it never ran.
        """
        n_bytes = row_size_bytes(self.schema, row)
        if n_bytes > PAGE_SIZE_BYTES - 96:
            raise StorageError(f"row of {n_bytes} bytes exceeds the page size")
        created_page = not self._pages or not self._pages[-1].has_room(n_bytes)
        if created_page:
            self._pages.append(Page(len(self._pages)))
        page = self._pages[-1]
        slot = page.insert(row, n_bytes)
        self._live += 1
        rid = RowId(page.page_id, slot)
        if txn is not None:
            txn.record(
                f"un-insert rowstore row {rid}",
                lambda: self._undo_insert(rid, n_bytes, created_page),
            )
        return rid

    def _undo_insert(self, rid: RowId, n_bytes: int, created_page: bool) -> None:
        page = self._pages[rid.page]
        if rid.page != len(self._pages) - 1 or rid.slot != page.slot_count - 1:
            raise StorageError(
                f"insert undo of {rid} out of order (not the tail slot)"
            )
        page.pop_last(n_bytes)
        self._live -= 1
        if created_page:
            if page.slot_count:
                raise StorageError(
                    f"page {page.page_id} was created by this insert but is not empty"
                )
            self._pages.pop()

    def insert_many(self, rows: list[tuple[Any, ...]]) -> list[RowId]:
        return [self.insert(row) for row in rows]

    def get(self, rid: RowId) -> tuple[Any, ...] | None:
        if not 0 <= rid.page < len(self._pages):
            return None
        return self._pages[rid.page].get(rid.slot)

    def delete(self, rid: RowId) -> bool:
        if not 0 <= rid.page < len(self._pages):
            return False
        if self._pages[rid.page].delete(rid.slot):
            self._live -= 1
            return True
        return False

    def undelete(self, rid: RowId) -> bool:
        """Clear a delete tombstone (delete undo); the row data is still
        in the slot, so this restores the exact pre-delete state."""
        if not 0 <= rid.page < len(self._pages):
            return False
        if self._pages[rid.page].undelete(rid.slot):
            self._live += 1
            return True
        return False

    def update(self, rid: RowId, row: tuple[Any, ...]) -> bool:
        if not 0 <= rid.page < len(self._pages):
            return False
        return self._pages[rid.page].update(rid.slot, row)

    # ------------------------------------------------------------------ #
    # Scans and accounting
    # ------------------------------------------------------------------ #
    def scan(self) -> Iterator[tuple[RowId, tuple[Any, ...]]]:
        """All live rows in (page, slot) order."""
        for page in self._pages:
            for slot, row in page.live_rows():
                yield RowId(page.page_id, slot), row

    @property
    def row_count(self) -> int:
        return self._live

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def size_bytes(self) -> int:
        """Uncompressed heap size (full pages, as allocated on disk)."""
        return len(self._pages) * PAGE_SIZE_BYTES

    @property
    def used_bytes(self) -> int:
        return sum(page.used_bytes for page in self._pages)
