"""The row-store heap table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import StorageError
from ..schema import TableSchema
from .page import PAGE_SIZE_BYTES, Page, row_size_bytes


@dataclass(frozen=True)
class RowId:
    """Stable address of a row-store row: (page, slot)."""

    page: int
    slot: int


class RowStoreTable:
    """A heap of slotted pages holding physical row tuples."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._pages: list[Page] = []
        self._live = 0

    # ------------------------------------------------------------------ #
    # DML
    # ------------------------------------------------------------------ #
    def insert(self, row: tuple[Any, ...]) -> RowId:
        """Insert a physical row; returns its row id."""
        n_bytes = row_size_bytes(self.schema, row)
        if n_bytes > PAGE_SIZE_BYTES - 96:
            raise StorageError(f"row of {n_bytes} bytes exceeds the page size")
        if not self._pages or not self._pages[-1].has_room(n_bytes):
            self._pages.append(Page(len(self._pages)))
        page = self._pages[-1]
        slot = page.insert(row, n_bytes)
        self._live += 1
        return RowId(page.page_id, slot)

    def insert_many(self, rows: list[tuple[Any, ...]]) -> list[RowId]:
        return [self.insert(row) for row in rows]

    def get(self, rid: RowId) -> tuple[Any, ...] | None:
        if not 0 <= rid.page < len(self._pages):
            return None
        return self._pages[rid.page].get(rid.slot)

    def delete(self, rid: RowId) -> bool:
        if not 0 <= rid.page < len(self._pages):
            return False
        if self._pages[rid.page].delete(rid.slot):
            self._live -= 1
            return True
        return False

    def update(self, rid: RowId, row: tuple[Any, ...]) -> bool:
        if not 0 <= rid.page < len(self._pages):
            return False
        return self._pages[rid.page].update(rid.slot, row)

    # ------------------------------------------------------------------ #
    # Scans and accounting
    # ------------------------------------------------------------------ #
    def scan(self) -> Iterator[tuple[RowId, tuple[Any, ...]]]:
        """All live rows in (page, slot) order."""
        for page in self._pages:
            for slot, row in page.live_rows():
                yield RowId(page.page_id, slot), row

    @property
    def row_count(self) -> int:
        return self._live

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def size_bytes(self) -> int:
        """Uncompressed heap size (full pages, as allocated on disk)."""
        return len(self._pages) * PAGE_SIZE_BYTES

    @property
    def used_bytes(self) -> int:
        return sum(page.used_bytes for page in self._pages)
