"""Slotted pages for the row-store heap.

Each page holds row tuples up to a byte budget (8 KiB by default, like SQL
Server pages). Slots are stable: deleting a row leaves a tombstone so row
ids (page, slot) held elsewhere stay valid.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import StorageError
from ..schema import TableSchema

PAGE_SIZE_BYTES = 8192
_ROW_OVERHEAD_BYTES = 7  # slot pointer + status bits, as in SQL Server


def row_size_bytes(schema: TableSchema, row: tuple[Any, ...]) -> int:
    """Uncompressed on-page size of one row."""
    total = _ROW_OVERHEAD_BYTES
    for col, value in zip(schema, row):
        if value is None:
            total += 2
        elif isinstance(value, str):
            total += len(value.encode("utf-8")) + 2
        else:
            total += col.dtype.fixed_width_bytes
    return total


class Page:
    """One slotted heap page."""

    __slots__ = ("page_id", "rows", "deleted", "used_bytes")

    def __init__(self, page_id: int) -> None:
        self.page_id = page_id
        self.rows: list[tuple[Any, ...]] = []
        self.deleted: set[int] = set()
        self.used_bytes = 96  # page header

    @property
    def slot_count(self) -> int:
        return len(self.rows)

    @property
    def live_count(self) -> int:
        return len(self.rows) - len(self.deleted)

    def has_room(self, n_bytes: int) -> bool:
        return self.used_bytes + n_bytes <= PAGE_SIZE_BYTES

    def insert(self, row: tuple[Any, ...], n_bytes: int) -> int:
        """Append a row; returns the slot number."""
        if not self.has_room(n_bytes):
            raise StorageError(f"page {self.page_id} is full")
        self.rows.append(row)
        self.used_bytes += n_bytes
        return len(self.rows) - 1

    def get(self, slot: int) -> tuple[Any, ...] | None:
        if not 0 <= slot < len(self.rows) or slot in self.deleted:
            return None
        return self.rows[slot]

    def delete(self, slot: int) -> bool:
        if not 0 <= slot < len(self.rows) or slot in self.deleted:
            return False
        self.deleted.add(slot)
        return True

    def pop_last(self, n_bytes: int) -> tuple[Any, ...]:
        """Remove the most recently appended slot (insert undo).

        Only the tail slot may be removed — interior slots must stay
        stable (row ids held elsewhere address them) — so undo runs in
        strict reverse insertion order.
        """
        if not self.rows:
            raise StorageError(f"page {self.page_id} has no slots to pop")
        tail = len(self.rows) - 1
        if tail in self.deleted:
            raise StorageError(
                f"page {self.page_id} slot {tail} is deleted, not a fresh insert"
            )
        row = self.rows.pop()
        self.used_bytes -= n_bytes
        return row

    def undelete(self, slot: int) -> bool:
        """Clear a tombstone, making the slot's row live again."""
        if slot not in self.deleted:
            return False
        self.deleted.discard(slot)
        return True

    def update(self, slot: int, row: tuple[Any, ...]) -> bool:
        if not 0 <= slot < len(self.rows) or slot in self.deleted:
            return False
        self.rows[slot] = row
        return True

    def live_rows(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        for slot, row in enumerate(self.rows):
            if slot not in self.deleted:
                yield slot, row
