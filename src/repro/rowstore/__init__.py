"""Row-store substrate: the baseline storage the paper compares against.

A slotted-page heap table with optional B+tree indexes and a PAGE-
compression analogue for size accounting. The row-mode execution engine
(:mod:`repro.exec.row_engine`) scans these tables tuple at a time.
"""

from .table import RowId, RowStoreTable

__all__ = ["RowId", "RowStoreTable"]
