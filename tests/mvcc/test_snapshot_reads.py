"""Epoch-pinned snapshot reads against concurrent DML and maintenance.

These tests drive the Database single-threaded but interleave *logical*
time: pin an epoch, mutate, then prove the pinned plan still reads
exactly the state the epoch saw — across deltas, row groups, deletes,
updates, the tuple mover, REBUILD, and vacuum.
"""

import pytest

from repro import Database, StoreConfig, schema, types
from repro.concurrency import ConcurrentDatabase, pin_plan
from repro.observability import registry as metrics
from repro.sql.runner import plan_query


@pytest.fixture
def config():
    return StoreConfig(rowgroup_size=64, bulk_load_threshold=40, delta_close_rows=32)


@pytest.fixture
def db(config):
    return Database(config)


@pytest.fixture
def sch():
    return schema(("id", types.INT, False), ("v", types.INT))


def select_at(db, sql, epoch, **options):
    """Run a SELECT pinned to ``epoch`` (the session read path, inlined)."""
    plan = plan_query(db, sql)
    physical, dtypes = db._prepare(plan, **options)
    assert pin_plan(physical, epoch)
    return db._run_physical(physical, dtypes)


def count_sum_at(db, epoch):
    result = select_at(db, "SELECT COUNT(*) AS n, SUM(v) AS s FROM t", epoch)
    return result.rows[0]


class TestEpochVisibility:
    def test_insert_invisible_at_older_epoch(self, db, sch):
        db.create_table("t", sch)
        db.insert("t", [(i, i) for i in range(100)])  # bulk path: row groups
        e1 = db.mvcc.current
        db.insert("t", [(i, i) for i in range(100, 150)])  # delta path
        assert count_sum_at(db, e1) == (100, sum(range(100)))
        assert count_sum_at(db, db.mvcc.current) == (150, sum(range(150)))

    def test_delete_still_visible_at_older_epoch(self, db, sch):
        db.create_table("t", sch)
        db.insert("t", [(i, i) for i in range(100)])
        e1 = db.mvcc.current
        db.sql("DELETE FROM t WHERE id < 40")
        assert count_sum_at(db, e1) == (100, sum(range(100)))
        assert count_sum_at(db, db.mvcc.current) == (60, sum(range(40, 100)))

    def test_update_old_epoch_sees_old_values(self, db, sch):
        db.create_table("t", sch)
        db.insert("t", [(i, i) for i in range(20)])
        e1 = db.mvcc.current
        db.sql("UPDATE t SET v = v + 1000 WHERE id < 10")
        assert count_sum_at(db, e1) == (20, sum(range(20)))
        assert count_sum_at(db, db.mvcc.current) == (20, sum(range(20)) + 10_000)

    def test_open_transaction_invisible_until_commit(self, db, sch):
        db.create_table("t", sch)
        db.insert("t", [(i, i) for i in range(10)])
        db.begin()
        db.insert("t", [(i, i) for i in range(10, 30)])
        db.sql("DELETE FROM t WHERE id < 5")
        # Pending work is stamped PENDING_EPOCH: invisible at the
        # current committed epoch even while the transaction is open.
        assert count_sum_at(db, db.mvcc.current) == (10, sum(range(10)))
        db.commit()
        assert count_sum_at(db, db.mvcc.current) == (25, sum(range(5, 30)))

    def test_rolled_back_transaction_never_becomes_visible(self, db, sch):
        db.create_table("t", sch)
        db.insert("t", [(i, i) for i in range(10)])
        e1 = db.mvcc.current
        db.begin()
        db.insert("t", [(99, 99)])
        db.sql("DELETE FROM t WHERE id = 0")
        db.rollback()
        assert db.mvcc.current == e1  # no epoch consumed
        assert count_sum_at(db, e1) == (10, sum(range(10)))

    def test_row_mode_plans_pin_too(self, db, sch):
        db.create_table("t", sch)
        db.insert("t", [(i, i) for i in range(100)])
        e1 = db.mvcc.current
        db.sql("DELETE FROM t WHERE id >= 50")
        result = select_at(
            db, "SELECT COUNT(*) AS n, SUM(v) AS s FROM t", e1, mode="row"
        )
        assert result.rows[0] == (100, sum(range(100)))


class TestMaintenanceUnderReaders:
    def test_rebuild_preserves_pinned_snapshot(self, db, sch):
        db.create_table("t", sch)
        db.insert("t", [(i, i) for i in range(100)])
        db.sql("DELETE FROM t WHERE id < 30")
        lease = db.mvcc.readers.pin()
        db.rebuild("t")
        try:
            # The rebuild retired every pre-existing group/delta but the
            # lease's epoch still resolves them through the retired set.
            assert count_sum_at(db, lease.epoch) == (70, sum(range(30, 100)))
            assert count_sum_at(db, db.mvcc.current) == (70, sum(range(30, 100)))
            index = db.table("t").columnstore
            groups, deltas = index.retired_counts
            assert groups + deltas > 0
        finally:
            lease.release()

    def test_tuple_mover_preserves_pinned_snapshot(self, db, sch):
        db.create_table("t", sch)
        for start in range(0, 96, 8):  # small inserts: delta stores
            db.insert("t", [(i, i) for i in range(start, start + 8)])
        db.sql("DELETE FROM t WHERE id % 4 = 0")
        expected = (72, sum(i for i in range(96) if i % 4))
        lease = db.mvcc.readers.pin()
        report = db.run_tuple_mover("t", include_open=True)
        try:
            assert report.rows_moved > 0
            assert count_sum_at(db, lease.epoch) == expected
            assert count_sum_at(db, db.mvcc.current) == expected
        finally:
            lease.release()

    def test_vacuum_waits_for_readers_then_drains(self, db, sch):
        db.create_table("t", sch)
        db.insert("t", [(i, i) for i in range(100)])
        lease = db.mvcc.readers.pin()
        db.rebuild("t")
        index = db.table("t").columnstore
        assert sum(index.retired_counts) > 0
        # The lease holds the horizon back: vacuum must not free the
        # versions the lease can still reach.
        freed = db.vacuum("t")
        assert freed["groups"] == 0 and freed["deltas"] == 0
        assert count_sum_at(db, lease.epoch) == (100, sum(range(100)))
        lease.release()
        before = metrics.get_registry().counter("mvcc.versions_gced")
        freed = db.vacuum("t")
        assert freed["groups"] + freed["deltas"] > 0
        assert sum(index.retired_counts) == 0
        assert metrics.get_registry().counter("mvcc.versions_gced") > before

    def test_vacuum_gc_makes_old_epoch_unreadable_but_current_exact(self, db, sch):
        db.create_table("t", sch)
        db.insert("t", [(i, i) for i in range(100)])
        db.rebuild("t")
        db.vacuum("t")
        assert count_sum_at(db, db.mvcc.current) == (100, sum(range(100)))


class TestSessionSnapshots:
    def test_hold_snapshot_is_repeatable_read(self, config, sch):
        cdb = ConcurrentDatabase(Database(config))
        with cdb:
            cdb.db.create_table("t", sch)
            cdb.db.insert("t", [(i, i) for i in range(50)])
            reader = cdb.session("reader")
            writer = cdb.session("writer")
            epoch = reader.hold_snapshot()
            baseline = reader.sql("SELECT COUNT(*) AS n, SUM(v) AS s FROM t").rows
            writer.sql("DELETE FROM t WHERE id < 25")
            writer.sql("INSERT INTO t VALUES (1000, 1000)")
            # Writer committed twice; the held epoch's view is unchanged.
            assert reader.sql("SELECT COUNT(*) AS n, SUM(v) AS s FROM t").rows == baseline
            assert reader.snapshot_epoch == epoch
            reader.release_snapshot()
            fresh = reader.sql("SELECT COUNT(*) AS n, SUM(v) AS s FROM t").rows
            assert fresh == [(26, sum(range(25, 50)) + 1000)]

    def test_select_is_lock_free_and_registers_no_leak(self, config, sch):
        cdb = ConcurrentDatabase(Database(config))
        with cdb:
            cdb.db.create_table("t", sch)
            cdb.db.insert("t", [(i, i) for i in range(50)])
            registry = metrics.get_registry()
            waits = registry.counter("concurrency.read_waits")
            lockfree = registry.counter("mvcc.lockfree_reads")
            with cdb.session("r") as session:
                assert session.sql("SELECT COUNT(*) AS n FROM t").scalar() == 50
            assert registry.counter("mvcc.lockfree_reads") == lockfree + 1
            assert registry.counter("concurrency.read_waits") == waits
            assert len(cdb.db.mvcc.readers) == 0

    def test_show_queries_exposes_snapshot_epoch_column(self, config, sch):
        cdb = ConcurrentDatabase(Database(config))
        with cdb:
            result = cdb.sql("SHOW QUERIES")
            assert result.columns[-1] == "epoch"
