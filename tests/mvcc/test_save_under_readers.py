"""Satellite: ``Database.save()`` while reader epochs are registered.

A checkpoint must be a pure read of the *current* committed state — it
must never collect version chains that registered readers still need,
and the image it writes must match the live state (not any held
snapshot).
"""

import pytest

from repro import Database, StoreConfig, schema, types
from repro.concurrency import ConcurrentDatabase

from .test_snapshot_reads import count_sum_at


@pytest.fixture
def config():
    return StoreConfig(rowgroup_size=64, bulk_load_threshold=40, delta_close_rows=32)


@pytest.fixture
def sch():
    return schema(("id", types.INT, False), ("v", types.INT))


class TestSaveUnderReaders:
    def test_save_mid_read_does_not_gc_visible_chains(self, config, sch, tmp_path):
        db = Database(config)
        db.create_table("t", sch)
        db.insert("t", [(i, i) for i in range(100)])
        lease = db.mvcc.readers.pin(tag="mid-read")
        try:
            db.sql("DELETE FROM t WHERE id < 40")
            db.rebuild("t")  # retires every pre-delete group/delta
            index = db.table("t").columnstore
            retired_before = index.retired_counts
            assert sum(retired_before) > 0
            db.save(str(tmp_path / "snap"))
            # The checkpoint read the live state; the version chains the
            # lease still needs are untouched and still resolve exactly.
            assert index.retired_counts == retired_before
            assert count_sum_at(db, lease.epoch) == (100, sum(range(100)))
            assert count_sum_at(db, db.mvcc.current) == (60, sum(range(40, 100)))
            assert len(db.mvcc.readers) == 1
        finally:
            lease.release()
        assert len(db.mvcc.readers) == 0

    def test_saved_image_is_current_state_not_held_snapshot(
        self, config, sch, tmp_path
    ):
        db = Database(config)
        db.create_table("t", sch)
        db.insert("t", [(i, i) for i in range(100)])
        lease = db.mvcc.readers.pin()
        try:
            db.sql("DELETE FROM t WHERE id >= 50")
            db.save(str(tmp_path / "snap"))
        finally:
            lease.release()
        loaded = Database.load(str(tmp_path / "snap"))
        result = loaded.sql("SELECT COUNT(*) AS n, SUM(v) AS s FROM t")
        assert result.rows[0] == (50, sum(range(50)))

    def test_concurrent_save_keeps_session_snapshot_repeatable(
        self, config, sch, tmp_path
    ):
        with ConcurrentDatabase(Database(config)) as cdb:
            cdb.db.create_table("t", sch)
            cdb.db.insert("t", [(i, i) for i in range(80)])
            reader = cdb.session("reader")
            writer = cdb.session("writer")
            reader.hold_snapshot()
            baseline = reader.sql("SELECT COUNT(*) AS n, SUM(v) AS s FROM t").rows
            writer.sql("DELETE FROM t WHERE id % 2 = 0")
            cdb.save(str(tmp_path / "snap"))
            assert (
                reader.sql("SELECT COUNT(*) AS n, SUM(v) AS s FROM t").rows == baseline
            )
            reader.release_snapshot()
        loaded = Database.load(str(tmp_path / "snap"))
        assert loaded.sql("SELECT COUNT(*) AS n FROM t").scalar() == 40
        Database.check(str(tmp_path / "snap"))
