"""EpochManager / ReaderRegistry semantics: the MVCC version clock."""

import threading

import pytest

from repro.mvcc import GENESIS_EPOCH, PENDING_EPOCH, EpochManager


class TestCommit:
    def test_commit_allocates_sequential_epochs(self):
        mgr = EpochManager()
        assert mgr.current == GENESIS_EPOCH
        assert mgr.commit([]) == 1
        assert mgr.commit([]) == 2
        assert mgr.current == 2

    def test_finalizers_run_with_the_allocated_epoch_before_publish(self):
        mgr = EpochManager()
        seen = []

        def finalize(epoch):
            # Publish-last: during the stamp, `current` must still be
            # the old value — a reader capturing now pins the old epoch
            # and must not see the half-stamped commit.
            seen.append((epoch, mgr.current))

        epoch = mgr.commit([finalize])
        assert seen == [(epoch, epoch - 1)]
        assert mgr.current == epoch

    def test_finalizer_failure_does_not_publish(self):
        mgr = EpochManager()
        with pytest.raises(RuntimeError):
            mgr.commit([lambda e: (_ for _ in ()).throw(RuntimeError("boom"))])
        assert mgr.current == GENESIS_EPOCH

    def test_installing_publishes_on_clean_exit(self):
        mgr = EpochManager()
        with mgr.installing() as epoch:
            assert epoch == 1
            assert mgr.current == GENESIS_EPOCH  # not yet published
        assert mgr.current == 1

    def test_advance_to_is_monotonic(self):
        mgr = EpochManager()
        mgr.advance_to(7)
        assert mgr.current == 7
        mgr.advance_to(3)  # never goes backwards
        assert mgr.current == 7

    def test_pending_sentinel_is_beyond_any_real_epoch(self):
        mgr = EpochManager()
        for _ in range(100):
            mgr.commit([])
        assert PENDING_EPOCH > mgr.current


class TestReaders:
    def test_pin_captures_current_and_registers(self):
        mgr = EpochManager()
        mgr.commit([])
        lease = mgr.readers.pin(tag="t")
        assert lease.epoch == 1
        assert len(mgr.readers) == 1
        lease.release()
        assert len(mgr.readers) == 0

    def test_release_is_idempotent(self):
        mgr = EpochManager()
        lease = mgr.readers.pin()
        lease.release()
        lease.release()
        assert len(mgr.readers) == 0

    def test_lease_is_a_context_manager(self):
        mgr = EpochManager()
        with mgr.readers.pin() as lease:
            assert not lease.released
        assert lease.released

    def test_horizon_tracks_oldest_reader(self):
        mgr = EpochManager()
        assert mgr.horizon() == GENESIS_EPOCH
        old = mgr.readers.pin()
        mgr.commit([])
        mgr.commit([])
        assert mgr.horizon() == old.epoch == GENESIS_EPOCH
        new = mgr.readers.pin()
        assert new.epoch == 2
        old.release()
        assert mgr.horizon() == 2
        new.release()
        assert mgr.horizon() == mgr.current == 2

    def test_oldest_active_gauge_published(self):
        from repro.observability import registry as metrics

        mgr = EpochManager()
        mgr.commit([])
        lease = mgr.readers.pin()
        assert metrics.get_registry().gauge("mvcc.oldest_active_epoch") == 1
        mgr.commit([])
        lease.release()
        assert metrics.get_registry().gauge("mvcc.oldest_active_epoch") == 2

    def test_concurrent_pins_never_tear(self):
        """Readers pinning while commits install always observe a valid
        published epoch (never a half-installed one)."""
        mgr = EpochManager()
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                with mgr.readers.pin() as lease:
                    if not (GENESIS_EPOCH <= lease.epoch <= mgr.current):
                        bad.append(lease.epoch)

        threads = [threading.Thread(target=reader, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(300):
            mgr.commit([])
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        assert not bad
        assert len(mgr.readers) == 0
