"""Reader leases leaked past close() are released loudly, not silently.

A lease pins the MVCC vacuum horizon; one forgotten by a caller would
silently disable garbage collection for the life of the process. close()
therefore force-releases stragglers, warns (ResourceWarning), and counts
them (``mvcc.leases_leaked``) so the leak is visible, not papered over.
"""

from __future__ import annotations

import warnings

import pytest

from repro.concurrency.database import ConcurrentDatabase
from repro.db.database import Database
from repro.observability.registry import get_registry


class TestLeaseLeakOnClose:
    def test_leaked_lease_warns_and_counts(self):
        db = Database()
        db.sql("CREATE TABLE t (id INT NOT NULL)")
        db.sql("INSERT INTO t VALUES (1)")
        lease = db.mvcc.readers.pin(tag="forgotten")
        before = get_registry().counter("mvcc.leases_leaked")
        with pytest.warns(ResourceWarning, match="never released"):
            db.close()
        assert get_registry().counter("mvcc.leases_leaked") == before + 1
        assert len(db.mvcc.readers) == 0
        # Releasing the stale handle afterwards is harmless.
        lease.release()
        assert len(db.mvcc.readers) == 0

    def test_multiple_leaks_counted_individually(self):
        db = Database()
        for i in range(3):
            db.mvcc.readers.pin(tag=f"leak-{i}")
        before = get_registry().counter("mvcc.leases_leaked")
        with pytest.warns(ResourceWarning, match="3 reader lease"):
            db.close()
        assert get_registry().counter("mvcc.leases_leaked") == before + 3

    def test_clean_close_does_not_warn(self):
        db = Database()
        db.sql("CREATE TABLE t (id INT NOT NULL)")
        lease = db.mvcc.readers.pin(tag="tidy")
        lease.release()
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            db.close()

    def test_double_close_warns_once(self):
        db = Database()
        db.mvcc.readers.pin(tag="leak")
        with pytest.warns(ResourceWarning):
            db.close()
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            db.close()  # nothing left to leak

    def test_session_held_snapshots_are_not_leaks(self):
        # The concurrency facade closes its sessions first; a session
        # holding a snapshot releases its lease on close, so nothing
        # reaches the engine's leak detector.
        cdb = ConcurrentDatabase()
        cdb.sql("CREATE TABLE t (id INT NOT NULL)")
        cdb.sql("INSERT INTO t VALUES (1)")
        session = cdb.session("holder")
        session.hold_snapshot()
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            cdb.close()
        assert len(cdb.db.mvcc.readers) == 0
