"""Differential testing: the batch and row engines must agree everywhere.

Hypothesis generates random tables (values, NULLs) and random queries
(filters, grouped aggregates, joins, subqueries, windows); each query
runs through both engines over identical data. Any disagreement is a bug
in one engine — this is the strongest correctness net in the suite
because the engines share almost no execution code. A third arm replays
a dialect-safe subset against sqlite3, so both engines are also checked
against an independent implementation.
"""

from __future__ import annotations

import math
import sqlite3

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, StoreConfig, schema, types

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# Row strategies -------------------------------------------------------- #
small_int = st.integers(min_value=-20, max_value=20)
opt_int = st.one_of(st.none(), small_int)
opt_str = st.one_of(st.none(), st.sampled_from(["red", "green", "blue", "x", ""]))
opt_float = st.one_of(
    st.none(), st.floats(min_value=-100, max_value=100, allow_nan=False, width=32)
)

rows_strategy = st.lists(st.tuples(small_int, opt_int, opt_str, opt_float), max_size=80)


def make_db(rows) -> Database:
    db = Database(StoreConfig(rowgroup_size=16, bulk_load_threshold=8, delta_close_rows=16))
    db.create_table(
        "t",
        schema(
            ("k", types.INT, False),
            ("a", types.INT),
            ("s", types.VARCHAR),
            ("f", types.FLOAT),
        ),
    )
    if rows:
        db.bulk_load("t", rows)
    return db


def normalize(rows):
    out = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(round(value, 6) if math.isfinite(value) else repr(value))
            else:
                cells.append(value)
        out.append(tuple(cells))
    return sorted(out, key=repr)


def both_modes(db, sql):
    batch = db.sql(sql, mode="batch")
    row = db.sql(sql, mode="row")
    assert batch.columns == row.columns, sql
    assert normalize(batch.rows) == normalize(row.rows), sql


# Query fragments -------------------------------------------------------- #
WHERE_CLAUSES = [
    "",
    "WHERE a > 0",
    "WHERE a IS NULL",
    "WHERE a IS NOT NULL AND f < 10",
    "WHERE s = 'red' OR s = 'blue'",
    "WHERE s LIKE '%e%'",
    "WHERE k BETWEEN -5 AND 5",
    "WHERE a IN (1, 2, 3) OR f IS NULL",
    "WHERE NOT (a > 5)",
    "WHERE a + k > 0",
    "WHERE f / 2 > 1",
]

AGG_QUERIES = [
    "SELECT COUNT(*) AS n FROM t {where}",
    "SELECT COUNT(a) AS n, SUM(a) AS s FROM t {where}",
    "SELECT MIN(f) AS lo, MAX(f) AS hi FROM t {where}",
    "SELECT s, COUNT(*) AS n FROM t {where} GROUP BY s",
    "SELECT a, COUNT(*) AS n, AVG(f) AS m FROM t {where} GROUP BY a",
    "SELECT s, a, SUM(k) AS sk FROM t {where} GROUP BY s, a",
    "SELECT MIN(s) AS lo, MAX(s) AS hi FROM t {where}",
]

PLAIN_QUERIES = [
    "SELECT k, a, s, f FROM t {where}",
    "SELECT k * 2 + 1 AS v FROM t {where}",
    "SELECT CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'other' END AS b FROM t {where}",
    "SELECT DISTINCT s FROM t {where}",
    "SELECT k FROM t {where} ORDER BY k LIMIT 5",
]


@SETTINGS
@given(rows=rows_strategy, where=st.sampled_from(WHERE_CLAUSES),
       template=st.sampled_from(PLAIN_QUERIES))
def test_plain_queries_agree(rows, where, template):
    db = make_db(rows)
    both_modes(db, template.format(where=where))


@SETTINGS
@given(rows=rows_strategy, where=st.sampled_from(WHERE_CLAUSES),
       template=st.sampled_from(AGG_QUERIES))
def test_aggregate_queries_agree(rows, where, template):
    db = make_db(rows)
    both_modes(db, template.format(where=where))


dim_rows = st.lists(
    st.tuples(st.integers(min_value=-5, max_value=10), st.sampled_from(["u", "v", "w"])),
    max_size=20,
    unique_by=lambda r: r[0],
)


@SETTINGS
@given(rows=rows_strategy, dims=dim_rows,
       join_type=st.sampled_from(["JOIN", "LEFT JOIN", "RIGHT JOIN", "FULL JOIN"]))
def test_joins_agree(rows, dims, join_type):
    db = make_db(rows)
    db.create_table("d", schema(("id", types.INT, False), ("tag", types.VARCHAR)))
    if dims:
        db.bulk_load("d", dims)
    both_modes(
        db,
        f"SELECT t.k, t.a, d.tag FROM t {join_type} d ON t.a = d.id",
    )
    both_modes(
        db,
        f"SELECT d.tag, COUNT(*) AS n, SUM(t.k) AS sk "
        f"FROM t {join_type} d ON t.a = d.id GROUP BY d.tag",
    )


@SETTINGS
@given(rows=rows_strategy)
def test_trickle_and_deletes_agree(rows):
    """Mixed storage states (delta rows + delete marks) across both engines."""
    db = make_db(rows[: len(rows) // 2])
    if rows[len(rows) // 2 :]:
        db.insert("t", rows[len(rows) // 2 :])  # trickle -> delta stores
    db.sql("DELETE FROM t WHERE k > 10")
    both_modes(db, "SELECT COUNT(*) AS n, SUM(k) AS sk FROM t")
    both_modes(db, "SELECT s, COUNT(*) AS n FROM t GROUP BY s")


@pytest.mark.parametrize("grant", [None, 2048])
def test_spilling_agrees_with_row_engine(grant):
    """The spill path must agree with the row engine, not just itself."""
    rows = [(i, i % 7, ["red", "green", "blue"][i % 3], float(i % 11)) for i in range(500)]
    db = make_db(rows)
    sql = "SELECT a, s, COUNT(*) AS n, SUM(f) AS sf FROM t GROUP BY a, s"
    batch = db.sql(sql, mode="batch", grant_bytes=grant)
    row = db.sql(sql, mode="row")
    assert normalize(batch.rows) == normalize(row.rows)


# Subqueries and windows ------------------------------------------------- #
e_rows = st.lists(
    st.tuples(
        st.integers(min_value=-5, max_value=15),
        st.sampled_from(["u", "v", "w"]),
        opt_int,
    ),
    max_size=30,
    unique_by=lambda r: r[0],
)


def make_db_with_e(rows, e) -> Database:
    db = make_db(rows)
    db.create_table(
        "e",
        schema(("id", types.INT, False), ("tag", types.VARCHAR), ("v", types.INT)),
    )
    if e:
        db.bulk_load("e", e)
    return db


SUBQUERY_QUERIES = [
    "SELECT k, a FROM t WHERE a IN (SELECT id FROM e)",
    "SELECT k FROM t WHERE a NOT IN (SELECT v FROM e)",
    "SELECT k FROM t WHERE a NOT IN (SELECT v FROM e WHERE v IS NOT NULL)",
    "SELECT k FROM t WHERE k IN (SELECT id FROM e WHERE tag = 'u')",
    "SELECT k FROM t WHERE EXISTS (SELECT 1 FROM e WHERE e.id = t.a)",
    "SELECT k FROM t WHERE NOT EXISTS (SELECT 1 FROM e WHERE e.id = t.a)",
    "SELECT k FROM t WHERE EXISTS (SELECT 1 FROM e WHERE e.id = t.k AND e.tag = 'v')",
    "SELECT k FROM t WHERE k > (SELECT MIN(id) FROM e)",
    "SELECT k FROM t WHERE a = (SELECT MAX(v) FROM e)",
]

WINDOW_QUERIES = [
    "SELECT k, ROW_NUMBER() OVER (ORDER BY k) AS rn FROM t",
    "SELECT k, RANK() OVER (ORDER BY a) AS r FROM t",
    "SELECT k, DENSE_RANK() OVER (PARTITION BY s ORDER BY k) AS dr FROM t",
    "SELECT k, SUM(k) OVER (PARTITION BY s) AS sk FROM t",
    "SELECT k, COUNT(*) OVER (PARTITION BY a) AS n FROM t",
    "SELECT k, SUM(a) OVER (ORDER BY k) AS run FROM t",
    "SELECT k, MIN(f) OVER (PARTITION BY s) AS lo, MAX(f) OVER (PARTITION BY s) AS hi FROM t",
    "SELECT k, AVG(a) OVER (PARTITION BY s) AS m FROM t",
]


@SETTINGS
@given(rows=rows_strategy, e=e_rows, template=st.sampled_from(SUBQUERY_QUERIES))
def test_subqueries_agree(rows, e, template):
    db = make_db_with_e(rows, e)
    both_modes(db, template)


@SETTINGS
@given(rows=rows_strategy, template=st.sampled_from(WINDOW_QUERIES))
def test_windows_agree(rows, template):
    db = make_db(rows)
    both_modes(db, template)


# The sqlite3 oracle arm -------------------------------------------------- #
# Dialect- and semantics-safe subset: integer aggregates only (float32
# accumulation differs from sqlite's doubles), window ORDER BY keys NOT
# NULL (we sort NULLs last, sqlite first), and multiset-safe projections.
ORACLE_QUERIES = [
    "SELECT k, a, s FROM t WHERE a > 0",
    "SELECT k, f FROM t WHERE a IS NULL",
    "SELECT k FROM t WHERE s LIKE '%e%'",
    "SELECT k FROM t WHERE a IN (1, 2, 3) OR f IS NULL",
    "SELECT k FROM t WHERE NOT (a > 5)",
    "SELECT COUNT(*) AS n FROM t",
    "SELECT COUNT(a) AS n, SUM(a) AS s FROM t",
    "SELECT s, COUNT(*) AS n FROM t GROUP BY s",
    "SELECT a, SUM(k) AS sk FROM t GROUP BY a",
    "SELECT s, AVG(a) AS m FROM t GROUP BY s",
    "SELECT k, a FROM t WHERE a IN (SELECT id FROM e)",
    "SELECT k FROM t WHERE a NOT IN (SELECT v FROM e)",
    "SELECT k FROM t WHERE a NOT IN (SELECT v FROM e WHERE v IS NOT NULL)",
    "SELECT k FROM t WHERE EXISTS (SELECT 1 FROM e WHERE e.id = t.a)",
    "SELECT k FROM t WHERE NOT EXISTS (SELECT 1 FROM e WHERE e.id = t.a)",
    "SELECT k FROM t WHERE k > (SELECT MIN(id) FROM e)",
    "SELECT k, ROW_NUMBER() OVER (ORDER BY k) AS rn FROM t",
    "SELECT k, RANK() OVER (ORDER BY k) AS r FROM t",
    "SELECT k, SUM(a) OVER (PARTITION BY s) AS sk FROM t",
    "SELECT k, SUM(a) OVER (ORDER BY k) AS run FROM t",
    "SELECT k, COUNT(*) OVER (PARTITION BY a) AS n FROM t",
]


def _oracle_connection(rows, e) -> sqlite3.Connection:
    conn = sqlite3.connect(":memory:")
    conn.execute("CREATE TABLE t (k INTEGER, a INTEGER, s TEXT, f REAL)")
    conn.execute("CREATE TABLE e (id INTEGER, tag TEXT, v INTEGER)")
    conn.executemany("INSERT INTO t VALUES (?, ?, ?, ?)", rows)
    conn.executemany("INSERT INTO e VALUES (?, ?, ?)", e)
    return conn


def oracle_normalize(rows):
    out = []
    for row in rows:
        out.append(
            tuple(
                round(v, 4) if isinstance(v, float) and math.isfinite(v) else v
                for v in row
            )
        )
    return sorted(out, key=repr)


@SETTINGS
@given(rows=rows_strategy, e=e_rows, template=st.sampled_from(ORACLE_QUERIES))
def test_sqlite_oracle_agrees(rows, e, template):
    db = make_db_with_e(rows, e)
    conn = _oracle_connection(rows, e)
    try:
        theirs = conn.execute(template).fetchall()
    finally:
        conn.close()
    mine = db.sql(template).rows
    assert oracle_normalize(mine) == oracle_normalize(theirs), template


@SETTINGS
@given(rows=rows_strategy, where=st.sampled_from(WHERE_CLAUSES),
       template=st.sampled_from(PLAIN_QUERIES + AGG_QUERIES),
       mode=st.sampled_from(["batch", "row"]))
def test_stats_collection_does_not_change_results(rows, where, template, mode):
    """Stats-enabled execution must be byte-identical to stats-off.

    The instrumented-iterator wrapper sits on every operator's data path;
    this proves it is an observer, not a participant. No normalize() here:
    identical engine, identical order, identical bytes expected.
    """
    db = make_db(rows)
    sql = template.format(where=where)
    plain = db.sql(sql, mode=mode)
    with_stats = db.sql(sql, mode=mode, stats=True)
    assert plain.columns == with_stats.columns, sql
    assert plain.rows == with_stats.rows, sql
    assert plain.stats is None
    assert with_stats.stats is not None
