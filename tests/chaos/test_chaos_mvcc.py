"""Chaos harness, MVCC level: snapshot readers vs disjoint-table writers.

Four writers hammer their own columnstore tables (the per-table latch
path) while reader threads repeatedly pin a snapshot and fingerprint
every table *twice* at the held epoch — any torn read, dirty read, or
snapshot drift shows up as a fingerprint mismatch. A chaos thread
injects random cancels and KILLs into whatever is running. Invariants:

* every statement terminates in a classified state (the PR 7 contract
  extends to latch waits and lock-free reads);
* both fingerprints of a held epoch are identical — repeatable read
  under concurrent committed writes;
* zero leaked reader registrations once the harness winds down;
* vacuum drains every retired version once no reader is registered, and
  the GC horizon gauge lands on the live epoch;
* the surviving state is bit-identical to a chaos-free serial replay of
  exactly the statements that committed;
* the saved survivor passes the offline integrity check.

``REPRO_CHAOS_SEED`` selects the fault schedule (CI sweeps 0/1/2).
"""

from __future__ import annotations

import os
import random
import threading
import time

from repro import Database
from repro.concurrency import ConcurrentDatabase
from repro.governance import get_memory_governor, get_query_registry
from repro.observability import registry as metrics

from .test_chaos_engine import classify, fingerprint

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
WRITERS = 4
READERS = 3
STATEMENTS_PER_WRITER = 25


class _Writer(threading.Thread):
    """Owns table ``m{i}``: INSERT / UPDATE / DELETE under the latch path."""

    def __init__(self, cdb: ConcurrentDatabase, index: int, seed: int) -> None:
        super().__init__(name=f"mvcc-writer-{index}")
        self.cdb = cdb
        self.table = f"m{index}"
        self.rng = random.Random(seed)
        self.committed: list[str] = []
        self.outcomes: dict[str, int] = {}
        self.failures: list[BaseException] = []
        self.session = None

    def run(self) -> None:
        try:
            with self.cdb.session(self.name) as session:
                self.session = session
                for n in range(STATEMENTS_PER_WRITER):
                    statement = self._pick_statement(n)
                    exc = None
                    try:
                        session.sql(statement)
                    except BaseException as caught:
                        exc = caught
                    outcome = classify(exc)
                    if outcome is None:
                        self.failures.append(exc)
                        outcome = "unclassified"
                    self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
                    if outcome == "ok" and not statement.startswith("SELECT"):
                        self.committed.append(statement)
                    time.sleep(self.rng.uniform(0, 0.002))
                self.session = None
        except BaseException as exc:  # session-level failure: harness bug
            self.failures.append(exc)

    def _pick_statement(self, n: int) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.5:
            values = ", ".join(
                f"({n * 100 + k}, {rng.randrange(50)})"
                for k in range(rng.randrange(1, 16))
            )
            return f"INSERT INTO {self.table} VALUES {values}"
        if roll < 0.72:
            return (
                f"UPDATE {self.table} SET b = b + 1 "
                f"WHERE a % {rng.randrange(2, 5)} = 0"
            )
        if roll < 0.88:
            return f"DELETE FROM {self.table} WHERE a % {rng.randrange(5, 9)} = 1"
        return f"SELECT count(*) FROM {self.table}"


class _Reader(threading.Thread):
    """Pins a snapshot, fingerprints every table twice at the held epoch."""

    FINGERPRINT = "SELECT COUNT(*) AS n, SUM(a) AS sa, SUM(b) AS sb FROM {table}"

    def __init__(
        self, cdb: ConcurrentDatabase, index: int, seed: int, stop: threading.Event
    ) -> None:
        super().__init__(name=f"mvcc-reader-{index}")
        self.cdb = cdb
        self.rng = random.Random(seed)
        self.stop = stop
        self.rounds_compared = 0
        self.mismatches: list[str] = []
        self.failures: list[BaseException] = []
        self.session = None

    def run(self) -> None:
        try:
            with self.cdb.session(self.name) as session:
                self.session = session
                while not self.stop.is_set():
                    self._one_round(session)
                    time.sleep(self.rng.uniform(0, 0.003))
                self.session = None
        except BaseException as exc:
            self.failures.append(exc)

    def _one_round(self, session) -> None:
        table = f"m{self.rng.randrange(WRITERS)}"
        sql = self.FINGERPRINT.format(table=table)
        epoch = session.hold_snapshot()
        try:
            first = self._read(session, sql)
            # Give writers a window to commit between the two reads.
            time.sleep(self.rng.uniform(0, 0.002))
            second = self._read(session, sql)
            if first is None or second is None:
                return  # a cancelled/killed read aborts the comparison
            if first != second:
                self.mismatches.append(
                    f"epoch {epoch} {table}: {first} != {second}"
                )
            self.rounds_compared += 1
        finally:
            session.release_snapshot()

    def _read(self, session, sql):
        try:
            return session.sql(sql).rows
        except BaseException as exc:
            if classify(exc) is None:
                self.failures.append(exc)
            return None


class _Chaos(threading.Thread):
    """Random cancels and KILLs against whatever happens to be running."""

    def __init__(self, db: Database, participants, seed: int) -> None:
        super().__init__(name="mvcc-chaos-injector")
        self.db = db
        self.participants = participants
        self.rng = random.Random(seed)
        self.stop = threading.Event()

    def run(self) -> None:
        while not self.stop.is_set():
            roll = self.rng.random()
            if roll < 0.35:
                victim = self.rng.choice(self.participants)
                session = victim.session
                if session is not None:
                    try:
                        session.cancel_running()
                    except Exception:
                        pass
            elif roll < 0.6:
                running = get_query_registry().list_running()
                if running:
                    self.db.sql(f"KILL {self.rng.choice(running).query_id}")
            time.sleep(self.rng.uniform(0.001, 0.008))


def test_chaos_mvcc_invariants():
    baseline_threads = set(threading.enumerate())
    rng = random.Random(SEED)

    db = Database()
    tables = []
    for i in range(WRITERS):
        db.sql(f"CREATE TABLE m{i} (a INT, b INT)")
        db.sql(
            f"INSERT INTO m{i} VALUES "
            + ", ".join(f"({k}, {k % 11})" for k in range(200))
        )
        tables.append(f"m{i}")
    seed_statements = [
        f"INSERT INTO m{i} VALUES "
        + ", ".join(f"({k}, {k % 11})" for k in range(200))
        for i in range(WRITERS)
    ]

    cdb = ConcurrentDatabase(db)
    stop_readers = threading.Event()
    writers = [_Writer(cdb, i, seed=rng.randrange(2**31)) for i in range(WRITERS)]
    readers = [
        _Reader(cdb, i, seed=rng.randrange(2**31), stop=stop_readers)
        for i in range(READERS)
    ]
    chaos = _Chaos(db, writers + readers, seed=rng.randrange(2**31))
    for thread in readers + writers:
        thread.start()
    chaos.start()
    for writer in writers:
        writer.join(timeout=120.0)
    stop_readers.set()
    for reader in readers:
        reader.join(timeout=30.0)
    chaos.stop.set()
    chaos.join(timeout=10.0)

    # 1. Nothing hung, nothing unclassified, snapshots never drifted.
    for thread in writers + readers:
        assert not thread.is_alive(), f"{thread.name} hung"
        assert not thread.failures, (
            f"{thread.name} hit unclassified outcomes: "
            + "; ".join(repr(f) for f in thread.failures)
        )
    for reader in readers:
        assert not reader.mismatches, (
            "snapshot reads drifted under concurrent writers:\n"
            + "\n".join(reader.mismatches)
        )
    assert sum(r.rounds_compared for r in readers) > 0, "readers were starved"
    ok_statements = sum(w.outcomes.get("ok", 0) for w in writers)
    assert ok_statements > 0, "chaos starved every writer"

    # 2. Zero leaked reader registrations, no leaked governance state.
    assert len(db.mvcc.readers) == 0
    assert len(get_query_registry()) == 0
    assert get_memory_governor().reserved_bytes == 0

    # 3. GC drains to the live epoch once no reader holds it back.
    cdb.vacuum()
    for table in tables:
        index = db.table(table).columnstore
        assert index.retired_counts == (0, 0), f"{table} kept dead versions"
    assert (
        metrics.get_registry().gauge("mvcc.oldest_active_epoch") == db.mvcc.current
    )
    repeat = cdb.vacuum()
    assert repeat == {"groups": 0, "deltas": 0, "tombstones": 0}

    # 4. Bit-identical to a chaos-free serial replay of committed work.
    survived = fingerprint(db, tables)
    replay = Database()
    for i, seed_statement in enumerate(seed_statements):
        replay.sql(f"CREATE TABLE m{i} (a INT, b INT)")
        replay.sql(seed_statement)
    for writer in writers:
        for statement in writer.committed:
            replay.sql(statement)
    assert survived == fingerprint(replay, tables), (
        "chaos survivor diverged from clean replay"
    )

    # 5. Offline integrity check of the saved survivor state.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "chaos-mvcc-db")
        db.save(path)
        report = Database.check(path)
        assert report.ok, "\n".join(report.render())

    cdb.close()

    # 6. No leaked threads once sessions wind down.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leaked = set(threading.enumerate()) - baseline_threads
        if not leaked:
            break
        time.sleep(0.05)
    assert not leaked, f"leaked threads: {[t.name for t in leaked]}"
