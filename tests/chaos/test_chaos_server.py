"""Chaos harness, server level: sheds, kills and dropped connections.

Clients hammer a small-capacity server (tight ``max_statements``) over
real sockets while randomly dropping their connections mid-statement
and KILLing each other's queries. The server must classify every
response, survive every disconnect, shut down cleanly, and leak
neither threads nor sessions.
"""

from __future__ import annotations

import os
import random
import threading
import time

from repro.concurrency import ConcurrentDatabase
from repro.governance import get_memory_governor, get_query_registry
from repro.server import ReproServer, ServerClient

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
CLIENTS = 4
REQUESTS_PER_CLIENT = 15

SLOW_READ = (
    "SELECT s1.a FROM shared s1 JOIN shared s2 ON s1.b = s2.b ORDER BY s1.a"
)
TERMINAL_KINDS = {
    "ok",
    "QueryTimeoutError",
    "QueryCancelledError",
    "QueryKilledError",
    "ResourceExhaustedError",
    "AdmissionError",
    "LockTimeoutError",
    "dropped",  # we severed our own connection mid-statement
}


class _Client(threading.Thread):
    def __init__(self, port: int, index: int, seed: int) -> None:
        super().__init__(name=f"chaos-client-{index}")
        self.port = port
        self.index = index
        self.rng = random.Random(seed)
        self.outcomes: dict[str, int] = {}
        self.failures: list[str] = []

    def run(self) -> None:
        client = None
        try:
            for n in range(REQUESTS_PER_CLIENT):
                if client is None:
                    client = ServerClient("127.0.0.1", self.port, retries=0)
                kind = self._one_request(client, n)
                if kind == "dropped":
                    client.close()
                    client = None
                self.outcomes[kind] = self.outcomes.get(kind, 0) + 1
                if kind not in TERMINAL_KINDS:
                    self.failures.append(kind)
                time.sleep(self.rng.uniform(0, 0.005))
        except ConnectionError:
            # The server shed our *connection* (max_connections); that is
            # a legitimate terminal state for the remaining requests.
            self.outcomes["AdmissionError"] = (
                self.outcomes.get("AdmissionError", 0) + 1
            )
        except Exception as exc:  # harness bug
            self.failures.append(repr(exc))
        finally:
            if client is not None:
                client.close()

    def _one_request(self, client: ServerClient, n: int) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.1:
            sql = f"SET statement_timeout = {rng.choice([1, 5])}"
        elif roll < 0.15:
            sql = "SET statement_timeout = DEFAULT"
        elif roll < 0.25:
            sql = f"INSERT INTO c{self.index} VALUES ({n}, {rng.randrange(5)})"
        elif roll < 0.65:
            sql = SLOW_READ
        else:
            sql = f"SELECT count(*) FROM c{self.index}"
        # Sometimes drop the connection instead of reading the response:
        # the server must roll the statement back and reap the session.
        if rng.random() < 0.1:
            try:
                client._sock.sendall((f'{{"sql": "{sql}"}}\n').encode())
            except OSError:
                pass
            return "dropped"
        try:
            response = client.request(sql)
        except (ConnectionError, OSError):
            return "dropped"
        if response.get("ok"):
            return "ok"
        return response.get("kind", "unknown")


class _Killer(threading.Thread):
    """KILLs random running queries through its own connection."""

    def __init__(self, port: int, seed: int) -> None:
        super().__init__(name="chaos-killer")
        self.port = port
        self.rng = random.Random(seed)
        self.stop = threading.Event()

    def run(self) -> None:
        try:
            client = ServerClient("127.0.0.1", self.port, retries=0)
        except Exception:
            return
        try:
            while not self.stop.is_set():
                try:
                    rows = client.request("SHOW QUERIES").get("rows") or []
                    if rows and self.rng.random() < 0.5:
                        client.request(f"KILL {self.rng.choice(rows)[0]}")
                except (ConnectionError, OSError):
                    return
                time.sleep(self.rng.uniform(0.002, 0.02))
        finally:
            client.close()


def test_chaos_server_invariants():
    baseline_threads = set(threading.enumerate())
    rng = random.Random(SEED)

    cdb = ConcurrentDatabase()
    with cdb.session("setup") as session:
        session.sql("CREATE TABLE shared (a INT, b INT)")
        session.sql(
            "INSERT INTO shared VALUES "
            + ", ".join(f"({i}, {i % 7})" for i in range(1000))
        )
        for i in range(CLIENTS):
            session.sql(f"CREATE TABLE c{i} (a INT, b INT)")

    server = ReproServer(cdb, max_statements=2, idle_timeout=30.0)
    port = server.start()

    clients = [_Client(port, i, seed=rng.randrange(2**31)) for i in range(CLIENTS)]
    killer = _Killer(port, seed=rng.randrange(2**31))
    for client in clients:
        client.start()
    killer.start()
    for client in clients:
        client.join(timeout=120.0)
    killer.stop.set()
    killer.join(timeout=30.0)

    for client in clients:
        assert not client.is_alive(), f"{client.name} hung"
        assert not client.failures, f"{client.name}: {client.failures}"
    total: dict[str, int] = {}
    for client in clients:
        for kind, count in client.outcomes.items():
            total[kind] = total.get(kind, 0) + count
    assert set(total) <= TERMINAL_KINDS, total
    assert total.get("ok", 0) > 0

    # The server still answers after all that.
    probe = ServerClient("127.0.0.1", port)
    assert probe.sql("SELECT count(*) FROM shared")["rows"] == [[1000]]
    probe.close()

    server.shutdown()
    assert server.connection_count == 0
    cdb.close()

    assert len(get_query_registry()) == 0
    assert get_memory_governor().reserved_bytes == 0

    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leaked = set(threading.enumerate()) - baseline_threads
        if not leaked:
            break
        time.sleep(0.05)
    assert not leaked, f"leaked threads: {[t.name for t in leaked]}"
