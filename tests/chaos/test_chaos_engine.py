"""Chaos harness, engine level: random governance faults under load.

Several writer sessions hammer disjoint tables (plus a shared read-only
table) while a chaos thread injects timeouts, cancels, KILLs and
undersized memory budgets. The harness asserts the governance
invariants the PR promises:

* every statement terminates in exactly one classified state —
  ok / timed-out / cancelled / shed / resource-exhausted;
* no leaked threads (``threading.enumerate()`` returns to baseline);
* no leaked governance state (registry empty, governor at zero);
* the surviving database state is *bit-identical* to a chaos-free
  replay of exactly the statements that committed — a statement that
  timed out or was killed mid-write must have rolled back completely;
* the state passes an offline integrity check after save.

``REPRO_CHAOS_SEED`` selects the fault schedule (CI sweeps several).
"""

from __future__ import annotations

import os
import random
import threading
import time

from repro import Database
from repro.concurrency import ConcurrentDatabase
from repro.errors import (
    AdmissionError,
    LockTimeoutError,
    QueryCancelledError,
    QueryTimeoutError,
    ResourceExhaustedError,
)
from repro.governance import get_memory_governor, get_query_registry

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
WRITERS = 4
STATEMENTS_PER_WRITER = 30

SLOW_READ = (
    "SELECT s1.a FROM shared s1 JOIN shared s2 ON s1.b = s2.b ORDER BY s1.a"
)


def classify(exc: BaseException | None) -> str | None:
    """Map a statement outcome onto the five governed terminal states."""
    if exc is None:
        return "ok"
    if isinstance(exc, QueryTimeoutError):
        return "timed_out"
    if isinstance(exc, QueryCancelledError):  # includes QueryKilledError
        return "cancelled"
    if isinstance(exc, ResourceExhaustedError):
        return "resource_exhausted"
    if isinstance(exc, (AdmissionError, LockTimeoutError)):
        return "shed"
    return None  # unclassified — the harness fails on these


def fingerprint(db: Database, tables: list[str]) -> dict[str, list[tuple]]:
    """Sorted full contents per table — the bit-identity witness."""
    return {
        table: sorted(db.sql(f"SELECT * FROM {table}").rows) for table in tables
    }


class _Writer(threading.Thread):
    """One chaos participant: owns table ``w{i}``, mixes DML and reads."""

    def __init__(self, cdb: ConcurrentDatabase, index: int, seed: int) -> None:
        super().__init__(name=f"chaos-writer-{index}")
        self.cdb = cdb
        self.index = index
        self.table = f"w{index}"
        self.rng = random.Random(seed)
        self.committed: list[str] = []  # statements that returned ok
        self.outcomes: dict[str, int] = {}
        self.failures: list[BaseException] = []
        self.session = None

    def run(self) -> None:
        try:
            with self.cdb.session(f"chaos-{self.index}") as session:
                self.session = session
                for n in range(STATEMENTS_PER_WRITER):
                    self._one_statement(session, n)
                self.session = None
        except BaseException as exc:  # session-level failure: harness bug
            self.failures.append(exc)

    def _one_statement(self, session, n: int) -> None:
        rng = self.rng
        # Fault injection: occasionally run under a tiny timeout or an
        # undersized memory budget/limit for just this statement.
        fault = rng.random()
        if fault < 0.15:
            session.sql(f"SET statement_timeout = {rng.choice([1, 2, 5])}")
        elif fault < 0.25:
            session.sql(f"SET query_memory_limit = {rng.choice([512, 2048])}")
        elif fault < 0.35:
            session.sql("SET query_memory_budget = 4096")
        statement = self._pick_statement(n)
        exc = None
        try:
            session.sql(statement)
        except BaseException as caught:
            exc = caught
        outcome = classify(exc)
        if outcome is None:
            self.failures.append(exc)
            outcome = "unclassified"
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        if outcome == "ok" and not statement.lstrip().upper().startswith("SELECT"):
            self.committed.append(statement)
        # Clear the fault for the next statement.
        session.sql("SET statement_timeout = DEFAULT")
        session.sql("SET query_memory_limit = DEFAULT")
        session.sql("SET query_memory_budget = DEFAULT")
        time.sleep(rng.uniform(0, 0.002))

    def _pick_statement(self, n: int) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.45:
            values = ", ".join(
                f"({n * 100 + k}, {rng.randrange(10)})" for k in range(rng.randrange(1, 20))
            )
            return f"INSERT INTO {self.table} VALUES {values}"
        if roll < 0.55:
            return (
                f"UPDATE {self.table} SET b = b + 1 "
                f"WHERE a % {rng.randrange(2, 5)} = 0"
            )
        if roll < 0.75:
            return SLOW_READ
        return f"SELECT count(*) FROM {self.table}"


class _Chaos(threading.Thread):
    """Random cancels and KILLs against whatever happens to be running."""

    def __init__(self, db: Database, writers: list[_Writer], seed: int) -> None:
        super().__init__(name="chaos-injector")
        self.db = db
        self.writers = writers
        self.rng = random.Random(seed)
        self.stop = threading.Event()

    def run(self) -> None:
        while not self.stop.is_set():
            roll = self.rng.random()
            if roll < 0.4:
                writer = self.rng.choice(self.writers)
                session = writer.session
                if session is not None:
                    try:
                        session.cancel_running()
                    except Exception:
                        pass
            elif roll < 0.7:
                running = get_query_registry().list_running()
                if running:
                    self.db.sql(f"KILL {self.rng.choice(running).query_id}")
            time.sleep(self.rng.uniform(0.001, 0.01))


def test_chaos_engine_invariants():
    baseline_threads = set(threading.enumerate())
    rng = random.Random(SEED)

    db = Database()
    db.sql("CREATE TABLE shared (a INT, b INT)")
    db.sql(
        "INSERT INTO shared VALUES "
        + ", ".join(f"({i}, {i % 7})" for i in range(1200))
    )
    tables = []
    for i in range(WRITERS):
        db.sql(f"CREATE TABLE w{i} (a INT, b INT)")
        tables.append(f"w{i}")

    cdb = ConcurrentDatabase(db)
    writers = [_Writer(cdb, i, seed=rng.randrange(2**31)) for i in range(WRITERS)]
    chaos = _Chaos(db, writers, seed=rng.randrange(2**31))
    for writer in writers:
        writer.start()
    chaos.start()
    for writer in writers:
        writer.join(timeout=120.0)
    chaos.stop.set()
    chaos.join(timeout=10.0)

    # 1. No harness-level failures, no unclassified outcome, all alive.
    for writer in writers:
        assert not writer.is_alive(), f"{writer.name} hung"
        assert not writer.failures, (
            f"{writer.name} hit unclassified outcomes: "
            + "; ".join(repr(f) for f in writer.failures)
        )
    assert not chaos.is_alive()
    total = {}
    for writer in writers:
        for outcome, count in writer.outcomes.items():
            total[outcome] = total.get(outcome, 0) + count
    assert sum(total.values()) == WRITERS * STATEMENTS_PER_WRITER
    assert set(total) <= {"ok", "timed_out", "cancelled", "shed", "resource_exhausted"}
    assert total.get("ok", 0) > 0  # chaos must not have starved everything

    # 2. No leaked governance state.
    assert len(get_query_registry()) == 0
    assert get_memory_governor().reserved_bytes == 0

    # 3. Bit-identical to a chaos-free replay of the committed statements.
    survived = fingerprint(db, tables)
    replay = Database()
    for i in range(WRITERS):
        replay.sql(f"CREATE TABLE w{i} (a INT, b INT)")
    for writer in writers:
        for statement in writer.committed:
            replay.sql(statement)
    replayed = fingerprint(replay, tables)
    assert survived == replayed, "chaos survivor diverged from clean replay"

    # 4. Offline integrity check of the saved survivor state.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "chaos-db")
        db.save(path)
        report = Database.check(path)
        assert report.ok, "\n".join(report.render())

    cdb.close()

    # 5. No leaked threads once sessions and pools wind down.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leaked = set(threading.enumerate()) - baseline_threads
        if not leaked:
            break
        time.sleep(0.05)
    assert not leaked, f"leaked threads: {[t.name for t in leaked]}"
