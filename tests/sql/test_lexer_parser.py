"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast as A
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_statement


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT Select select")
        assert all(t.kind == "keyword" and t.text == "select" for t in tokens[:-1])

    def test_identifiers(self):
        tokens = tokenize("foo _bar baz_9")
        assert [t.text for t in tokens[:-1]] == ["foo", "_bar", "baz_9"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5E-2")
        assert [t.text for t in tokens[:-1]] == ["1", "2.5", "1e3", "2.5E-2"]

    def test_strings_with_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "string"
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_operators(self):
        tokens = tokenize("<= >= != <> = < >")
        assert [t.text for t in tokens[:-1]] == ["<=", ">=", "!=", "!=", "=", "<", ">"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- comment here\n 1")
        assert [t.text for t in tokens[:-1]] == ["select", "1"]

    def test_quoted_identifiers(self):
        tokens = tokenize('"Group"')
        assert tokens[0].kind == "ident"
        assert tokens[0].text == "Group"

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")


class TestParseSelect:
    def test_simple(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, A.SelectStatement)
        assert len(stmt.items) == 2
        assert stmt.from_table.table == "t"

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert stmt.star

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_table.alias == "u"

    def test_where_precedence(self):
        stmt = parse_statement("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, A.EBinary)
        assert stmt.where.op == "or"
        assert stmt.where.right.op == "and"

    def test_arithmetic_precedence(self):
        stmt = parse_statement("SELECT a + b * c FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_join(self):
        stmt = parse_statement(
            "SELECT * FROM f JOIN d ON f.k = d.id LEFT JOIN e ON e.x = f.y"
        )
        assert len(stmt.joins) == 2
        assert stmt.joins[0].join_type == "inner"
        assert stmt.joins[1].join_type == "left"
        a, b = stmt.joins[0].conditions[0]
        assert (a.qualifier, a.name) == ("f", "k")

    def test_group_having_order_limit(self):
        stmt = parse_statement(
            "SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING COUNT(*) > 1 "
            "ORDER BY n DESC, g LIMIT 10"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0][1] is True
        assert stmt.order_by[1][1] is False
        assert stmt.limit == 10

    def test_between_in_like_isnull(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2) "
            "AND c LIKE 'x%' AND d IS NOT NULL AND e NOT IN ('q')"
        )
        text = str(stmt.where)
        assert "and" in text

    def test_case(self):
        stmt = parse_statement(
            "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t"
        )
        expr = stmt.items[0].expr
        assert isinstance(expr, A.ECase)
        assert expr.default is not None

    def test_count_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT SUM(*) FROM t")

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_negative_numbers(self):
        stmt = parse_statement("SELECT a FROM t WHERE a > -5")
        assert stmt.where.right.value == -5

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT a FROM t extra garbage ; nonsense")

    def test_limit_must_be_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT a FROM t LIMIT 2.5")


class TestParseOtherStatements:
    def test_insert(self):
        stmt = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)"
        )
        assert isinstance(stmt, A.InsertStatement)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse_statement("INSERT INTO t VALUES (1)")
        assert stmt.columns is None

    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT NOT NULL, b VARCHAR(10), c DECIMAL(10,2), d DATE) "
            "USING rowstore"
        )
        assert isinstance(stmt, A.CreateTableStatement)
        assert stmt.columns[0] == ("a", "int", [], False)
        assert stmt.columns[1] == ("b", "varchar", [10], True)
        assert stmt.columns[2] == ("c", "decimal", [10, 2], True)
        assert stmt.storage == "rowstore"

    def test_drop(self):
        stmt = parse_statement("DROP TABLE t")
        assert isinstance(stmt, A.DropTableStatement)

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, A.DeleteStatement)
        assert stmt.where is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 'x'")
        assert isinstance(stmt, A.UpdateStatement)
        assert len(stmt.assignments) == 2

    def test_unknown_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("VACUUM t")
