"""Parser diagnostics: line/column positions and not-supported messages."""

import pytest

from repro import Database
from repro.errors import SqlSyntaxError
from repro.sql.parser import parse_statement


@pytest.fixture
def db():
    database = Database()
    database.sql("CREATE TABLE t (a INT, b INT)")
    return database


def error_for(sql: str) -> SqlSyntaxError:
    with pytest.raises(SqlSyntaxError) as info:
        parse_statement(sql)
    return info.value


class TestPositions:
    def test_error_carries_line_and_column(self):
        # "FRM" parses as an alias for a, so the parser trips on 't'.
        err = error_for("SELECT a FRM t")
        assert err.line == 1
        assert err.column == 14
        assert "line 1, column 14" in str(err)

    def test_offending_token_named(self):
        err = error_for("SELECT a FRM t")
        assert "'t'" in str(err)

    def test_multiline_position(self):
        err = error_for("SELECT a\nFROM t\nWHERE a == 1")
        assert err.line == 3
        assert "line 3" in str(err)

    def test_lexer_error_position(self):
        err = error_for("SELECT a FROM t WHERE a = $1")
        assert err.line == 1
        assert err.column == 27

    def test_missing_closing_paren(self):
        err = error_for("SELECT a FROM t WHERE a IN (1, 2")
        assert err.line == 1
        assert "expected" in str(err).lower()

    def test_incomplete_statement(self):
        err = error_for("SELECT a FROM")
        assert "line 1" in str(err)


class TestNotSupportedMessages:
    def test_recursive_cte(self):
        err = error_for("WITH RECURSIVE r AS (SELECT 1 AS x) SELECT x FROM r")
        assert "not supported: RECURSIVE" in str(err)

    def test_union(self):
        err = error_for("SELECT a FROM t UNION SELECT b FROM t")
        assert "not supported: UNION" in str(err)

    def test_intersect(self):
        err = error_for("SELECT a FROM t INTERSECT SELECT b FROM t")
        assert "set operations" in str(err)

    def test_window_frames(self):
        err = error_for(
            "SELECT SUM(a) OVER (ORDER BY a ROWS UNBOUNDED PRECEDING) AS s FROM t"
        )
        assert "not supported: window frames" in str(err)
        assert "default frame" in str(err)

    def test_unknown_window_function(self):
        err = error_for("SELECT LAG(a) OVER (ORDER BY a) AS x FROM t")
        assert "not supported: window function LAG" in str(err)

    def test_with_inside_subquery(self):
        err = error_for(
            "SELECT a FROM t WHERE a = "
            "(WITH m AS (SELECT 1 AS x) SELECT x FROM m)"
        )
        assert "declare CTEs at the top level" in str(err)

    def test_nested_with_in_cte(self):
        err = error_for(
            "WITH o AS (WITH i AS (SELECT 1 AS x) SELECT x FROM i) "
            "SELECT x FROM o"
        )
        assert "WITH nested inside a CTE body" in str(err)

    def test_distinct_in_window(self):
        err = error_for("SELECT COUNT(DISTINCT a) OVER () AS c FROM t")
        assert "DISTINCT inside a window function" in str(err)


class TestParserAcceptsNewSurface:
    def test_exists_parses(self):
        parse_statement("SELECT a FROM t WHERE EXISTS (SELECT b FROM t)")

    def test_not_exists_parses(self):
        parse_statement("SELECT a FROM t WHERE NOT EXISTS (SELECT b FROM t)")

    def test_in_subquery_parses(self):
        parse_statement("SELECT a FROM t WHERE a IN (SELECT b FROM t)")

    def test_scalar_subquery_parses(self):
        parse_statement("SELECT a FROM t WHERE a = (SELECT MAX(b) FROM t)")

    def test_with_parses(self):
        stmt = parse_statement("WITH c AS (SELECT a FROM t) SELECT a FROM c")
        assert len(stmt.ctes) == 1

    def test_explain_with_parses(self):
        parse_statement("EXPLAIN WITH c AS (SELECT a FROM t) SELECT a FROM c")

    def test_window_parses(self):
        parse_statement(
            "SELECT a, SUM(b) OVER (PARTITION BY a ORDER BY b DESC) AS s FROM t"
        )

    def test_errors_surface_through_database(self, db):
        with pytest.raises(SqlSyntaxError, match="line 1, column"):
            db.sql("SELECT a FRM t")
