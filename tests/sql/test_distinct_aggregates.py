"""Tests for DISTINCT aggregates (two-level aggregation rewrite)."""

import pytest

from repro import Database
from repro.errors import BindingError


@pytest.fixture
def db():
    database = Database()
    database.sql("CREATE TABLE t (g VARCHAR, v INT, w INT)")
    database.sql(
        "INSERT INTO t VALUES "
        "('a', 1, 10), ('a', 1, 20), ('a', 2, 30), "
        "('b', 5, 40), ('b', 5, 50), ('b', NULL, 60)"
    )
    return database


class TestCountDistinct:
    def test_global(self, db):
        assert db.sql("SELECT COUNT(DISTINCT v) AS n FROM t").scalar() == 3

    def test_grouped(self, db):
        result = db.sql(
            "SELECT g, COUNT(DISTINCT v) AS n FROM t GROUP BY g ORDER BY g"
        )
        assert result.rows == [("a", 2), ("b", 1)]

    def test_nulls_not_counted(self, db):
        # The b group has v values {5, NULL}: DISTINCT count is 1.
        result = db.sql("SELECT COUNT(DISTINCT v) AS n FROM t WHERE g = 'b'")
        assert result.scalar() == 1

    def test_with_where(self, db):
        assert db.sql(
            "SELECT COUNT(DISTINCT v) AS n FROM t WHERE w > 25"
        ).scalar() == 2  # {2, 5}


class TestOtherDistinctAggregates:
    def test_sum_distinct(self, db):
        assert db.sql("SELECT SUM(DISTINCT v) AS s FROM t").scalar() == 8  # 1+2+5

    def test_avg_distinct(self, db):
        assert db.sql("SELECT AVG(DISTINCT v) AS m FROM t").scalar() == pytest.approx(8 / 3)

    def test_min_max_distinct_are_plain(self, db):
        result = db.sql("SELECT MIN(DISTINCT v) AS lo, MAX(DISTINCT v) AS hi FROM t")
        assert result.rows == [(1, 5)]

    def test_count_and_sum_distinct_same_arg(self, db):
        result = db.sql(
            "SELECT g, COUNT(DISTINCT v) AS n, SUM(DISTINCT v) AS s "
            "FROM t GROUP BY g ORDER BY g"
        )
        assert result.rows == [("a", 2, 3), ("b", 1, 5)]


class TestRestrictions:
    def test_mixing_with_plain_aggregate_rejected(self, db):
        with pytest.raises(BindingError):
            db.sql("SELECT COUNT(DISTINCT v) AS n, SUM(w) AS s FROM t")

    def test_mixing_with_count_star_rejected(self, db):
        with pytest.raises(BindingError):
            db.sql("SELECT COUNT(DISTINCT v) AS n, COUNT(*) AS c FROM t")

    def test_two_different_distinct_args_rejected(self, db):
        with pytest.raises(BindingError):
            db.sql("SELECT COUNT(DISTINCT v) AS n, COUNT(DISTINCT w) AS m FROM t")


class TestModeEquivalence:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT COUNT(DISTINCT v) AS n FROM t",
            "SELECT g, COUNT(DISTINCT v) AS n FROM t GROUP BY g ORDER BY g",
            "SELECT g, SUM(DISTINCT v) AS s FROM t GROUP BY g ORDER BY g",
        ],
    )
    def test_batch_equals_row(self, db, sql):
        assert db.sql(sql, mode="batch").rows == db.sql(sql, mode="row").rows
