"""Subqueries: scalar, IN/NOT IN, EXISTS/NOT EXISTS, decorrelation, 3VL."""

import pytest

from repro import Database
from repro.errors import BindingError


@pytest.fixture
def db():
    database = Database()
    database.sql("CREATE TABLE t (a INT NOT NULL, b INT, tag VARCHAR(10))")
    database.sql(
        "INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'y'), (3, 30, 'x'), "
        "(4, NULL, 'y'), (5, 50, NULL)"
    )
    database.sql("CREATE TABLE u (k INT NOT NULL, v INT)")
    database.sql("INSERT INTO u VALUES (1, 100), (2, 200), (3, NULL)")
    database.sql("CREATE TABLE empty_t (e INT)")
    return database


def rows(result):
    return sorted(result.rows)


class TestScalarSubqueries:
    def test_in_comparison(self, db):
        result = db.sql("SELECT a FROM t WHERE a > (SELECT MIN(k) FROM u)")
        assert rows(result) == [(2,), (3,), (4,), (5,)]

    def test_in_select_list(self, db):
        result = db.sql("SELECT a, (SELECT MAX(k) FROM u) AS m FROM t WHERE a = 1")
        assert result.rows == [(1, 3)]

    def test_in_arithmetic(self, db):
        result = db.sql("SELECT a + (SELECT MIN(k) FROM u) AS s FROM t WHERE a = 1")
        assert result.rows == [(2,)]

    def test_nested_scalar(self, db):
        result = db.sql(
            "SELECT a FROM t WHERE a = (SELECT MIN(k) FROM u WHERE k > "
            "(SELECT MIN(a) FROM t))"
        )
        assert result.rows == [(2,)]

    def test_aggregate_over_empty_is_null(self, db):
        # MAX over zero rows is NULL; NULL comparison rejects every row.
        result = db.sql("SELECT a FROM t WHERE a > (SELECT MAX(e) FROM empty_t)")
        assert result.rows == []

    def test_more_than_one_row_rejected(self, db):
        with pytest.raises(BindingError, match="more than one row"):
            db.sql("SELECT a FROM t WHERE a = (SELECT k FROM u)")

    def test_more_than_one_column_rejected(self, db):
        with pytest.raises(BindingError, match="exactly one column"):
            db.sql("SELECT a FROM t WHERE a = (SELECT k, v FROM u)")


class TestInSubqueries:
    def test_uncorrelated_in(self, db):
        result = db.sql("SELECT a FROM t WHERE a IN (SELECT k FROM u)")
        assert rows(result) == [(1,), (2,), (3,)]

    def test_uncorrelated_not_in(self, db):
        result = db.sql("SELECT a FROM t WHERE a NOT IN (SELECT k FROM u)")
        assert rows(result) == [(4,), (5,)]

    def test_not_in_with_null_in_set_is_empty(self, db):
        # v contains NULL: x NOT IN (..., NULL) is never TRUE.
        result = db.sql("SELECT a FROM t WHERE a NOT IN (SELECT v FROM u)")
        assert result.rows == []

    def test_not_in_null_free_set(self, db):
        result = db.sql(
            "SELECT a FROM t WHERE a NOT IN (SELECT v FROM u WHERE v IS NOT NULL)"
        )
        assert rows(result) == [(1,), (2,), (3,), (4,), (5,)]

    def test_in_empty_set_is_false(self, db):
        result = db.sql("SELECT a FROM t WHERE a IN (SELECT e FROM empty_t)")
        assert result.rows == []

    def test_not_in_empty_set_is_true(self, db):
        result = db.sql("SELECT a FROM t WHERE a NOT IN (SELECT e FROM empty_t)")
        assert rows(result) == [(1,), (2,), (3,), (4,), (5,)]

    def test_null_operand_in_nonempty_set(self, db):
        # b is NULL for a=4: NULL IN (...) is UNKNOWN, so the row is rejected.
        result = db.sql("SELECT a FROM t WHERE b IN (SELECT v FROM u)")
        assert result.rows == []

    def test_multi_column_inner_rejected(self, db):
        with pytest.raises(BindingError, match="exactly one column"):
            db.sql("SELECT a FROM t WHERE a IN (SELECT k, v FROM u)")

    def test_modes_agree(self, db):
        sql = "SELECT a FROM t WHERE a IN (SELECT k FROM u)"
        assert rows(db.sql(sql, mode="batch")) == rows(db.sql(sql, mode="row"))


class TestExistsSubqueries:
    def test_uncorrelated_exists(self, db):
        result = db.sql("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert len(result.rows) == 5

    def test_uncorrelated_exists_false(self, db):
        result = db.sql("SELECT a FROM t WHERE EXISTS (SELECT e FROM empty_t)")
        assert result.rows == []

    def test_uncorrelated_not_exists(self, db):
        result = db.sql("SELECT a FROM t WHERE NOT EXISTS (SELECT e FROM empty_t)")
        assert len(result.rows) == 5

    def test_correlated_exists(self, db):
        result = db.sql(
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.a)"
        )
        assert rows(result) == [(1,), (2,), (3,)]

    def test_correlated_not_exists(self, db):
        result = db.sql(
            "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u WHERE u.k = t.a)"
        )
        assert rows(result) == [(4,), (5,)]

    def test_correlated_with_extra_inner_filter(self, db):
        result = db.sql(
            "SELECT a FROM t WHERE EXISTS "
            "(SELECT 1 FROM u WHERE u.k = t.a AND u.v > 100)"
        )
        assert rows(result) == [(2,)]

    def test_null_probe_key_never_matches(self, db):
        # b is NULL for a=4: the EXISTS probe finds nothing, NOT EXISTS keeps it.
        db.sql("CREATE TABLE w (x INT)")
        db.sql("INSERT INTO w VALUES (10), (50)")
        result = db.sql(
            "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM w WHERE w.x = t.b)"
        )
        assert rows(result) == [(2,), (3,), (4,)]

    def test_modes_agree(self, db):
        sql = "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u WHERE u.k = t.a)"
        assert rows(db.sql(sql, mode="batch")) == rows(db.sql(sql, mode="row"))


class TestDecorrelationPlans:
    def explain(self, db, sql):
        return "\n".join(row[0] for row in db.sql("EXPLAIN " + sql).rows)

    def test_correlated_exists_plans_semi_join(self, db):
        plan = self.explain(
            db, "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.a)"
        )
        assert "Join(semi" in plan

    def test_correlated_not_exists_plans_anti_join(self, db):
        plan = self.explain(
            db, "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u WHERE u.k = t.a)"
        )
        assert "Join(anti" in plan

    def test_uncorrelated_in_inlines_value_list(self, db):
        plan = self.explain(db, "SELECT a FROM t WHERE a IN (SELECT k FROM u)")
        assert "IN (" in plan

    def test_explain_analyze_semi_join_counters(self, db):
        result = db.sql(
            "EXPLAIN ANALYZE SELECT a FROM t WHERE EXISTS "
            "(SELECT 1 FROM u WHERE u.k = t.a)"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "semi" in text
        assert "actual: rows=" in text
        assert "build_rows=" in text

    def test_correlated_not_in_rejected(self, db):
        with pytest.raises(BindingError, match="NOT EXISTS"):
            db.sql(
                "SELECT a FROM t WHERE a NOT IN "
                "(SELECT k FROM u WHERE u.k = t.a)"
            )

    def test_non_equality_correlation_rejected(self, db):
        with pytest.raises(BindingError, match="correlated"):
            db.sql(
                "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k > t.a)"
            )


class TestSubqueryInteractions:
    def test_in_subquery_with_aggregation(self, db):
        result = db.sql(
            "SELECT a FROM t WHERE tag IN "
            "(SELECT tag FROM t GROUP BY tag HAVING COUNT(*) > 1)"
        )
        assert rows(result) == [(1,), (2,), (3,), (4,)]

    def test_subquery_in_having(self, db):
        result = db.sql(
            "SELECT tag, COUNT(*) AS n FROM t GROUP BY tag "
            "HAVING COUNT(*) > (SELECT MIN(k) FROM u)"
        )
        assert sorted(result.rows) == [("x", 2), ("y", 2)]

    def test_exists_combined_with_plain_predicate(self, db):
        result = db.sql(
            "SELECT a FROM t WHERE a > 1 AND EXISTS "
            "(SELECT 1 FROM u WHERE u.k = t.a)"
        )
        assert rows(result) == [(2,), (3,)]
