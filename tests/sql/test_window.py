"""Window functions: ranking, partitioned and running aggregates, errors."""

import pytest

from repro import Database
from repro.errors import BindingError, SqlSyntaxError
from repro.exec.operators.window import WindowSpec, compute_window_columns


@pytest.fixture
def db():
    database = Database()
    database.sql("CREATE TABLE t (a INT NOT NULL, b INT, tag VARCHAR(10))")
    database.sql(
        "INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'y'), (3, 30, 'x'), "
        "(4, 20, 'y'), (5, NULL, NULL)"
    )
    return database


def by_a(result):
    return sorted(result.rows)


class TestRankingFunctions:
    def test_row_number(self, db):
        result = db.sql(
            "SELECT a, ROW_NUMBER() OVER (ORDER BY a DESC) AS rn FROM t"
        )
        assert by_a(result) == [(1, 5), (2, 4), (3, 3), (4, 2), (5, 1)]

    def test_row_number_partitioned(self, db):
        result = db.sql(
            "SELECT a, ROW_NUMBER() OVER (PARTITION BY tag ORDER BY a) AS rn FROM t"
        )
        assert by_a(result) == [(1, 1), (2, 1), (3, 2), (4, 2), (5, 1)]

    def test_rank_with_ties(self, db):
        # b=20 twice: both rank 2, the next value ranks 4.
        result = db.sql(
            "SELECT a, RANK() OVER (ORDER BY b) AS r FROM t WHERE b IS NOT NULL"
        )
        assert by_a(result) == [(1, 1), (2, 2), (3, 4), (4, 2)]

    def test_dense_rank_with_ties(self, db):
        result = db.sql(
            "SELECT a, DENSE_RANK() OVER (ORDER BY b) AS r FROM t WHERE b IS NOT NULL"
        )
        assert by_a(result) == [(1, 1), (2, 2), (3, 3), (4, 2)]

    def test_order_nulls_sort_last(self, db):
        result = db.sql("SELECT a, ROW_NUMBER() OVER (ORDER BY b) AS rn FROM t")
        assert by_a(result) == [(1, 1), (2, 2), (3, 4), (4, 3), (5, 5)]


class TestWindowAggregates:
    def test_count_star_whole_table(self, db):
        result = db.sql("SELECT a, COUNT(*) OVER () AS n FROM t")
        assert by_a(result) == [(1, 5), (2, 5), (3, 5), (4, 5), (5, 5)]

    def test_partitioned_sum(self, db):
        result = db.sql("SELECT a, SUM(b) OVER (PARTITION BY tag) AS s FROM t")
        assert by_a(result) == [(1, 40), (2, 40), (3, 40), (4, 40), (5, None)]

    def test_null_partition_keys_group_together(self, db):
        result = db.sql("SELECT a, COUNT(*) OVER (PARTITION BY tag) AS n FROM t")
        assert by_a(result) == [(1, 2), (2, 2), (3, 2), (4, 2), (5, 1)]

    def test_running_sum(self, db):
        result = db.sql("SELECT a, SUM(b) OVER (ORDER BY a) AS s FROM t")
        assert by_a(result) == [(1, 10), (2, 30), (3, 60), (4, 80), (5, 80)]

    def test_running_sum_peers_share_value(self, db):
        # ORDER BY b: rows with b=20 are peers and see the same running sum.
        result = db.sql(
            "SELECT a, SUM(b) OVER (ORDER BY b) AS s FROM t WHERE b IS NOT NULL"
        )
        assert by_a(result) == [(1, 10), (2, 50), (3, 80), (4, 50)]

    def test_count_arg_skips_nulls(self, db):
        result = db.sql("SELECT a, COUNT(b) OVER () AS n FROM t")
        assert by_a(result) == [(1, 4), (2, 4), (3, 4), (4, 4), (5, 4)]

    def test_min_max_partitioned(self, db):
        result = db.sql(
            "SELECT a, MIN(b) OVER (PARTITION BY tag) AS lo, "
            "MAX(b) OVER (PARTITION BY tag) AS hi FROM t"
        )
        assert by_a(result) == [
            (1, 10, 30),
            (2, 20, 20),
            (3, 10, 30),
            (4, 20, 20),
            (5, None, None),
        ]

    def test_avg(self, db):
        result = db.sql(
            "SELECT a, AVG(b) OVER (PARTITION BY tag) AS m FROM t WHERE tag = 'x'"
        )
        assert by_a(result) == [(1, 20.0), (3, 20.0)]

    def test_multiple_windows_one_select(self, db):
        result = db.sql(
            "SELECT a, ROW_NUMBER() OVER (ORDER BY a) AS rn, "
            "SUM(b) OVER (PARTITION BY tag) AS s FROM t WHERE tag IS NOT NULL"
        )
        assert by_a(result) == [(1, 1, 40), (2, 2, 40), (3, 3, 40), (4, 4, 40)]

    def test_window_over_expression(self, db):
        result = db.sql("SELECT a, SUM(b) OVER (PARTITION BY a * 0) AS s FROM t")
        assert by_a(result) == [(1, 80), (2, 80), (3, 80), (4, 80), (5, 80)]

    def test_window_output_usable_in_order_by(self, db):
        result = db.sql(
            "SELECT a, ROW_NUMBER() OVER (ORDER BY a DESC) AS rn FROM t "
            "ORDER BY rn LIMIT 2"
        )
        assert result.rows == [(5, 1), (4, 2)]

    def test_modes_agree(self, db):
        sql = (
            "SELECT a, RANK() OVER (PARTITION BY tag ORDER BY b) AS r, "
            "SUM(b) OVER (ORDER BY a) AS s FROM t"
        )
        assert by_a(db.sql(sql, mode="batch")) == by_a(db.sql(sql, mode="row"))


class TestWindowPlans:
    def test_explain_shows_window_node(self, db):
        result = db.sql(
            "EXPLAIN SELECT a, ROW_NUMBER() OVER (ORDER BY a) AS rn FROM t"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "Window(row_number" in text
        assert "BatchWindow(row_number" in text

    def test_explain_row_mode(self, db):
        result = db.sql(
            "EXPLAIN SELECT a, SUM(b) OVER (PARTITION BY tag) AS s FROM t",
            mode="row",
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "RowWindow(sum" in text

    def test_explain_analyze_window_counters(self, db):
        result = db.sql(
            "EXPLAIN ANALYZE SELECT a, SUM(b) OVER (PARTITION BY tag) AS s FROM t"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "BatchWindow(sum" in text
        assert "actual: rows=5" in text

    def test_filter_pushes_below_window(self, db):
        # The WHERE filters before the window computes, and stays below it.
        result = db.sql(
            "EXPLAIN SELECT a, SUM(b) OVER () AS s FROM t WHERE a > 1"
        )
        text = "\n".join(row[0] for row in result.rows)
        window_at = text.index("Window(")
        scan_at = text.index("Scan(t")
        assert window_at < scan_at


class TestWindowErrors:
    def test_rejected_in_where(self, db):
        with pytest.raises(BindingError, match="select list"):
            db.sql("SELECT a FROM t WHERE ROW_NUMBER() OVER (ORDER BY a) = 1")

    def test_rejected_with_group_by(self, db):
        with pytest.raises(BindingError, match="GROUP BY"):
            db.sql(
                "SELECT tag, SUM(b) AS s, ROW_NUMBER() OVER (ORDER BY tag) AS rn "
                "FROM t GROUP BY tag"
            )

    def test_frames_unsupported(self, db):
        with pytest.raises(SqlSyntaxError, match="window frames"):
            db.sql(
                "SELECT a, SUM(b) OVER (ORDER BY a ROWS BETWEEN 1 PRECEDING "
                "AND CURRENT ROW) AS s FROM t"
            )

    def test_unknown_window_function(self, db):
        with pytest.raises(SqlSyntaxError, match="NTILE"):
            db.sql("SELECT a, NTILE(2) OVER (ORDER BY a) AS n FROM t")

    def test_distinct_in_window_unsupported(self, db):
        with pytest.raises(SqlSyntaxError, match="DISTINCT"):
            db.sql("SELECT a, SUM(DISTINCT b) OVER () AS s FROM t")

    def test_spec_validation(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="requires an argument"):
            WindowSpec(func="sum", arg=None, partition_by=(), order_by=(), name="w")
        with pytest.raises(ExecutionError, match="unknown window function"):
            WindowSpec(
                func="nope", arg="b", partition_by=(), order_by=(), name="w"
            )


class TestComputeWindowColumns:
    def test_direct_computation(self):
        rows = [
            {"g": "a", "v": 3},
            {"g": "a", "v": 1},
            {"g": "b", "v": 2},
        ]
        specs = [
            WindowSpec(
                func="row_number",
                arg=None,
                partition_by=("g",),
                order_by=(("v", False),),
                name="rn",
            ),
            WindowSpec(
                func="sum", arg="v", partition_by=("g",), order_by=(), name="s"
            ),
        ]
        out = compute_window_columns(rows, specs)
        assert out["rn"] == [2, 1, 1]
        assert out["s"] == [4, 4, 2]
