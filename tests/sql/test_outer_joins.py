"""Tests for RIGHT and FULL OUTER joins (all join types, as in the paper)."""

import pytest

from repro import Database
from repro.exec.memory import MemoryGrant


@pytest.fixture
def db():
    database = Database()
    database.sql("CREATE TABLE f (k INT, v VARCHAR)")
    database.sql("CREATE TABLE d (id INT NOT NULL, tag VARCHAR)")
    database.sql(
        "INSERT INTO f VALUES (1, 'a'), (2, 'b'), (99, 'orphan'), (NULL, 'nullkey')"
    )
    database.sql("INSERT INTO d VALUES (1, 'one'), (2, 'two'), (3, 'unreferenced')")
    return database


def normalized(result):
    return sorted(result.rows, key=repr)


class TestRightJoin:
    def test_preserves_right_side(self, db):
        result = db.sql(
            "SELECT f.v, d.tag FROM f RIGHT JOIN d ON f.k = d.id ORDER BY d.tag"
        )
        assert normalized(result) == sorted(
            [("a", "one"), ("b", "two"), (None, "unreferenced")], key=repr
        )

    def test_right_outer_keyword(self, db):
        result = db.sql("SELECT d.tag FROM f RIGHT OUTER JOIN d ON f.k = d.id")
        assert len(result.rows) == 3

    def test_modes_agree(self, db):
        sql = "SELECT f.v, d.tag FROM f RIGHT JOIN d ON f.k = d.id"
        assert normalized(db.sql(sql, mode="batch")) == normalized(db.sql(sql, mode="row"))


class TestFullJoin:
    def test_preserves_both_sides(self, db):
        result = db.sql("SELECT f.v, d.tag FROM f FULL JOIN d ON f.k = d.id")
        assert normalized(result) == sorted(
            [
                ("a", "one"),
                ("b", "two"),
                ("orphan", None),
                ("nullkey", None),
                (None, "unreferenced"),
            ],
            key=repr,
        )

    def test_full_outer_keyword(self, db):
        result = db.sql("SELECT f.v FROM f FULL OUTER JOIN d ON f.k = d.id")
        assert len(result.rows) == 5

    def test_modes_agree(self, db):
        sql = "SELECT f.v, d.tag FROM f FULL JOIN d ON f.k = d.id"
        assert normalized(db.sql(sql, mode="batch")) == normalized(db.sql(sql, mode="row"))

    def test_aggregate_over_full_join(self, db):
        result = db.sql(
            "SELECT COUNT(*) AS n, COUNT(d.tag) AS matched "
            "FROM f FULL JOIN d ON f.k = d.id"
        )
        assert result.rows == [(5, 3)]


class TestOuterJoinPushdownSemantics:
    def test_null_side_filter_not_pushed_below_right_join(self, db):
        # f.v = 'a' over a RIGHT join must evaluate AFTER null extension:
        # unmatched d rows have f.v NULL and are filtered by the predicate,
        # but pushing it below would ALSO be wrong for differently-shaped
        # preserved rows. Verify end results against row-mode semantics.
        sql = (
            "SELECT f.v, d.tag FROM f RIGHT JOIN d ON f.k = d.id "
            "WHERE f.v = 'a'"
        )
        assert normalized(db.sql(sql)) == [("a", "one")]

    def test_preserved_side_filter_pushes(self, db):
        sql = (
            "SELECT f.v, d.tag FROM f RIGHT JOIN d ON f.k = d.id "
            "WHERE d.tag = 'unreferenced'"
        )
        assert normalized(db.sql(sql)) == [(None, "unreferenced")]

    def test_full_join_filters_stay_above(self, db):
        sql = (
            "SELECT f.v, d.tag FROM f FULL JOIN d ON f.k = d.id "
            "WHERE d.tag IS NULL"
        )
        assert normalized(db.sql(sql)) == sorted(
            [("orphan", None), ("nullkey", None)], key=repr
        )


class TestSpilledOuterJoins:
    def test_right_join_spilled_matches_in_memory(self):
        db = Database()
        db.sql("CREATE TABLE f (k INT NOT NULL)")
        db.sql("CREATE TABLE d (id INT NOT NULL, pad VARCHAR)")
        db.bulk_load("f", [(i % 400,) for i in range(3000)])
        db.bulk_load("d", [(i, f"pad-{i}") for i in range(800)])  # half unmatched
        sql = (
            "SELECT COUNT(*) AS n, COUNT(f.k) AS matched "
            "FROM f RIGHT JOIN d ON f.k = d.id"
        )
        ample = db.sql(sql)
        starved = db.sql(sql, grant_bytes=4096)
        assert ample.rows == starved.rows
        # 3000 matched pairs + 400 unmatched d rows.
        assert ample.rows == [(3400, 3000)]
