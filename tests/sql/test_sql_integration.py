"""End-to-end SQL tests against the full engine."""

import datetime

import pytest

from repro import Database, StoreConfig
from repro.errors import BindingError, CatalogError


@pytest.fixture
def db():
    database = Database(
        StoreConfig(rowgroup_size=64, bulk_load_threshold=50, delta_close_rows=64)
    )
    database.sql(
        "CREATE TABLE sales (id INT NOT NULL, cust_id INT NOT NULL, "
        "amount DECIMAL(10,2), sale_date DATE, note VARCHAR)"
    )
    database.sql(
        "CREATE TABLE customers (cid INT NOT NULL, name VARCHAR, region VARCHAR)"
    )
    database.bulk_load(
        "sales",
        [
            (i, i % 5, round(1.5 * i, 2), f"2024-01-{i % 28 + 1:02d}", f"note{i % 3}")
            for i in range(200)
        ],
    )
    database.bulk_load(
        "customers", [(i, f"cust{i}", ["east", "west"][i % 2]) for i in range(5)]
    )
    return database


class TestSelect:
    def test_simple_projection(self, db):
        result = db.sql("SELECT id FROM sales WHERE id < 3 ORDER BY id")
        assert result.rows == [(0,), (1,), (2,)]

    def test_star(self, db):
        result = db.sql("SELECT * FROM customers ORDER BY cid LIMIT 1")
        assert result.rows == [(0, "cust0", "east")]

    def test_expressions(self, db):
        result = db.sql("SELECT id * 2 + 1 AS v FROM sales WHERE id = 10")
        assert result.rows == [(21,)]

    def test_date_presentation(self, db):
        result = db.sql("SELECT sale_date FROM sales WHERE id = 0")
        assert result.rows == [(datetime.date(2024, 1, 1),)]

    def test_decimal_presentation(self, db):
        result = db.sql("SELECT amount FROM sales WHERE id = 10")
        assert result.rows == [(15.0,)]

    def test_case_expression(self, db):
        result = db.sql(
            "SELECT CASE WHEN id < 100 THEN 'low' ELSE 'high' END AS bucket, "
            "COUNT(*) AS n FROM sales GROUP BY bucket ORDER BY bucket"
        )
        assert result.rows == [("high", 100), ("low", 100)]

    def test_distinct(self, db):
        result = db.sql("SELECT DISTINCT note FROM sales ORDER BY note")
        assert result.rows == [("note0",), ("note1",), ("note2",)]

    def test_limit(self, db):
        assert len(db.sql("SELECT id FROM sales LIMIT 7").rows) == 7

    def test_order_by_position(self, db):
        result = db.sql("SELECT id, amount FROM sales ORDER BY 2 DESC LIMIT 1")
        assert result.rows[0][0] == 199


class TestAggregates:
    def test_global_aggregates(self, db):
        result = db.sql(
            "SELECT COUNT(*) AS n, SUM(amount) AS s, MIN(id) AS lo, "
            "MAX(id) AS hi, AVG(amount) AS m FROM sales"
        )
        n, s, lo, hi, m = result.rows[0]
        assert n == 200
        assert lo == 0 and hi == 199
        assert s == pytest.approx(sum(round(1.5 * i, 2) for i in range(200)))
        assert m == pytest.approx(s / 200)

    def test_group_by(self, db):
        result = db.sql(
            "SELECT cust_id, COUNT(*) AS n FROM sales GROUP BY cust_id ORDER BY cust_id"
        )
        assert result.rows == [(i, 40) for i in range(5)]

    def test_having(self, db):
        result = db.sql(
            "SELECT note, COUNT(*) AS n FROM sales GROUP BY note "
            "HAVING COUNT(*) > 66 ORDER BY note"
        )
        assert all(n > 66 for _, n in result.rows)
        assert len(result.rows) == 2  # note0 and note1 have 67, note2 has 66

    def test_group_by_expression(self, db):
        result = db.sql(
            "SELECT month(sale_date) AS m, COUNT(*) AS n FROM sales GROUP BY m"
        )
        assert result.rows == [(1, 200)]

    def test_aggregate_arithmetic_in_select(self, db):
        result = db.sql("SELECT SUM(amount) / COUNT(*) AS mean FROM sales")
        assert result.rows[0][0] == pytest.approx(
            sum(round(1.5 * i, 2) for i in range(200)) / 200
        )

    def test_bare_column_not_in_group_by_rejected(self, db):
        with pytest.raises(BindingError):
            db.sql("SELECT id, COUNT(*) FROM sales GROUP BY cust_id")


class TestJoins:
    def test_inner_join(self, db):
        result = db.sql(
            "SELECT c.region, SUM(s.amount) AS total "
            "FROM sales s JOIN customers c ON s.cust_id = c.cid "
            "GROUP BY c.region ORDER BY c.region"
        )
        assert [r[0] for r in result.rows] == ["east", "west"]

    def test_left_join(self, db):
        db.sql("INSERT INTO sales VALUES (999, 77, 1.0, '2024-02-01', 'orphan')")
        result = db.sql(
            "SELECT s.id, c.name FROM sales s LEFT JOIN customers c "
            "ON s.cust_id = c.cid WHERE s.id = 999"
        )
        assert result.rows == [(999, None)]

    def test_join_filters_both_sides(self, db):
        result = db.sql(
            "SELECT COUNT(*) AS n FROM sales s JOIN customers c ON s.cust_id = c.cid "
            "WHERE c.region = 'east' AND s.id < 50"
        )
        expected = sum(1 for i in range(50) if (i % 5) % 2 == 0)
        assert result.scalar() == expected

    def test_three_way_join(self, db):
        db.sql("CREATE TABLE regions (rname VARCHAR NOT NULL, code INT)")
        db.insert("regions", [("east", 1), ("west", 2)])
        result = db.sql(
            "SELECT r.code, COUNT(*) AS n FROM sales s "
            "JOIN customers c ON s.cust_id = c.cid "
            "JOIN regions r ON r.rname = c.region "
            "GROUP BY r.code ORDER BY r.code"
        )
        assert len(result.rows) == 2

    def test_ambiguous_column_rejected(self, db):
        db.sql("CREATE TABLE other (id INT)")
        with pytest.raises(BindingError):
            db.sql("SELECT id FROM sales s JOIN other o ON o.id = s.id")


class TestDml:
    def test_insert_then_query(self, db):
        db.sql("INSERT INTO sales VALUES (1000, 1, 9.99, '2024-03-01', 'new')")
        result = db.sql("SELECT amount FROM sales WHERE id = 1000")
        assert result.rows == [(9.99,)]

    def test_insert_column_subset(self, db):
        db.sql("INSERT INTO customers (cid, name) VALUES (100, 'newbie')")
        result = db.sql("SELECT name, region FROM customers WHERE cid = 100")
        assert result.rows == [("newbie", None)]

    def test_delete(self, db):
        affected = db.sql("DELETE FROM sales WHERE cust_id = 3")
        assert affected.scalar() == 40
        assert db.sql("SELECT COUNT(*) AS n FROM sales").scalar() == 160

    def test_delete_everything(self, db):
        db.sql("DELETE FROM customers")
        assert db.sql("SELECT COUNT(*) AS n FROM customers").scalar() == 0

    def test_update_literal(self, db):
        db.sql("UPDATE sales SET note = 'patched' WHERE id = 5")
        assert db.sql("SELECT note FROM sales WHERE id = 5").scalar() == "patched"

    def test_update_expression(self, db):
        before = db.sql("SELECT amount FROM sales WHERE id = 10").scalar()
        db.sql("UPDATE sales SET amount = amount * 2 WHERE id = 10")
        after = db.sql("SELECT amount FROM sales WHERE id = 10").scalar()
        assert after == pytest.approx(before * 2)

    def test_update_date_literal(self, db):
        db.sql("UPDATE sales SET sale_date = '2025-12-25' WHERE id = 0")
        assert db.sql("SELECT sale_date FROM sales WHERE id = 0").scalar() == (
            datetime.date(2025, 12, 25)
        )

    def test_deleted_rows_invisible_to_joins(self, db):
        db.sql("DELETE FROM customers WHERE region = 'west'")
        result = db.sql(
            "SELECT COUNT(*) AS n FROM sales s JOIN customers c ON s.cust_id = c.cid"
        )
        expected = sum(1 for i in range(200) if (i % 5) % 2 == 0)
        assert result.scalar() == expected


class TestDdl:
    def test_create_and_drop(self, db):
        db.sql("CREATE TABLE temp (a INT)")
        db.sql("INSERT INTO temp VALUES (1)")
        db.sql("DROP TABLE temp")
        with pytest.raises(CatalogError):
            db.sql("SELECT * FROM temp")

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.sql("CREATE TABLE sales (a INT)")

    def test_storage_clause(self, db):
        db.sql("CREATE TABLE rs (a INT) USING rowstore")
        assert db.table("rs").columnstore is None
        db.sql("CREATE TABLE dual (a INT) USING both")
        assert db.table("dual").columnstore is not None
        assert db.table("dual").rowstore is not None


class TestModeEquivalence:
    QUERIES = [
        "SELECT COUNT(*) AS n FROM sales",
        "SELECT cust_id, SUM(amount) AS s FROM sales GROUP BY cust_id ORDER BY cust_id",
        "SELECT c.region, COUNT(*) AS n FROM sales s "
        "JOIN customers c ON s.cust_id = c.cid GROUP BY c.region ORDER BY c.region",
        "SELECT id FROM sales WHERE note LIKE 'note1%' AND amount > 50 ORDER BY id",
        "SELECT note, MIN(id) AS lo, MAX(id) AS hi FROM sales "
        "WHERE sale_date BETWEEN '2024-01-05' AND '2024-01-20' "
        "GROUP BY note ORDER BY note",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_batch_equals_row(self, db, query):
        batch = db.sql(query, mode="batch")
        row = db.sql(query, mode="row")
        assert batch.columns == row.columns
        assert batch.rows == row.rows
