"""WITH clauses: inlining, chaining, shadowing, and the unsupported edges."""

import pytest

from repro import Database
from repro.errors import BindingError, SqlSyntaxError


@pytest.fixture
def db():
    database = Database()
    database.sql("CREATE TABLE t (a INT NOT NULL, b INT, tag VARCHAR(10))")
    database.sql(
        "INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'y'), (3, 30, 'x'), (4, 40, 'y')"
    )
    return database


class TestBasicCtes:
    def test_single_cte(self, db):
        result = db.sql(
            "WITH big AS (SELECT a FROM t WHERE b > 15) "
            "SELECT a FROM big ORDER BY a"
        )
        assert result.rows == [(2,), (3,), (4,)]

    def test_cte_with_aliases(self, db):
        result = db.sql(
            "WITH r AS (SELECT a AS id, b AS val FROM t) "
            "SELECT id FROM r WHERE val = 20"
        )
        assert result.rows == [(2,)]

    def test_cte_with_aggregate_body(self, db):
        result = db.sql(
            "WITH per_tag AS (SELECT tag, SUM(b) AS total FROM t GROUP BY tag) "
            "SELECT tag, total FROM per_tag ORDER BY tag"
        )
        assert result.rows == [("x", 40), ("y", 60)]

    def test_multiple_ctes(self, db):
        result = db.sql(
            "WITH ids AS (SELECT a FROM t WHERE b > 15), "
            "vals AS (SELECT a, b FROM t) "
            "SELECT v.a, v.b FROM ids i JOIN vals v ON i.a = v.a ORDER BY v.a"
        )
        assert result.rows == [(2, 20), (3, 30), (4, 40)]

    def test_chained_ctes(self, db):
        result = db.sql(
            "WITH first AS (SELECT a, b FROM t WHERE a > 1), "
            "second AS (SELECT a FROM first WHERE b < 35) "
            "SELECT COUNT(*) AS n FROM second"
        )
        assert result.rows == [(2,)]

    def test_same_cte_referenced_twice(self, db):
        result = db.sql(
            "WITH vals AS (SELECT a, b FROM t) "
            "SELECT x.a, y.a AS other FROM vals x JOIN vals y ON x.b = y.b "
            "WHERE x.a <> y.a"
        )
        assert result.rows == []

    def test_cte_joined_to_base_table(self, db):
        result = db.sql(
            "WITH picked AS (SELECT a FROM t WHERE tag = 'x') "
            "SELECT t.b FROM t JOIN picked p ON t.a = p.a ORDER BY t.b"
        )
        assert result.rows == [(10,), (30,)]

    def test_cte_shadows_base_table(self, db):
        result = db.sql(
            "WITH t AS (SELECT a FROM t WHERE a = 1) SELECT a FROM t"
        )
        assert result.rows == [(1,)]

    def test_cte_feeding_subquery(self, db):
        result = db.sql(
            "WITH picked AS (SELECT a FROM t WHERE b > 25) "
            "SELECT a FROM t WHERE a IN (SELECT a FROM picked) ORDER BY a"
        )
        assert result.rows == [(3,), (4,)]

    def test_modes_agree(self, db):
        sql = (
            "WITH per_tag AS (SELECT tag, SUM(b) AS total FROM t GROUP BY tag) "
            "SELECT tag, total FROM per_tag"
        )
        assert sorted(db.sql(sql, mode="batch").rows) == sorted(
            db.sql(sql, mode="row").rows
        )

    def test_explain_shows_inlined_plan(self, db):
        result = db.sql(
            "EXPLAIN WITH big AS (SELECT a FROM t WHERE b > 15) "
            "SELECT a FROM big"
        )
        text = "\n".join(row[0] for row in result.rows)
        # The CTE is inlined: the plan scans the base table directly.
        assert "Scan(t" in text
        assert "-- physical" in text


class TestCteErrors:
    def test_recursive_unsupported(self, db):
        with pytest.raises(SqlSyntaxError, match="RECURSIVE"):
            db.sql("WITH RECURSIVE r AS (SELECT a FROM t) SELECT a FROM r")

    def test_duplicate_name_rejected(self, db):
        with pytest.raises(BindingError, match="duplicate CTE name"):
            db.sql(
                "WITH x AS (SELECT a FROM t), x AS (SELECT b FROM t) "
                "SELECT a FROM x"
            )

    def test_nested_with_in_cte_body_unsupported(self, db):
        with pytest.raises(SqlSyntaxError, match="not supported: WITH"):
            db.sql(
                "WITH outer_cte AS (WITH inner_cte AS (SELECT a FROM t) "
                "SELECT a FROM inner_cte) SELECT a FROM outer_cte"
            )

    def test_with_inside_subquery_unsupported(self, db):
        with pytest.raises(SqlSyntaxError, match="top level"):
            db.sql(
                "SELECT a FROM t WHERE a = "
                "(WITH m AS (SELECT MIN(a) AS lo FROM t) SELECT lo FROM m)"
            )

    def test_later_cte_cannot_see_earlier_only_backwards(self, db):
        # Forward references are unknown tables.
        with pytest.raises(Exception):
            db.sql(
                "WITH first AS (SELECT a FROM second), "
                "second AS (SELECT a FROM t) SELECT a FROM first"
            )
