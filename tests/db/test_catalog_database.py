"""Tests for the catalog, table maintenance and the database facade."""

import pytest

from repro import Database, StoreConfig, schema, types
from repro.db.catalog import StorageKind
from repro.errors import CatalogError
from repro.exec.expressions import Comparison, col, lit


@pytest.fixture
def config():
    return StoreConfig(rowgroup_size=64, bulk_load_threshold=40, delta_close_rows=32)


@pytest.fixture
def db(config):
    return Database(config)


@pytest.fixture
def sch():
    return schema(("id", types.INT, False), ("v", types.VARCHAR))


class TestStorageKinds:
    def test_columnstore_only(self, db, sch):
        table = db.create_table("t", sch, storage="columnstore")
        assert table.columnstore is not None
        assert table.rowstore is None

    def test_rowstore_only(self, db, sch):
        table = db.create_table("t", sch, storage="rowstore")
        assert table.columnstore is None
        assert table.rowstore is not None

    def test_both_keeps_storages_consistent(self, db, sch):
        db.create_table("t", sch, storage="both")
        db.insert("t", [(i, f"v{i}") for i in range(10)])
        table = db.table("t")
        assert table.rowstore.row_count == 10
        assert table.columnstore.live_rows == 10
        db.delete_where("t", Comparison("<", col("id"), lit(5)))
        assert table.rowstore.row_count == 5
        assert table.columnstore.live_rows == 5

    def test_both_queries_agree_across_modes(self, db, sch):
        db.create_table("t", sch, storage="both")
        db.insert("t", [(i, f"v{i % 3}") for i in range(50)])
        batch = db.sql("SELECT v, COUNT(*) AS n FROM t GROUP BY v ORDER BY v", mode="batch")
        row = db.sql("SELECT v, COUNT(*) AS n FROM t GROUP BY v ORDER BY v", mode="row")
        assert batch.rows == row.rows

    def test_unknown_storage_string(self, db, sch):
        with pytest.raises(ValueError):
            db.create_table("t", sch, storage="hologram")


class TestDeleteCount:
    """DELETE's reported row count is the number of *logical* rows.

    Regression: BOTH-storage tables used to derive the count from the
    two physical deletes independently, so the same logical row could be
    double-counted (or, with diverged storages, dropped from the count
    entirely). :meth:`Table.delete_rows` now reports one authoritative
    number.
    """

    def test_both_storage_counts_each_row_once(self, db, sch):
        db.create_table("t", sch, storage="both")
        db.insert("t", [(i, f"v{i}") for i in range(10)])
        deleted = db.delete_where("t", Comparison("<", col("id"), lit(4)))
        assert deleted == 4  # not 8: heap + index hold the same 4 rows
        assert db.sql("SELECT COUNT(*) AS n FROM t").scalar() == 6

    def test_sql_delete_reports_logical_count(self, db, sch):
        db.create_table("t", sch, storage="both")
        db.insert("t", [(i, f"v{i}") for i in range(10)])
        assert db.sql("DELETE FROM t WHERE id >= 7").scalar() == 3

    def test_single_storage_counts_unchanged(self, db, sch):
        for storage in ("rowstore", "columnstore"):
            db2 = Database(StoreConfig())
            db2.create_table("t", sch, storage=storage)
            db2.insert("t", [(i, "x") for i in range(6)])
            assert db2.delete_where("t", Comparison("<", col("id"), lit(2))) == 2

    def test_diverged_storages_report_max(self, db, sch):
        # Force split-brain by inserting into one storage behind the
        # facade's back: the columnstore holds a row the heap never saw.
        db.create_table("t", sch, storage="both")
        db.insert("t", [(1, "a"), (2, "b")])
        table = db.table("t")
        table.columnstore.insert(table.schema.coerce_row((3, "ghost")))
        deleted = db.delete_where("t", Comparison(">=", col("id"), lit(2)))
        # Row 2 exists in both storages, row 3 only in the columnstore:
        # two distinct logical rows disappeared. The old per-storage
        # bookkeeping would have reported 1 (heap's view) or 3 (the sum).
        assert deleted == 2
        assert table.rowstore.row_count == 1
        assert table.columnstore.live_rows == 1


class TestMaintenance:
    def test_tuple_mover_via_facade(self, db, sch):
        db.create_table("t", sch)
        db.insert("t", [(i, "x") for i in range(70)])  # 2 closed deltas + open
        report = db.run_tuple_mover("t")
        assert report.rows_moved == 64
        assert db.table("t").columnstore.compressed_rows == 64
        assert db.sql("SELECT COUNT(*) AS n FROM t").scalar() == 70

    def test_rebuild_via_facade(self, db, sch):
        db.create_table("t", sch)
        db.bulk_load("t", [(i, "x") for i in range(100)])
        db.sql("DELETE FROM t WHERE id < 10")
        db.rebuild("t")
        index = db.table("t").columnstore
        assert index.delete_bitmap.total_deleted == 0
        assert index.compressed_rows == 90

    def test_rebuild_requires_columnstore(self, db, sch):
        db.create_table("t", sch, storage="rowstore")
        with pytest.raises(CatalogError):
            db.rebuild("t")

    def test_archival_toggle(self, db, sch):
        db.create_table("t", sch)
        db.bulk_load("t", [(i, f"text{i % 4}") for i in range(100)])
        plain = db.table("t").columnstore.size_bytes
        db.set_archival("t", True)
        archived = db.table("t").columnstore.size_bytes
        assert archived != plain
        assert db.sql("SELECT COUNT(*) AS n FROM t").scalar() == 100
        db.set_archival("t", False)
        assert db.table("t").columnstore.size_bytes == plain

    def test_size_report(self, db, sch):
        db.create_table("t", sch, storage="both")
        db.insert("t", [(i, "abc") for i in range(50)])
        report = db.table("t").size_report()
        assert report["columnstore_bytes"] > 0
        assert report["rowstore_used_bytes"] > 0
        assert report["rowstore_page_compressed_bytes"] > 0


class TestStats:
    def test_columnstore_stats(self, db, sch):
        db.create_table("t", sch)
        db.bulk_load("t", [(i, f"v{i % 5}") for i in range(100)])
        stats = db.table("t").stats()
        assert stats.row_count == 100
        assert stats.columns["id"].min_value == 0
        assert stats.columns["id"].max_value == 99
        assert stats.columns["v"].ndv == 5

    def test_rowstore_stats(self, db, sch):
        db.create_table("t", sch, storage="rowstore")
        db.insert("t", [(i, f"v{i % 5}") for i in range(20)])
        stats = db.table("t").stats()
        assert stats.columns["v"].ndv == 5
        assert stats.columns["id"].max_value == 19

    def test_stats_cache_invalidation(self, db, sch):
        db.create_table("t", sch)
        db.bulk_load("t", [(i, "x") for i in range(50)])
        first = db.table("t").stats()
        assert first.row_count == 50
        db.insert("t", [(999, "y")])
        assert db.table("t").stats().row_count == 51

    def test_null_fraction(self, db, sch):
        db.create_table("t", sch)
        db.bulk_load("t", [(i, None if i % 2 else "x") for i in range(64)])
        stats = db.table("t").stats()
        assert stats.columns["v"].null_fraction == pytest.approx(0.5)


class TestCatalog:
    def test_table_names(self, db, sch):
        db.create_table("b_table", sch)
        db.create_table("a_table", sch)
        assert db.catalog.table_names() == ["a_table", "b_table"]

    def test_case_insensitive_lookup(self, db, sch):
        db.create_table("MyTable", sch)
        assert db.table("mytable").name == "MyTable"

    def test_drop_unknown(self, db):
        with pytest.raises(CatalogError):
            db.drop_table("ghost")

    def test_create_index(self, db, sch):
        db.create_table("t", sch, storage="rowstore")
        db.insert("t", [(3, "c"), (1, "a"), (2, "b")])
        index = db.table("t").create_index("by_id", ["id"])
        rids = list(index.seek_range((1,), (2,)))
        assert len(rids) == 2

    def test_duplicate_index_rejected(self, db, sch):
        db.create_table("t", sch, storage="rowstore")
        db.table("t").create_index("i", ["id"])
        with pytest.raises(CatalogError):
            db.table("t").create_index("i", ["id"])

    def test_index_on_columnstore_only_table_rejected(self, db, sch):
        db.create_table("t", sch, storage="columnstore")
        with pytest.raises(CatalogError):
            db.table("t").create_index("i", ["id"])
