"""The differential SQL battery: every statement checked three ways.

1. **Plan**: ``EXPLAIN`` succeeds, renders a physical plan, and contains
   each ``-- plan:`` marker from the statement file.
2. **Engines**: the batch and row engines produce identical rows
   (sorted, floats rounded to 6 places).
3. **Oracle**: the rows match sqlite running the same statement on the
   same data (floats rounded to 4 places), unless the statement opted
   out with ``-- no-oracle:`` or sqlite itself cannot parse it.

A final coverage test enforces the floors the battery exists for: at
least 200 statements total, at least 150 of them oracle-compared, and at
least 8 adapted TPC-H queries all passing every applicable check.
"""

from __future__ import annotations

import sqlite3

import pytest

from .battery_lib import load_statements, normalize_rows

STATEMENTS = load_statements()

# Filled in as the parametrized tests run; the coverage test reads it.
_ORACLE_OUTCOMES: dict[str, str] = {}  # source -> "compared" | "skipped"


def _ids():
    return [s.source for s in STATEMENTS]


@pytest.mark.parametrize("statement", STATEMENTS, ids=_ids())
def test_statement(statement, battery_db, oracle):
    # Check 1: EXPLAIN renders and carries the expected plan shape.
    explain = battery_db.sql("EXPLAIN " + statement.sql)
    plan_text = "\n".join(row[0] for row in explain.rows)
    assert "-- physical" in plan_text, f"no physical plan for {statement.source}"
    for marker in statement.plan_markers:
        assert marker in plan_text, (
            f"{statement.source}: plan marker {marker!r} missing from:\n{plan_text}"
        )

    # Check 2: both engines agree on the result.
    batch_rows = battery_db.sql(statement.sql, mode="batch").rows
    row_rows = battery_db.sql(statement.sql, mode="row").rows
    assert normalize_rows(batch_rows, 6) == normalize_rows(row_rows, 6), (
        f"{statement.source}: batch and row engines disagree"
    )

    # Check 3: the sqlite oracle agrees, when the statement is expressible.
    if statement.no_oracle is not None:
        _ORACLE_OUTCOMES[statement.source] = "skipped"
        return
    try:
        oracle_rows = oracle.execute(statement.sql).fetchall()
    except sqlite3.Error as exc:
        _ORACLE_OUTCOMES[statement.source] = "skipped"
        pytest.skip(f"sqlite cannot run {statement.source}: {exc}")
    _ORACLE_OUTCOMES[statement.source] = "compared"
    assert normalize_rows(batch_rows, 4) == normalize_rows(oracle_rows, 4), (
        f"{statement.source}: engine disagrees with sqlite oracle"
    )


def test_battery_coverage(battery_db):
    """The floors: battery breadth is a regression surface, not a sample."""
    total = len(STATEMENTS)
    assert total >= 200, f"battery shrank to {total} statements (floor: 200)"

    if not _ORACLE_OUTCOMES:
        pytest.skip("per-statement tests did not run in this invocation")
    compared = sum(1 for v in _ORACLE_OUTCOMES.values() if v == "compared")
    assert compared >= 150, (
        f"only {compared} statements oracle-compared (floor: 150) — "
        "too many statements drifted outside sqlite's dialect"
    )

    tpch = {s.tpch for s in STATEMENTS if s.tpch}
    assert len(tpch) >= 8, f"only {len(tpch)} TPC-H adaptations: {sorted(tpch)}"
    assert "Q13" in tpch, "the Q13 adaptation (LEFT JOIN + CTE) is required"
