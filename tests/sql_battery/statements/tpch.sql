-- Adapted TPC-H queries over the tiny dataset (no nation/region/part
-- tables: nation keys group directly, and date ranges match the data).

-- tpch: Q1
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= '1998-08-01'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus;

-- tpch: Q3
SELECT l.l_orderkey,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
       o.o_orderdate
FROM customer c
JOIN orders o ON c.c_custkey = o.o_custkey
JOIN lineitem l ON o.o_orderkey = l.l_orderkey
WHERE c.c_mktsegment = 'BUILDING'
  AND o.o_orderdate < '1997-03-15'
  AND l.l_shipdate > '1997-03-15'
GROUP BY l.l_orderkey, o.o_orderdate
ORDER BY revenue DESC, l.l_orderkey
LIMIT 10;

-- tpch: Q4
-- plan: Join(semi
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders o
WHERE o_orderdate >= '1996-01-01'
  AND o_orderdate < '1997-01-01'
  AND EXISTS (
    SELECT 1 FROM lineitem l
    WHERE l.l_orderkey = o.o_orderkey
      AND l.l_commitdate < l.l_receiptdate
  )
GROUP BY o_orderpriority
ORDER BY o_orderpriority;

-- tpch: Q6
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= '1996-01-01'
  AND l_shipdate < '1997-01-01'
  AND l_discount BETWEEN 0.02 AND 0.08
  AND l_quantity < 24;

-- tpch: Q10
SELECT c.c_custkey, c.c_name,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
       c.c_acctbal
FROM customer c
JOIN orders o ON c.c_custkey = o.o_custkey
JOIN lineitem l ON o.o_orderkey = l.l_orderkey
WHERE o.o_orderdate >= '1996-01-01'
  AND o.o_orderdate < '1997-01-01'
  AND l.l_returnflag = 'R'
GROUP BY c.c_custkey, c.c_name, c.c_acctbal
ORDER BY revenue DESC, c.c_custkey
LIMIT 20;

-- tpch: Q12
SELECT l.l_shipmode,
       SUM(CASE WHEN o.o_orderpriority = '1-URGENT' OR o.o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o.o_orderpriority <> '1-URGENT' AND o.o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count
FROM orders o
JOIN lineitem l ON o.o_orderkey = l.l_orderkey
WHERE l.l_shipmode IN ('MAIL', 'SHIP')
  AND l.l_commitdate < l.l_receiptdate
  AND l.l_shipdate < l.l_commitdate
  AND l.l_receiptdate >= '1995-06-01'
  AND l.l_receiptdate < '1997-06-01'
GROUP BY l.l_shipmode
ORDER BY l.l_shipmode;

-- tpch: Q13
WITH filtered_orders AS (
  SELECT o_orderkey, o_custkey FROM orders
  WHERE o_comment NOT LIKE '%special%requests%'
),
c_orders AS (
  SELECT c.c_custkey, COUNT(f.o_orderkey) AS c_count
  FROM customer c
  LEFT JOIN filtered_orders f ON c.c_custkey = f.o_custkey
  GROUP BY c.c_custkey
)
SELECT c_count, COUNT(*) AS custdist
FROM c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC;

-- tpch: Q18
SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice,
       SUM(l.l_quantity) AS total_qty
FROM customer c
JOIN orders o ON c.c_custkey = o.o_custkey
JOIN lineitem l ON o.o_orderkey = l.l_orderkey
WHERE o.o_orderkey IN (
  SELECT l_orderkey FROM lineitem
  GROUP BY l_orderkey
  HAVING SUM(l_quantity) > 120
)
GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice
ORDER BY o.o_totalprice DESC, o.o_orderkey
LIMIT 10;

-- tpch: Q22
-- plan: Join(anti
SELECT c_nationkey, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
FROM customer c
WHERE c.c_acctbal > (
    SELECT AVG(c_acctbal) FROM customer WHERE c_acctbal > 0.0
  )
  AND NOT EXISTS (
    SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey
  )
GROUP BY c_nationkey
ORDER BY c_nationkey;
