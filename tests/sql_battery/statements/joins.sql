-- Joins: inner, left outer, multi-table, self joins, join + aggregation.

SELECT c.c_name, o.o_orderkey FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey ORDER BY o.o_orderkey LIMIT 40;
SELECT c.c_custkey, o.o_totalprice FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey ORDER BY o.o_totalprice DESC, c.c_custkey LIMIT 10;
SELECT o.o_orderkey, l.l_linenumber FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey ORDER BY o.o_orderkey, l.l_linenumber LIMIT 50;
SELECT c.c_mktsegment, COUNT(*) AS n FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey GROUP BY c.c_mktsegment ORDER BY c.c_mktsegment;
SELECT c.c_mktsegment, SUM(o.o_totalprice) AS volume FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey GROUP BY c.c_mktsegment ORDER BY c.c_mktsegment;
SELECT c.c_name, COUNT(*) AS n FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey GROUP BY c.c_name ORDER BY c.c_name;
SELECT c.c_name, o.o_orderkey, l.l_linenumber FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey JOIN lineitem l ON o.o_orderkey = l.l_orderkey ORDER BY o.o_orderkey, l.l_linenumber LIMIT 40;
SELECT c.c_mktsegment, SUM(l.l_quantity) AS qty FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey JOIN lineitem l ON o.o_orderkey = l.l_orderkey GROUP BY c.c_mktsegment ORDER BY c.c_mktsegment;
SELECT c.c_custkey, o.o_orderkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey ORDER BY c.c_custkey, o.o_orderkey LIMIT 60;
SELECT c.c_custkey FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey WHERE o.o_orderkey IS NULL ORDER BY c.c_custkey;
SELECT c.c_custkey, COUNT(o.o_orderkey) AS n FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey GROUP BY c.c_custkey ORDER BY c.c_custkey;
SELECT o.o_orderstatus, AVG(l.l_discount) AS mean_disc FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey GROUP BY o.o_orderstatus ORDER BY o.o_orderstatus;
SELECT a.o_orderkey, b.o_orderkey AS other FROM orders a JOIN orders b ON a.o_custkey = b.o_custkey WHERE a.o_orderkey < b.o_orderkey ORDER BY a.o_orderkey, b.o_orderkey LIMIT 50;
SELECT c.c_name, o.o_orderdate, o.o_orderkey FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey WHERE o.o_orderdate >= '1997-01-01' ORDER BY o.o_orderdate, o.o_orderkey LIMIT 30;
SELECT c.c_name, o.o_totalprice FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey WHERE c.c_mktsegment = 'BUILDING' AND o.o_orderstatus = 'O' ORDER BY o.o_totalprice, c.c_name;
SELECT o.o_orderpriority, COUNT(*) AS n FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey WHERE l.l_shipmode = 'AIR' GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority;
SELECT c.c_nationkey, COUNT(*) AS n FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey GROUP BY c.c_nationkey ORDER BY c.c_nationkey;
SELECT c.c_custkey, MAX(o.o_totalprice) AS biggest FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey GROUP BY c.c_custkey ORDER BY c.c_custkey;
SELECT l.l_shipmode, COUNT(*) AS n FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey WHERE o.o_orderstatus = 'F' GROUP BY l.l_shipmode ORDER BY l.l_shipmode;
SELECT c.c_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey JOIN lineitem l ON o.o_orderkey = l.l_orderkey GROUP BY c.c_name ORDER BY c.c_name;
SELECT o.o_orderkey, COUNT(*) AS lines FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey GROUP BY o.o_orderkey HAVING COUNT(*) >= 4 ORDER BY o.o_orderkey;
SELECT c.c_custkey, o.o_orderkey FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey WHERE c.c_acctbal < 0 ORDER BY c.c_custkey, o.o_orderkey;
SELECT c.c_mktsegment, MIN(o.o_orderdate) AS first_order FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey GROUP BY c.c_mktsegment ORDER BY c.c_mktsegment;
SELECT b.id, b.v, c.c_custkey FROM bucket b JOIN customer c ON b.id = c.c_custkey ORDER BY b.id;
