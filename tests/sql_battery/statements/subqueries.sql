-- Subqueries: scalar, IN/NOT IN, EXISTS/NOT EXISTS, correlated and not.

SELECT c_custkey FROM customer WHERE c_acctbal > (SELECT AVG(c_acctbal) FROM customer) ORDER BY c_custkey;
SELECT o_orderkey FROM orders WHERE o_totalprice > (SELECT AVG(o_totalprice) FROM orders) ORDER BY o_orderkey;
SELECT o_orderkey FROM orders WHERE o_totalprice = (SELECT MAX(o_totalprice) FROM orders) ORDER BY o_orderkey;
SELECT l_orderkey, l_linenumber FROM lineitem WHERE l_quantity = (SELECT MAX(l_quantity) FROM lineitem) ORDER BY l_orderkey, l_linenumber;
SELECT c_custkey FROM customer WHERE c_acctbal < (SELECT MIN(o_totalprice) FROM orders) ORDER BY c_custkey;
SELECT c_name, (SELECT MAX(o_totalprice) FROM orders) AS ceiling FROM customer ORDER BY c_name LIMIT 5;
SELECT o_orderkey, o_totalprice - (SELECT AVG(o_totalprice) FROM orders) AS delta FROM orders ORDER BY o_orderkey LIMIT 20;
-- plan: IN (
SELECT c_custkey FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders) ORDER BY c_custkey;
SELECT c_custkey FROM customer WHERE c_custkey NOT IN (SELECT o_custkey FROM orders) ORDER BY c_custkey;
SELECT o_orderkey FROM orders WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem WHERE l_quantity > 45) ORDER BY o_orderkey;
SELECT o_orderkey FROM orders WHERE o_custkey IN (SELECT c_custkey FROM customer WHERE c_mktsegment = 'BUILDING') ORDER BY o_orderkey;
SELECT o_orderkey FROM orders WHERE o_custkey NOT IN (SELECT c_custkey FROM customer WHERE c_acctbal < 0) ORDER BY o_orderkey;
SELECT l_orderkey, l_linenumber FROM lineitem WHERE l_orderkey IN (SELECT o_orderkey FROM orders WHERE o_orderpriority = '1-URGENT') ORDER BY l_orderkey, l_linenumber LIMIT 50;
SELECT c_custkey FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders WHERE o_totalprice > 30000) ORDER BY c_custkey;
SELECT c_custkey FROM customer WHERE c_nationkey IN (SELECT c_nationkey FROM customer WHERE c_acctbal > 9000) ORDER BY c_custkey;
-- Uncorrelated EXISTS: the probe collapses to a constant predicate.
SELECT c_custkey FROM customer WHERE EXISTS (SELECT 1 FROM orders WHERE o_totalprice > 30000) ORDER BY c_custkey;
SELECT c_custkey FROM customer WHERE NOT EXISTS (SELECT 1 FROM orders WHERE o_totalprice > 99999999) ORDER BY c_custkey;
SELECT o_orderkey FROM orders WHERE EXISTS (SELECT 1 FROM customer WHERE c_acctbal < -500) ORDER BY o_orderkey LIMIT 20;
-- Correlated EXISTS becomes a semi join.
-- plan: Join(semi
SELECT c_custkey FROM customer c WHERE EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey) ORDER BY c_custkey;
-- plan: Join(anti
SELECT c_custkey FROM customer c WHERE NOT EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey) ORDER BY c_custkey;
-- plan: Join(semi
SELECT o_orderkey FROM orders o WHERE EXISTS (SELECT 1 FROM lineitem l WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity > 45) ORDER BY o_orderkey;
-- plan: Join(anti
SELECT o_orderkey FROM orders o WHERE NOT EXISTS (SELECT 1 FROM lineitem l WHERE l.l_orderkey = o.o_orderkey AND l.l_discount > 0.08) ORDER BY o_orderkey;
-- plan: Join(semi
SELECT c_name FROM customer c WHERE EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey AND o.o_orderstatus = 'P') ORDER BY c_name;
SELECT c_name FROM customer c WHERE NOT EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey AND o.o_totalprice > 25000) ORDER BY c_name;
-- plan: Join(semi
SELECT c_custkey FROM customer c WHERE EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey AND o.o_orderdate >= '1997-01-01') ORDER BY c_custkey;
SELECT l_orderkey, l_linenumber FROM lineitem l WHERE EXISTS (SELECT 1 FROM orders o WHERE o.o_orderkey = l.l_orderkey AND o.o_orderstatus = 'F') ORDER BY l_orderkey, l_linenumber LIMIT 50;
-- Correlated IN is decorrelated the same way.
-- plan: Join(semi
SELECT c_custkey FROM customer c WHERE c_custkey IN (SELECT o_custkey FROM orders o WHERE o.o_custkey = c.c_custkey AND o.o_totalprice > 30000) ORDER BY c_custkey;
-- Subqueries nested inside subqueries.
SELECT c_custkey FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem WHERE l_quantity = 50)) ORDER BY c_custkey;
SELECT o_orderkey FROM orders WHERE o_custkey IN (SELECT c_custkey FROM customer WHERE c_acctbal > (SELECT AVG(c_acctbal) FROM customer)) ORDER BY o_orderkey;
-- Subqueries against aggregated/grouped inners.
SELECT c_custkey FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders GROUP BY o_custkey HAVING COUNT(*) > 8) ORDER BY c_custkey;
SELECT c_custkey FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders GROUP BY o_custkey HAVING SUM(o_totalprice) > 150000) ORDER BY c_custkey;
-- Subquery in HAVING.
SELECT o_custkey, COUNT(*) AS n FROM orders GROUP BY o_custkey HAVING COUNT(*) > (SELECT COUNT(*) FROM customer WHERE c_acctbal < 0) ORDER BY o_custkey;
-- Scalar subquery over a filtered inner.
SELECT c_custkey FROM customer WHERE c_acctbal > (SELECT AVG(c_acctbal) FROM customer WHERE c_mktsegment = 'FURNITURE') ORDER BY c_custkey;
SELECT o_orderkey FROM orders WHERE o_totalprice < (SELECT AVG(l_extendedprice) FROM lineitem WHERE l_returnflag = 'R') ORDER BY o_orderkey;
-- IN over dates.
SELECT o_orderkey FROM orders WHERE o_orderdate IN (SELECT l_shipdate FROM lineitem) ORDER BY o_orderkey;
-- EXISTS with the bucket table's NULLs in play.
SELECT b.id FROM bucket b WHERE EXISTS (SELECT 1 FROM customer c WHERE c.c_custkey = b.id) ORDER BY b.id;
SELECT b.id FROM bucket b WHERE NOT EXISTS (SELECT 1 FROM customer c WHERE c.c_custkey = b.v) ORDER BY b.id;
