-- WITH: single CTEs, multiple CTEs, chained references, CTEs in joins.

WITH big_orders AS (SELECT o_orderkey, o_custkey, o_totalprice FROM orders WHERE o_totalprice > 25000)
SELECT o_orderkey FROM big_orders ORDER BY o_orderkey;
WITH big_orders AS (SELECT o_orderkey, o_custkey, o_totalprice FROM orders WHERE o_totalprice > 25000)
SELECT COUNT(*) AS n FROM big_orders;
WITH building AS (SELECT c_custkey, c_name FROM customer WHERE c_mktsegment = 'BUILDING')
SELECT c_name FROM building ORDER BY c_name;
WITH urgent AS (SELECT o_orderkey FROM orders WHERE o_orderpriority = '1-URGENT')
SELECT l.l_orderkey, l.l_linenumber FROM lineitem l JOIN urgent u ON l.l_orderkey = u.o_orderkey ORDER BY l.l_orderkey, l.l_linenumber LIMIT 40;
WITH spend AS (SELECT o_custkey, SUM(o_totalprice) AS total FROM orders GROUP BY o_custkey)
SELECT o_custkey, total FROM spend ORDER BY o_custkey;
WITH spend AS (SELECT o_custkey, SUM(o_totalprice) AS total FROM orders GROUP BY o_custkey)
SELECT c.c_name, s.total FROM customer c JOIN spend s ON c.c_custkey = s.o_custkey ORDER BY c.c_name;
WITH spend AS (SELECT o_custkey, SUM(o_totalprice) AS total FROM orders GROUP BY o_custkey)
SELECT AVG(total) AS mean_spend FROM spend;
-- Two CTEs, the second built from the first.
WITH spend AS (SELECT o_custkey, SUM(o_totalprice) AS total FROM orders GROUP BY o_custkey),
     heavy AS (SELECT o_custkey FROM spend WHERE total > 150000)
SELECT o_custkey FROM heavy ORDER BY o_custkey;
WITH recent AS (SELECT o_orderkey, o_custkey FROM orders WHERE o_orderdate >= '1997-01-01'),
     recent_lines AS (SELECT l.l_orderkey, l.l_quantity FROM lineitem l JOIN recent r ON l.l_orderkey = r.o_orderkey)
SELECT SUM(l_quantity) AS qty FROM recent_lines;
-- The same CTE referenced twice.
WITH stats AS (SELECT o_custkey, COUNT(*) AS n FROM orders GROUP BY o_custkey)
SELECT a.o_custkey FROM stats a JOIN stats b ON a.n = b.n WHERE a.o_custkey < b.o_custkey ORDER BY a.o_custkey, b.o_custkey;
-- CTE consumed by an aggregate over a join.
WITH priced AS (SELECT l_orderkey, l_extendedprice * (1 - l_discount) AS net FROM lineitem)
SELECT o.o_orderstatus, SUM(p.net) AS revenue FROM orders o JOIN priced p ON o.o_orderkey = p.l_orderkey GROUP BY o.o_orderstatus ORDER BY o.o_orderstatus;
-- CTE + subquery mixing.
WITH rich AS (SELECT c_custkey FROM customer WHERE c_acctbal > 5000)
SELECT o_orderkey FROM orders WHERE o_custkey IN (SELECT c_custkey FROM rich) ORDER BY o_orderkey;
WITH open_orders AS (SELECT o_orderkey, o_custkey FROM orders WHERE o_orderstatus = 'O')
SELECT c_custkey FROM customer c WHERE EXISTS (SELECT 1 FROM open_orders o WHERE o.o_custkey = c.c_custkey) ORDER BY c_custkey;
-- CTE with DISTINCT, ORDER BY + LIMIT in the outer query.
WITH modes AS (SELECT DISTINCT l_shipmode FROM lineitem)
SELECT l_shipmode FROM modes ORDER BY l_shipmode;
WITH top_orders AS (SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 20000)
SELECT o_orderkey, o_totalprice FROM top_orders ORDER BY o_totalprice DESC, o_orderkey LIMIT 5;
-- CTE columns renamed via aliases inside the CTE body.
WITH renamed AS (SELECT c_custkey AS id, c_acctbal AS balance FROM customer)
SELECT id, balance FROM renamed WHERE balance > 0 ORDER BY id;
-- CTE over the nullable bucket table.
WITH grouped AS (SELECT grp, COUNT(*) AS n FROM bucket GROUP BY grp)
SELECT grp, n FROM grouped ORDER BY n, grp;
WITH valued AS (SELECT id, v FROM bucket WHERE v IS NOT NULL)
SELECT COUNT(*) AS n, SUM(v) AS total FROM valued;
-- Three chained CTEs.
WITH a AS (SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 10000),
     b AS (SELECT o_orderkey FROM a WHERE o_totalprice < 30000),
     c AS (SELECT COUNT(*) AS n FROM b)
SELECT n FROM c;
-- CTE feeding a window function.
WITH spend AS (SELECT o_custkey, SUM(o_totalprice) AS total FROM orders GROUP BY o_custkey)
SELECT o_custkey, RANK() OVER (ORDER BY total DESC) AS r FROM spend ORDER BY o_custkey;
