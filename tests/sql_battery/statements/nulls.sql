-- Three-valued logic: IN/NOT IN with NULLs, IS NULL, NULL-safe aggregates.
-- The bucket table has NULLs in both grp (every 9th) and v (every 5th).

SELECT id FROM bucket WHERE v IS NULL ORDER BY id;
SELECT id FROM bucket WHERE v IS NOT NULL ORDER BY id;
SELECT id FROM bucket WHERE grp IS NULL ORDER BY id;
-- NULL comparisons are UNKNOWN, so the row is rejected.
SELECT id FROM bucket WHERE v > 0 ORDER BY id;
SELECT id FROM bucket WHERE NOT (v > 0) ORDER BY id;
SELECT id FROM bucket WHERE v = v ORDER BY id;
-- IN lists with and without NULL members.
SELECT id FROM bucket WHERE v IN (1, 2, 3, 4, 5) ORDER BY id;
SELECT id FROM bucket WHERE v NOT IN (1, 2, 3, 4, 5) ORDER BY id;
SELECT id FROM bucket WHERE v IN (1, 2, NULL) ORDER BY id;
-- NOT IN over a list containing NULL matches nothing: x <> NULL is UNKNOWN.
SELECT id FROM bucket WHERE v NOT IN (1, 2, NULL) ORDER BY id;
-- IN (SELECT ...) where the subquery result contains NULLs.
SELECT c_custkey FROM customer WHERE c_custkey IN (SELECT v FROM bucket) ORDER BY c_custkey;
-- NOT IN against a NULL-containing set is empty, the classic trap.
SELECT c_custkey FROM customer WHERE c_custkey NOT IN (SELECT v FROM bucket) ORDER BY c_custkey;
-- Filtering the NULLs first restores the intuitive complement.
SELECT c_custkey FROM customer WHERE c_custkey NOT IN (SELECT v FROM bucket WHERE v IS NOT NULL) ORDER BY c_custkey;
-- IN against an empty subquery result is FALSE, not NULL.
SELECT c_custkey FROM customer WHERE c_custkey IN (SELECT v FROM bucket WHERE v > 9999) ORDER BY c_custkey;
SELECT c_custkey FROM customer WHERE c_custkey NOT IN (SELECT v FROM bucket WHERE v > 9999) ORDER BY c_custkey;
-- EXISTS ignores NULLs entirely: rows either match or they do not.
SELECT b.id FROM bucket b WHERE EXISTS (SELECT 1 FROM bucket o WHERE o.v = b.v) ORDER BY b.id;
SELECT b.id FROM bucket b WHERE NOT EXISTS (SELECT 1 FROM bucket o WHERE o.v = b.id) ORDER BY b.id;
-- Aggregates skip NULLs; COUNT(*) does not.
SELECT COUNT(*) AS all_rows, COUNT(v) AS with_value FROM bucket;
SELECT SUM(v) AS total, AVG(v) AS mean, MIN(v) AS lo, MAX(v) AS hi FROM bucket;
SELECT grp, COUNT(*) AS n, COUNT(v) AS vn FROM bucket GROUP BY grp ORDER BY n, vn;
-- NULLs form their own GROUP BY key.
SELECT grp, SUM(v) AS total FROM bucket GROUP BY grp ORDER BY total;
-- COALESCE picks the first non-NULL.
SELECT id, COALESCE(v, -1) AS filled FROM bucket ORDER BY id;
SELECT id, COALESCE(grp, 'none') AS g FROM bucket ORDER BY id;
-- CASE over NULL input takes the ELSE branch.
SELECT id, CASE WHEN v > 10 THEN 'big' WHEN v > 0 THEN 'small' ELSE 'other' END AS label FROM bucket ORDER BY id;
