-- Window functions: ranking, partitioned aggregates, running totals.
-- Oracle-compared statements keep ORDER BY keys NOT NULL (our windows
-- order NULLs last, sqlite orders them first) and give ROW_NUMBER a
-- total order so ties cannot flip.

-- plan: Window(
SELECT o_orderkey, ROW_NUMBER() OVER (ORDER BY o_orderkey) AS rn FROM orders ORDER BY o_orderkey LIMIT 30;
SELECT o_orderkey, ROW_NUMBER() OVER (ORDER BY o_totalprice DESC, o_orderkey) AS rn FROM orders ORDER BY o_orderkey LIMIT 30;
SELECT c_custkey, ROW_NUMBER() OVER (ORDER BY c_acctbal, c_custkey) AS rn FROM customer ORDER BY c_custkey;
SELECT c_custkey, ROW_NUMBER() OVER (PARTITION BY c_mktsegment ORDER BY c_acctbal DESC, c_custkey) AS rn FROM customer ORDER BY c_custkey;
SELECT o_orderkey, ROW_NUMBER() OVER (PARTITION BY o_custkey ORDER BY o_orderdate, o_orderkey) AS seq FROM orders ORDER BY o_orderkey;
-- plan: Window(
SELECT c_custkey, RANK() OVER (ORDER BY c_mktsegment) AS r FROM customer ORDER BY c_custkey;
SELECT o_orderkey, RANK() OVER (ORDER BY o_orderstatus) AS r FROM orders ORDER BY o_orderkey LIMIT 40;
SELECT o_orderkey, RANK() OVER (PARTITION BY o_orderstatus ORDER BY o_totalprice DESC) AS r FROM orders ORDER BY o_orderkey LIMIT 40;
SELECT c_custkey, DENSE_RANK() OVER (ORDER BY c_mktsegment) AS dr FROM customer ORDER BY c_custkey;
SELECT o_orderkey, DENSE_RANK() OVER (ORDER BY o_orderpriority) AS dr FROM orders ORDER BY o_orderkey LIMIT 40;
SELECT l_orderkey, l_linenumber, DENSE_RANK() OVER (PARTITION BY l_returnflag ORDER BY l_quantity) AS dr FROM lineitem ORDER BY l_orderkey, l_linenumber LIMIT 50;
-- Partition-wide aggregates (no ORDER BY in the window).
-- plan: BatchWindow
SELECT c_custkey, COUNT(*) OVER () AS total FROM customer ORDER BY c_custkey;
SELECT c_custkey, COUNT(*) OVER (PARTITION BY c_mktsegment) AS seg_size FROM customer ORDER BY c_custkey;
SELECT c_custkey, SUM(c_acctbal) OVER (PARTITION BY c_mktsegment) AS seg_total FROM customer ORDER BY c_custkey;
SELECT c_custkey, AVG(c_acctbal) OVER (PARTITION BY c_mktsegment) AS seg_mean FROM customer ORDER BY c_custkey;
SELECT c_custkey, MIN(c_acctbal) OVER (PARTITION BY c_mktsegment) AS seg_lo, MAX(c_acctbal) OVER (PARTITION BY c_mktsegment) AS seg_hi FROM customer ORDER BY c_custkey;
SELECT o_orderkey, SUM(o_totalprice) OVER (PARTITION BY o_custkey) AS cust_total FROM orders ORDER BY o_orderkey LIMIT 40;
SELECT o_orderkey, COUNT(*) OVER (PARTITION BY o_custkey) AS cust_orders FROM orders ORDER BY o_orderkey LIMIT 40;
SELECT l_orderkey, l_linenumber, SUM(l_quantity) OVER (PARTITION BY l_orderkey) AS order_qty FROM lineitem ORDER BY l_orderkey, l_linenumber LIMIT 50;
SELECT l_orderkey, l_linenumber, MAX(l_extendedprice) OVER (PARTITION BY l_shipmode) AS mode_max FROM lineitem ORDER BY l_orderkey, l_linenumber LIMIT 50;
-- Running (peers-inclusive) aggregates: ORDER BY inside the window.
SELECT o_orderkey, SUM(o_totalprice) OVER (ORDER BY o_orderkey) AS running FROM orders ORDER BY o_orderkey LIMIT 40;
SELECT o_orderkey, COUNT(*) OVER (ORDER BY o_orderkey) AS seen FROM orders ORDER BY o_orderkey LIMIT 40;
SELECT c_custkey, SUM(c_acctbal) OVER (ORDER BY c_custkey) AS running FROM customer ORDER BY c_custkey;
SELECT c_custkey, MIN(c_acctbal) OVER (ORDER BY c_custkey) AS running_lo FROM customer ORDER BY c_custkey;
SELECT c_custkey, MAX(c_acctbal) OVER (ORDER BY c_custkey) AS running_hi FROM customer ORDER BY c_custkey;
SELECT o_orderkey, SUM(o_totalprice) OVER (PARTITION BY o_custkey ORDER BY o_orderdate, o_orderkey) AS cust_running FROM orders ORDER BY o_orderkey;
SELECT o_orderkey, AVG(o_totalprice) OVER (PARTITION BY o_orderstatus ORDER BY o_orderkey) AS status_mean FROM orders ORDER BY o_orderkey LIMIT 40;
SELECT l_orderkey, l_linenumber, COUNT(*) OVER (PARTITION BY l_orderkey ORDER BY l_linenumber) AS line_seq FROM lineitem ORDER BY l_orderkey, l_linenumber LIMIT 50;
-- Peers share the running value: a tied ORDER BY key is a single frame step.
SELECT o_orderkey, SUM(o_totalprice) OVER (ORDER BY o_orderstatus) AS by_status FROM orders ORDER BY o_orderkey LIMIT 40;
-- Multiple windows in one SELECT.
SELECT c_custkey, ROW_NUMBER() OVER (ORDER BY c_acctbal DESC, c_custkey) AS rn, SUM(c_acctbal) OVER (PARTITION BY c_mktsegment) AS seg_total FROM customer ORDER BY c_custkey;
SELECT o_orderkey, RANK() OVER (ORDER BY o_totalprice DESC) AS price_rank, COUNT(*) OVER (PARTITION BY o_orderstatus) AS status_n FROM orders ORDER BY o_orderkey LIMIT 40;
-- Windows over expressions and with WHERE filtering first.
SELECT o_orderkey, SUM(o_totalprice) OVER (PARTITION BY YEAR(o_orderdate)) AS year_total FROM orders ORDER BY o_orderkey LIMIT 40;
SELECT o_orderkey, RANK() OVER (ORDER BY o_totalprice DESC) AS r FROM orders WHERE o_orderstatus = 'O' ORDER BY o_orderkey;
SELECT c_custkey, ROW_NUMBER() OVER (PARTITION BY c_nationkey ORDER BY c_custkey) AS nation_seq FROM customer WHERE c_acctbal > 0 ORDER BY c_custkey;
-- Window output consumed by the outer ORDER BY.
SELECT c_custkey, ROW_NUMBER() OVER (ORDER BY c_acctbal DESC, c_custkey) AS rn FROM customer ORDER BY rn LIMIT 10;
-- Window over a nullable ORDER BY key: ours sorts NULLs last, sqlite first.
-- no-oracle: NULL ordering differs from sqlite (NULLs last vs first)
SELECT id, SUM(v) OVER (ORDER BY v) AS running FROM bucket ORDER BY id;
SELECT id, COUNT(v) OVER (PARTITION BY grp) AS grp_values FROM bucket WHERE grp IS NOT NULL ORDER BY id;
