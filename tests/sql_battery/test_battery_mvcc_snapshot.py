"""The battery, re-run at a held MVCC epoch while a writer guts the data.

A session pins a snapshot (``hold_snapshot``), baselines every read-only
battery statement, then a second session deletes **every row of every
table** — committing once per table. Re-running the battery through the
pinned session must reproduce the baseline *exactly*: the held epoch is
a complete, immutable view of the database, statement by statement,
across joins, aggregates, CTEs, subqueries, windows and the adapted
TPC-H queries. Releasing the snapshot makes the destruction visible.
"""

from __future__ import annotations

import pytest

from repro.bench.tpch_tiny import SCHEMAS, build_tpch_tiny
from repro.concurrency import ConcurrentDatabase

from .battery_lib import load_statements, normalize_rows

STATEMENTS = load_statements()


@pytest.fixture(scope="module")
def snapshot_world():
    """(reader session, per-statement baselines) after the writer's purge."""
    cdb = ConcurrentDatabase(build_tpch_tiny())
    reader = cdb.session("battery-reader")
    reader.hold_snapshot()
    baselines = {
        s.source: normalize_rows(reader.sql(s.sql).rows, 6) for s in STATEMENTS
    }
    with cdb.session("battery-writer") as writer:
        for table in SCHEMAS:
            writer.sql(f"DELETE FROM {table}")
        for table in SCHEMAS:
            assert writer.sql(f"SELECT COUNT(*) AS n FROM {table}").scalar() == 0
    yield reader, baselines
    cdb.close()


@pytest.mark.parametrize("statement", STATEMENTS, ids=[s.source for s in STATEMENTS])
def test_statement_at_held_epoch(statement, snapshot_world):
    reader, baselines = snapshot_world
    rows = normalize_rows(reader.sql(statement.sql).rows, 6)
    assert rows == baselines[statement.source], (
        f"{statement.source}: held-epoch result drifted after writer commits"
    )


def test_release_makes_the_purge_visible(snapshot_world):
    reader, _ = snapshot_world
    reader.release_snapshot()
    for table in SCHEMAS:
        assert reader.sql(f"SELECT COUNT(*) AS n FROM {table}").scalar() == 0
