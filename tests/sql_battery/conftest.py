"""Session fixtures for the SQL battery: one engine DB, one sqlite oracle."""

from __future__ import annotations

import pytest

from repro.bench.tpch_tiny import SCHEMAS, build_tpch_tiny, generate_tpch_tiny

from .battery_lib import build_oracle


@pytest.fixture(scope="session")
def battery_db():
    return build_tpch_tiny()


@pytest.fixture(scope="session")
def oracle():
    conn = build_oracle(SCHEMAS, generate_tpch_tiny())
    yield conn
    conn.close()
