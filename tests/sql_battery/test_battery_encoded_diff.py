"""Differential battery: encoded-space execution on vs off.

Every battery statement runs twice on the same database — once with
encoded-space evaluation and aggregation enabled, once fully decoded —
and the rows must match **exactly** (no float rounding): the compressed
paths are required to be bit-identical, not merely close. Rows are
sorted first because code-order group discovery may legitimately emit
groups in a different order than row-order discovery.
"""

from __future__ import annotations

import pytest

from .battery_lib import load_statements

STATEMENTS = [s for s in load_statements() if not s.sql.lstrip().upper().startswith("EXPLAIN")]


def _ids():
    return [s.source for s in STATEMENTS]


def _sort_key(row):
    return tuple((v is None, str(type(v)), 0 if v is None else v) for v in row)


@pytest.mark.parametrize("statement", STATEMENTS, ids=_ids())
def test_encoded_matches_decoded(statement, battery_db):
    encoded = battery_db.sql(
        statement.sql, mode="batch", enable_encoded_eval=True, enable_encoded_agg=True
    ).rows
    decoded = battery_db.sql(
        statement.sql, mode="batch", enable_encoded_eval=False, enable_encoded_agg=False
    ).rows
    assert sorted(encoded, key=_sort_key) == sorted(decoded, key=_sort_key), (
        f"{statement.source}: encoded-space execution changed the result"
    )
