"""Loader and comparison helpers for the differential SQL battery.

Statements live in ``statements/*.sql``, one file per feature area. A
statement runs until a line ending in ``;``. Directive comments attach
to the *next* statement:

* ``-- plan: <substring>`` — the EXPLAIN text must contain the substring
  (repeatable).
* ``-- no-oracle: <reason>`` — skip the sqlite comparison (dialect or
  semantics difference; the reason is kept for reporting).
* ``-- tpch: <Qn>`` — marks an adapted TPC-H query for the coverage
  floor.

Every statement is checked three ways by ``test_battery.py``: EXPLAIN
produces a plan (with the expected markers), the batch and row engines
agree, and — unless opted out — the rows match sqlite on the same data.
"""

from __future__ import annotations

import datetime
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

from repro.types import TypeKind

STATEMENTS_DIR = Path(__file__).parent / "statements"


@dataclass
class Statement:
    sql: str
    source: str  # "<file>:<index>"
    plan_markers: list[str] = field(default_factory=list)
    no_oracle: str | None = None  # reason, when oracle comparison is off
    tpch: str | None = None  # "Q13" etc for adapted TPC-H queries


def load_statements() -> list[Statement]:
    statements: list[Statement] = []
    for path in sorted(STATEMENTS_DIR.glob("*.sql")):
        statements.extend(_load_file(path))
    return statements


def _load_file(path: Path) -> list[Statement]:
    statements: list[Statement] = []
    markers: list[str] = []
    no_oracle: str | None = None
    tpch: str | None = None
    lines: list[str] = []
    for raw in path.read_text().splitlines():
        line = raw.rstrip()
        stripped = line.strip()
        if stripped.startswith("--"):
            directive = stripped[2:].strip()
            if directive.startswith("plan:"):
                markers.append(directive[len("plan:"):].strip())
            elif directive.startswith("no-oracle:"):
                no_oracle = directive[len("no-oracle:"):].strip()
            elif directive.startswith("tpch:"):
                tpch = directive[len("tpch:"):].strip()
            continue
        if not stripped:
            continue
        lines.append(line)
        if stripped.endswith(";"):
            sql = "\n".join(lines).rstrip().rstrip(";")
            statements.append(
                Statement(
                    sql=sql,
                    source=f"{path.stem}:{len(statements):03d}",
                    plan_markers=markers,
                    no_oracle=no_oracle,
                    tpch=tpch,
                )
            )
            markers, no_oracle, tpch, lines = [], None, None, []
    if lines:
        raise ValueError(f"{path}: trailing statement without terminating ';'")
    return statements


# ---------------------------------------------------------------------- #
# Row normalization: make engine and oracle outputs comparable
# ---------------------------------------------------------------------- #
def normalize_rows(rows, ndigits: int) -> list[tuple]:
    """Sorted, type-flattened rows: dates->ISO, numbers->rounded float."""
    out = []
    for row in rows:
        norm = []
        for value in row:
            if isinstance(value, bool):
                value = float(int(value))
            elif isinstance(value, (datetime.date, datetime.datetime)):
                value = value.isoformat()[:10]
            elif isinstance(value, (int, float)):
                value = round(float(value), ndigits)
            norm.append(value)
        out.append(tuple(norm))
    out.sort(key=lambda r: tuple((x is None, str(type(x)), x) for x in r))
    return out


# ---------------------------------------------------------------------- #
# The sqlite oracle
# ---------------------------------------------------------------------- #
_SQLITE_TYPES = {
    TypeKind.INT: "INTEGER",
    TypeKind.BIGINT: "INTEGER",
    TypeKind.BOOL: "INTEGER",
    TypeKind.FLOAT: "REAL",
    TypeKind.DECIMAL: "REAL",
    TypeKind.VARCHAR: "TEXT",
    TypeKind.DATE: "TEXT",  # ISO-8601 strings compare like dates
}


def build_oracle(schemas: dict, data: dict[str, list[tuple]]) -> sqlite3.Connection:
    """An in-memory sqlite database holding the same logical data."""
    conn = sqlite3.connect(":memory:")
    conn.create_function("year", 1, lambda s: None if s is None else int(s[:4]))
    conn.create_function("month", 1, lambda s: None if s is None else int(s[5:7]))
    conn.create_function("day", 1, lambda s: None if s is None else int(s[8:10]))
    for name, table_schema in schemas.items():
        columns = ", ".join(
            f"{col.name} {_SQLITE_TYPES[col.dtype.kind]}"
            for col in table_schema.columns
        )
        conn.execute(f"CREATE TABLE {name} ({columns})")
        width = len(table_schema.columns)
        holes = ", ".join("?" * width)
        conn.executemany(f"INSERT INTO {name} VALUES ({holes})", data[name])
    conn.commit()
    return conn
