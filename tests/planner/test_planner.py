"""Tests for the optimizer: pushdown, pruning, join sides, bitmaps, modes."""

import pytest

from repro import Database, StoreConfig, schema, types
from repro.exec.expressions import And, Comparison, col, lit
from repro.exec.operators.hash_aggregate import agg, count_star
from repro.exec.operators.hash_join import BatchHashJoin
from repro.exec.operators.scan import ColumnStoreScan
from repro.planner.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.planner.rules import push_filters, prune_columns
from repro.planner.schema_infer import infer_output_dtypes


@pytest.fixture
def db():
    database = Database(
        StoreConfig(rowgroup_size=100, bulk_load_threshold=50, delta_close_rows=100)
    )
    fact = schema(
        ("id", types.INT, False),
        ("cust_id", types.INT, False),
        ("amount", types.FLOAT),
    )
    dim = schema(("cid", types.INT, False), ("region", types.VARCHAR))
    database.create_table("fact", fact)
    database.create_table("dim", dim)
    database.bulk_load(
        "fact", [(i, i % 20, float(i)) for i in range(400)]
    )
    database.bulk_load("dim", [(i, f"r{i % 4}") for i in range(20)])
    return database


def scan_of(db, table, cols):
    return db.scan_plan(table, cols)


class TestPushdown:
    def test_filter_merges_into_scan(self, db):
        plan = LogicalFilter(
            scan_of(db, "fact", ["id", "amount"]),
            Comparison(">", col("amount"), lit(10.0)),
        )
        optimized = push_filters(plan)
        assert isinstance(optimized, LogicalScan)
        assert optimized.predicate is not None

    def test_conjuncts_split_across_join(self, db):
        join = LogicalJoin(
            scan_of(db, "fact", ["id", "cust_id"]),
            scan_of(db, "dim", ["cid", "region"]),
            ["cust_id"],
            ["cid"],
        )
        predicate = And(
            Comparison(">", col("id"), lit(5)),
            Comparison("=", col("region"), lit("r1")),
        )
        optimized = push_filters(LogicalFilter(join, predicate))
        assert isinstance(optimized, LogicalJoin)
        assert optimized.left.predicate is not None
        assert optimized.right.predicate is not None

    def test_cross_table_conjunct_stays(self, db):
        join = LogicalJoin(
            scan_of(db, "fact", ["id", "cust_id"]),
            scan_of(db, "dim", ["cid", "region"]),
            ["cust_id"],
            ["cid"],
        )
        predicate = Comparison("<", col("id"), col("cid"))
        optimized = push_filters(LogicalFilter(join, predicate))
        assert isinstance(optimized, LogicalFilter)

    def test_left_join_does_not_push_to_null_side(self, db):
        join = LogicalJoin(
            scan_of(db, "fact", ["id", "cust_id"]),
            scan_of(db, "dim", ["cid", "region"]),
            ["cust_id"],
            ["cid"],
            join_type="left",
        )
        predicate = Comparison("=", col("region"), lit("r1"))
        optimized = push_filters(LogicalFilter(join, predicate))
        assert isinstance(optimized, LogicalFilter)
        assert optimized.child.right.predicate is None


class TestPruning:
    def test_scan_trimmed_to_needed(self, db):
        plan = LogicalProject(
            scan_of(db, "fact", ["id", "cust_id", "amount"]),
            [("id", col("id"))],
        )
        pruned = prune_columns(plan)
        assert list(pruned.child.projections) == ["id"]

    def test_predicate_columns_retained(self, db):
        scan = scan_of(db, "fact", ["id", "cust_id", "amount"])
        scan.predicate = Comparison(">", col("amount"), lit(1.0))
        plan = LogicalProject(scan, [("id", col("id"))])
        pruned = prune_columns(plan)
        assert set(pruned.child.projections) == {"id", "amount"}

    def test_join_keys_retained(self, db):
        join = LogicalJoin(
            scan_of(db, "fact", ["id", "cust_id", "amount"]),
            scan_of(db, "dim", ["cid", "region"]),
            ["cust_id"],
            ["cid"],
        )
        plan = LogicalProject(join, [("region", col("region"))])
        pruned = prune_columns(plan)
        assert set(pruned.child.left.projections) == {"cust_id"}
        assert set(pruned.child.right.projections) == {"cid", "region"}


class TestJoinSides:
    def test_smaller_side_becomes_build(self, db):
        # fact (400) joined with dim (20): dim must end up on the right.
        join = LogicalJoin(
            scan_of(db, "dim", ["cid", "region"]),
            scan_of(db, "fact", ["id", "cust_id"]),
            ["cid"],
            ["cust_id"],
        )
        plan = db.optimizer.optimize(
            LogicalProject(join, [("region", col("region")), ("id", col("id"))])
        )
        join_node = plan.child
        assert join_node.right.table == "dim"

    def test_bitmap_placed_for_star_join(self, db):
        join = LogicalJoin(
            scan_of(db, "fact", ["id", "cust_id"]),
            scan_of(db, "dim", ["cid", "region"]),
            ["cust_id"],
            ["cid"],
        )
        plan = db.optimizer.optimize(
            LogicalProject(join, [("id", col("id"))])
        )
        assert plan.child.use_bitmap is True


class TestPhysicalModes:
    def make_plan(self, db):
        return LogicalProject(
            scan_of(db, "fact", ["id", "amount"]), [("id", col("id"))]
        )

    def test_auto_uses_batch_for_columnstore(self, db):
        plan = db.compile(self.make_plan(db))
        assert plan.mode == "batch"

    def test_row_mode_forced(self, db):
        plan = db.compile(self.make_plan(db), mode="row")
        assert plan.mode == "row"
        rows = list(plan.rows())
        assert len(rows) == 400

    def test_rowstore_table_defaults_to_row_mode(self, db):
        db.create_table(
            "rs", schema(("a", types.INT, False)), storage="rowstore"
        )
        db.insert("rs", [(1,), (2,)])
        plan = db.compile(LogicalProject(db.scan_plan("rs"), [("a", col("a"))]))
        assert plan.mode == "row"

    def test_mixed_join_promotes_to_batch(self, db):
        db.create_table("rdim", schema(("cid", types.INT, False)), storage="rowstore")
        db.insert("rdim", [(i,) for i in range(20)])
        join = LogicalJoin(
            scan_of(db, "fact", ["id", "cust_id"]),
            db.scan_plan("rdim"),
            ["cust_id"],
            ["cid"],
        )
        plan = db.compile(LogicalProject(join, [("id", col("id"))]))
        assert plan.mode == "batch"
        assert len(list(plan.rows())) == 400

    def test_bitmap_wired_into_scan(self, db):
        join = LogicalJoin(
            scan_of(db, "fact", ["id", "cust_id"]),
            scan_of(db, "dim", ["cid", "region"]),
            ["cust_id"],
            ["cid"],
        )
        physical = db.compile(LogicalProject(join, [("id", col("id"))]))
        assert isinstance(physical.root.child_operators()[0], BatchHashJoin)
        join_op = physical.root.child_operators()[0]
        assert join_op.bitmap_target is not None
        rows = list(physical.rows())
        assert len(rows) == 400
        # After execution, the probe scan shard(s) must have seen the bitmap.
        assert isinstance(join_op.bitmap_target, list)
        assert all(isinstance(s, ColumnStoreScan) for s in join_op.bitmap_target)
        assert all(s.bitmap_probes for s in join_op.bitmap_target)

    def test_disable_bitmaps(self, db):
        join = LogicalJoin(
            scan_of(db, "fact", ["id", "cust_id"]),
            scan_of(db, "dim", ["cid", "region"]),
            ["cust_id"],
            ["cid"],
        )
        physical = db.compile(
            LogicalProject(join, [("id", col("id"))]), enable_bitmaps=False
        )
        join_op = physical.root.child_operators()[0]
        assert join_op.bitmap_target is None


class TestEstimation:
    def test_scan_estimate_uses_stats(self, db):
        scan = scan_of(db, "fact", ["id", "cust_id"])
        base = db.optimizer.estimate_rows(scan)
        assert base == 400
        scan.predicate = Comparison("=", col("cust_id"), lit(3))
        filtered = db.optimizer.estimate_rows(scan)
        assert filtered < base

    def test_join_estimate(self, db):
        join = LogicalJoin(
            scan_of(db, "fact", ["id", "cust_id"]),
            scan_of(db, "dim", ["cid", "region"]),
            ["cust_id"],
            ["cid"],
        )
        estimate = db.optimizer.estimate_rows(join)
        assert 100 <= estimate <= 1600  # true value is 400

    def test_aggregate_estimate_capped_by_child(self, db):
        plan = LogicalAggregate(
            scan_of(db, "fact", ["cust_id"]), ["cust_id"], [count_star("n")]
        )
        assert db.optimizer.estimate_rows(plan) <= 400

    def test_limit_estimate(self, db):
        plan = LogicalLimit(scan_of(db, "fact", ["id"]), 7)
        assert db.optimizer.estimate_rows(plan) == 7


class TestTypeInference:
    def test_scan_types(self, db):
        dtypes = infer_output_dtypes(scan_of(db, "fact", ["id", "amount"]), db.catalog)
        assert dtypes["id"] == types.INT
        assert dtypes["amount"] == types.FLOAT

    def test_aggregate_types(self, db):
        plan = LogicalAggregate(
            scan_of(db, "fact", ["cust_id", "id", "amount"]),
            ["cust_id"],
            [count_star("n"), agg("sum", "id", "s"), agg("avg", "amount", "m")],
        )
        dtypes = infer_output_dtypes(plan, db.catalog)
        assert dtypes["n"] == types.BIGINT
        assert dtypes["s"] == types.BIGINT  # INT sums widen
        assert dtypes["m"] == types.FLOAT
