"""Tests for statistics: selectivity heuristics and segment histograms."""

import pytest

from repro import Database, StoreConfig, schema, types
from repro.exec.expressions import (
    Between,
    Comparison,
    InList,
    IsNull,
    Like,
    Not,
    Or,
    col,
    lit,
)
from repro.planner.stats import (
    ColumnStats,
    Histogram,
    HistogramBucket,
    TableStats,
    join_cardinality,
    selectivity,
)


def stats_with(name, **kwargs):
    return TableStats(row_count=1000, columns={name: ColumnStats(**kwargs)})


class TestSelectivityHeuristics:
    def test_no_predicate(self):
        assert selectivity(None, TableStats()) == 1.0

    def test_equality_uses_ndv(self):
        stats = stats_with("a", ndv=50)
        assert selectivity(Comparison("=", col("a"), lit(3)), stats) == pytest.approx(0.02)

    def test_inequality_complements(self):
        stats = stats_with("a", ndv=4)
        assert selectivity(Comparison("!=", col("a"), lit(3)), stats) == pytest.approx(0.75)

    def test_range_interpolates(self):
        stats = stats_with("a", min_value=0, max_value=100)
        estimate = selectivity(Comparison("<", col("a"), lit(25)), stats)
        assert estimate == pytest.approx(0.25)

    def test_in_list_scales_with_ndv(self):
        stats = stats_with("a", ndv=10)
        assert selectivity(InList(col("a"), [1, 2]), stats) == pytest.approx(0.2)

    def test_is_null_uses_null_fraction(self):
        stats = stats_with("a", null_fraction=0.3)
        assert selectivity(IsNull(col("a")), stats) == pytest.approx(0.3)
        assert selectivity(IsNull(col("a"), negated=True), stats) == pytest.approx(0.7)

    def test_not_complements(self):
        stats = stats_with("a", ndv=10)
        estimate = selectivity(Not(Comparison("=", col("a"), lit(1))), stats)
        assert estimate == pytest.approx(0.9)

    def test_or_combines_independently(self):
        stats = stats_with("a", ndv=10)
        estimate = selectivity(
            Or(Comparison("=", col("a"), lit(1)), Comparison("=", col("a"), lit(2))),
            stats,
        )
        assert estimate == pytest.approx(1 - 0.9 * 0.9)

    def test_conjunction_multiplies(self):
        stats = TableStats(
            row_count=1000,
            columns={"a": ColumnStats(ndv=10), "b": ColumnStats(ndv=10)},
        )
        from repro.exec.expressions import And

        estimate = selectivity(
            And(Comparison("=", col("a"), lit(1)), Comparison("=", col("b"), lit(2))),
            stats,
        )
        assert estimate == pytest.approx(0.01)

    def test_like_default(self):
        assert selectivity(Like(col("s"), "x%"), TableStats()) == pytest.approx(0.1)

    def test_join_cardinality(self):
        assert join_cardinality(1000, 100, 100, 50) == pytest.approx(1000)
        assert join_cardinality(10, 10, None, None) == pytest.approx(10)


class TestHistogram:
    def make_histogram(self):
        # Skewed: 900 rows in [0, 10], 100 rows in [10, 100].
        return Histogram(
            buckets=[
                HistogramBucket(0, 10, 900),
                HistogramBucket(10, 100, 100),
            ]
        )

    def test_range_fraction_respects_skew(self):
        hist = self.make_histogram()
        low_end = hist.range_fraction(0, 10)
        high_end = hist.range_fraction(50, 100)
        assert low_end > 0.85
        assert high_end < 0.1

    def test_unbounded_ends(self):
        hist = self.make_histogram()
        assert hist.range_fraction(None, None) == pytest.approx(1.0)
        assert hist.range_fraction(100, None) < 0.02

    def test_point_bucket(self):
        hist = Histogram(buckets=[HistogramBucket(5, 5, 10)])
        assert hist.range_fraction(5, 5) == pytest.approx(1.0)
        assert hist.range_fraction(6, 9) == 0.0

    def test_empty(self):
        assert Histogram().range_fraction(0, 1) == pytest.approx(1 / 3)

    def test_string_buckets_all_or_nothing(self):
        hist = Histogram(buckets=[HistogramBucket("a", "m", 50), HistogramBucket("n", "z", 50)])
        assert hist.range_fraction("a", "m") == pytest.approx(0.5)
        assert hist.range_fraction(None, None) == pytest.approx(1.0)

    def test_histogram_beats_uniform_on_skew(self):
        """The estimator with histogram must out-predict min/max-only."""
        uniform = ColumnStats(min_value=0, max_value=100)
        with_hist = ColumnStats(min_value=0, max_value=100, histogram=self.make_histogram())
        stats_uniform = TableStats(row_count=1000, columns={"a": uniform})
        stats_hist = TableStats(row_count=1000, columns={"a": with_hist})
        predicate = Between(col("a"), lit(0), lit(10))
        true_fraction = 0.9  # by construction
        uniform_est = selectivity(predicate, stats_uniform)
        hist_est = selectivity(predicate, stats_hist)
        assert abs(hist_est - true_fraction) < abs(uniform_est - true_fraction)


class TestHistogramFromSegments:
    def test_columnstore_stats_include_histogram(self):
        db = Database(StoreConfig(rowgroup_size=100, bulk_load_threshold=50))
        db.create_table("t", schema(("a", types.INT, False)))
        # Date-ordered-like data: each row group covers a narrow range.
        db.bulk_load("t", [(i,) for i in range(400)])
        stats = db.table("t").stats()
        hist = stats.columns["a"].histogram
        assert hist is not None
        assert len(hist.buckets) == 4  # one per row group
        # Narrow range falls in one bucket -> ~25% of rows.
        assert hist.range_fraction(0, 99) == pytest.approx(0.25, abs=0.02)

    def test_estimate_improves_on_clustered_data(self):
        db = Database(StoreConfig(rowgroup_size=100, bulk_load_threshold=50))
        db.create_table("t", schema(("a", types.INT, False)))
        # 90% of values in [0, 10], clustered, then a tail in [0, 1000].
        rows = [(i % 10,) for i in range(360)] + [(i * 25,) for i in range(40)]
        db.bulk_load("t", rows)
        plan = db.scan_plan("t")
        plan.predicate = Between(col("a"), lit(0), lit(10))
        estimate = db.optimizer.estimate_rows(plan)
        true_count = sum(1 for (v,) in rows if 0 <= v <= 10)
        # Uniform min/max estimate would be ~ 400 * 11/1000 = 4.4 rows —
        # badly wrong; the histogram should land within 2x of truth.
        assert true_count / 2 <= estimate <= true_count * 2


class TestBetweenRangeFraction:
    """Regressions for `_range_fraction_between` guard and clamping bugs."""

    def test_between_interpolates(self):
        stats = stats_with("a", min_value=0, max_value=100)
        estimate = selectivity(Between(col("a"), lit(10), lit(35)), stats)
        assert estimate == pytest.approx(0.25)

    def test_string_high_bound_falls_back_to_default(self):
        # min_value numeric but max_value a string used to reach float()
        # and raise-or-misestimate; both bounds must be guarded like in
        # `_range_fraction`.
        from repro.planner.stats import RANGE_DEFAULT_SELECTIVITY

        stats = stats_with("a", min_value=0, max_value="zzz")
        estimate = selectivity(Between(col("a"), lit(1), lit(2)), stats)
        assert estimate == pytest.approx(RANGE_DEFAULT_SELECTIVITY)

    def test_string_low_bound_falls_back_to_default(self):
        from repro.planner.stats import RANGE_DEFAULT_SELECTIVITY

        stats = stats_with("a", min_value="aaa", max_value="zzz")
        estimate = selectivity(Between(col("a"), lit("b"), lit("c")), stats)
        assert estimate == pytest.approx(RANGE_DEFAULT_SELECTIVITY)

    def test_between_clamped_to_column_domain(self):
        # BETWEEN -1000 AND 2000 over [0, 100] covers the whole column,
        # not 30x of it; the raw width must be clamped to the overlap.
        stats = stats_with("a", min_value=0, max_value=100)
        estimate = selectivity(Between(col("a"), lit(-1000), lit(2000)), stats)
        assert estimate == pytest.approx(1.0)

    def test_between_partial_overlap_clamps_low_end(self):
        # [-50, 50] overlaps [0, 100] in [0, 50] -> 50%, not 100/100.
        stats = stats_with("a", min_value=0, max_value=100)
        estimate = selectivity(Between(col("a"), lit(-50), lit(50)), stats)
        assert estimate == pytest.approx(0.5)

    def test_between_fully_outside_domain_is_zero(self):
        stats = stats_with("a", min_value=0, max_value=100)
        estimate = selectivity(Between(col("a"), lit(500), lit(600)), stats)
        assert estimate == pytest.approx(0.0, abs=1e-6)

    def test_inverted_between_is_zero(self):
        stats = stats_with("a", min_value=0, max_value=100)
        estimate = selectivity(Between(col("a"), lit(60), lit(40)), stats)
        assert estimate == pytest.approx(0.0, abs=1e-6)
