"""Tests for the row-store index-seek access path."""

import pytest

from repro import Database, schema, types


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "orders",
        schema(("id", types.INT, False), ("cust", types.VARCHAR), ("v", types.FLOAT)),
        storage="rowstore",
    )
    database.insert("orders", [(i, f"c{i % 10}", float(i)) for i in range(500)])
    database.table("orders").create_index("by_id", ["id"])
    return database


class TestIndexSeekSelection:
    def test_equality_uses_seek(self, db):
        plan = db.explain("SELECT v FROM orders WHERE id = 250", mode="row")
        assert "RowIndexSeek" in plan
        assert db.sql("SELECT v FROM orders WHERE id = 250").rows == [(250.0,)]

    def test_range_uses_seek(self, db):
        plan = db.explain("SELECT id FROM orders WHERE id BETWEEN 10 AND 14", mode="row")
        assert "RowIndexSeek" in plan
        result = db.sql("SELECT id FROM orders WHERE id BETWEEN 10 AND 14 ORDER BY id")
        assert [r[0] for r in result.rows] == [10, 11, 12, 13, 14]

    def test_open_ended_range(self, db):
        result = db.sql("SELECT COUNT(*) AS n FROM orders WHERE id >= 495")
        assert result.scalar() == 5

    def test_unindexed_predicate_scans(self, db):
        plan = db.explain("SELECT id FROM orders WHERE cust = 'c3'", mode="row")
        assert "RowTableScan" in plan
        assert "RowIndexSeek" not in plan

    def test_residual_predicate_applied(self, db):
        result = db.sql(
            "SELECT id FROM orders WHERE id BETWEEN 0 AND 100 AND cust = 'c3' ORDER BY id"
        )
        assert [r[0] for r in result.rows] == [3, 13, 23, 33, 43, 53, 63, 73, 83, 93]

    def test_no_predicate_scans(self, db):
        plan = db.explain("SELECT COUNT(*) AS n FROM orders", mode="row")
        assert "RowIndexSeek" not in plan

    def test_seek_sees_deletes(self, db):
        db.sql("DELETE FROM orders WHERE id = 42")
        assert db.sql("SELECT COUNT(*) AS n FROM orders WHERE id = 42").scalar() == 0

    def test_seek_sees_updates(self, db):
        db.sql("UPDATE orders SET v = 999.0 WHERE id = 7")
        assert db.sql("SELECT v FROM orders WHERE id = 7").scalar() == 999.0

    def test_seek_matches_scan_results(self, db):
        sql = "SELECT id, cust FROM orders WHERE id BETWEEN 100 AND 200"
        with_index = sorted(db.sql(sql).rows)
        db.table("orders").indexes.clear()
        without_index = sorted(db.sql(sql).rows)
        assert with_index == without_index
