import pytest

from repro.observability import MetricsRegistry
from repro.observability.registry import set_registry


@pytest.fixture
def registry():
    """A fresh metrics registry installed for the duration of one test."""
    reg = MetricsRegistry()
    previous = set_registry(reg)
    yield reg
    set_registry(previous)
