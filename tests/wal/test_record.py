"""WAL record framing: roundtrips, damage classification, corruption fuzz."""

import os
import random

import pytest

from repro.errors import WalCorruptError
from repro.wal.record import (
    WalRecordType,
    encode_record,
    require_clean_scan,
    scan_segment,
)

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def make_segment(first_lsn: int = 1, count: int = 5) -> tuple[bytes, list]:
    """A well-formed segment of ``count`` records and the expected list."""
    rng = random.Random(SEED + first_lsn)
    data = bytearray()
    expected = []
    types = list(WalRecordType)
    for i in range(count):
        rtype = types[i % len(types)]
        table = ["t", "sales", "árbol", ""][i % 4]
        payload = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 60)))
        data += encode_record(rtype, first_lsn + i, table, payload)
        expected.append((first_lsn + i, rtype, table, payload))
    return bytes(data), expected


def records_match(records, expected) -> bool:
    return [
        (r.lsn, r.rtype, r.table, r.payload) for r in records
    ] == list(expected)


class TestRoundtrip:
    def test_scan_recovers_every_record(self):
        data, expected = make_segment(first_lsn=7, count=12)
        scan = scan_segment(data, first_lsn=7)
        assert scan.damage is None
        assert scan.good_bytes == len(data)
        assert records_match(scan.records, expected)

    def test_empty_segment_is_clean(self):
        scan = scan_segment(b"", first_lsn=1)
        assert scan.records == [] and scan.damage is None

    def test_empty_payload_and_table(self):
        data = encode_record(WalRecordType.REBUILD, 1, "", b"")
        scan = scan_segment(data, first_lsn=1)
        assert scan.damage is None
        assert scan.records[0].table == "" and scan.records[0].payload == b""


class TestDamageClassification:
    def test_truncated_last_frame_is_torn_tail(self):
        data, expected = make_segment(count=3)
        scan = scan_segment(data[:-1], first_lsn=1)
        assert scan.damage is not None and scan.damage.kind == "torn-tail"
        assert records_match(scan.records, expected[:2])
        # good_bytes points at the end of the last whole record.
        assert scan_segment(data[: scan.good_bytes], 1).damage is None

    def test_truncated_mid_header_is_torn_tail(self):
        data, _ = make_segment(count=2)
        scan = scan_segment(data[: len(data) // 2], first_lsn=1)
        assert scan.damage is None or scan.damage.kind == "torn-tail"

    def test_flip_with_valid_successor_is_corrupt(self):
        data, _ = make_segment(count=3)
        # Corrupt a payload byte of the FIRST record: its length field is
        # intact, so the scanner can see record 2 is still well-formed.
        mutated = bytearray(data)
        mutated[12] ^= 0xFF
        scan = scan_segment(bytes(mutated), first_lsn=1)
        assert scan.damage is not None and scan.damage.kind == "corrupt"
        assert scan.records == []
        with pytest.raises(WalCorruptError, match="byte 0"):
            require_clean_scan(scan, "seg_test.wal")

    def test_flip_in_final_record_is_torn_tail(self):
        data, expected = make_segment(count=3)
        mutated = bytearray(data)
        mutated[-1] ^= 0x01
        scan = scan_segment(bytes(mutated), first_lsn=1)
        assert scan.damage is not None and scan.damage.kind == "torn-tail"
        assert records_match(scan.records, expected[:2])
        require_clean_scan(scan, "seg_test.wal")  # torn tails are tolerable

    def test_lsn_break_is_corrupt(self):
        part_a = encode_record(WalRecordType.INSERT, 1, "t", b"a")
        part_b = encode_record(WalRecordType.INSERT, 5, "t", b"b")  # gap
        scan = scan_segment(part_a + part_b, first_lsn=1)
        assert scan.damage is not None and scan.damage.kind == "corrupt"
        assert "LSN 5 where 2 was expected" in scan.damage.detail

    def test_wrong_first_lsn_is_corrupt(self):
        data, _ = make_segment(first_lsn=10, count=2)
        scan = scan_segment(data, first_lsn=1)
        assert scan.damage is not None and scan.damage.kind == "corrupt"


class TestCorruptionFuzz:
    """Random bit flips and truncations must never yield wrong records —
    only a (possibly shorter) prefix plus classified damage."""

    def _check_invariant(self, mutated: bytes, expected) -> None:
        scan = scan_segment(mutated, first_lsn=1)
        got = [(r.lsn, r.rtype, r.table, r.payload) for r in scan.records]
        assert got == list(expected[: len(got)]), "scan produced a non-prefix"
        if scan.damage is None:
            assert scan.good_bytes == len(mutated)

    def test_single_bit_flips(self):
        data, expected = make_segment(count=8)
        rng = random.Random(SEED)
        offsets = {0, len(data) - 1} | {
            rng.randrange(len(data)) for _ in range(200)
        }
        for offset in sorted(offsets):
            mutated = bytearray(data)
            mutated[offset] ^= 1 << rng.randrange(8)
            self._check_invariant(bytes(mutated), expected)

    def test_truncations(self):
        data, expected = make_segment(count=6)
        for cut in range(len(data)):
            self._check_invariant(data[:cut], expected)

    def test_flip_plus_truncation(self):
        data, expected = make_segment(count=6)
        rng = random.Random(SEED + 1)
        for _ in range(200):
            cut = rng.randrange(1, len(data) + 1)
            mutated = bytearray(data[:cut])
            mutated[rng.randrange(cut)] ^= 1 << rng.randrange(8)
            self._check_invariant(bytes(mutated), expected)

    def test_random_garbage_never_decodes_past_damage(self):
        rng = random.Random(SEED + 2)
        for _ in range(50):
            garbage = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 200)))
            scan = scan_segment(garbage, first_lsn=1)
            # A random blob passing CRC-32C is vanishingly unlikely.
            assert scan.records == [] and scan.damage is not None
