"""Crash-consistency sweeps for explicit transactions.

Extends the DML crash sweep (:mod:`tests.wal.test_crash_sweep`) with a
workload containing BEGIN/COMMIT blocks and a ROLLBACK block, crashing
at *every* WAL write point — including between a transaction's
TXN_BEGIN and its TXN_COMMIT. Recovery must always land on the state as
of the **last commit point**: an uncommitted transaction's records may
be on disk, but replay skips them because no TXN_COMMIT marker with
their id exists.

Also proves the differential property: a committed transactional
workload replayed after a crash equals the same workload executed
without any crash.
"""

import os

from repro import Database, StoreConfig
from repro.observability.registry import get_registry
from repro.storage.diskio import FaultyDisk, InjectedFault

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

_CONFIG = StoreConfig(rowgroup_size=16, bulk_load_threshold=8, delta_close_rows=8)

# Auto-commit statements interleaved with committed transactions and a
# rolled-back one; the final BEGIN block stays open so the sweep also
# crosses "crash with a transaction in flight at end of script".
_SCRIPT = (
    "CREATE TABLE s (id INT NOT NULL, grp VARCHAR, amount FLOAT)",
    "INSERT INTO s VALUES (1, 'a', 1.5), (2, 'b', 2.5)",
    "BEGIN",
    "INSERT INTO s VALUES (3, 'a', 3.5)",
    "UPDATE s SET amount = 20.0 WHERE grp = 'b'",
    "COMMIT",
    "INSERT INTO s VALUES (4, 'c', 4.5)",
    "BEGIN",
    "INSERT INTO s VALUES (5, 'c', 5.5), (6, 'a', 6.5)",
    "DELETE FROM s WHERE grp = 'a'",
    "ROLLBACK",
    "BEGIN",
    "INSERT INTO s VALUES (7, 'd', 7.5)",
    "DELETE FROM s WHERE id = 2",
    "COMMIT",
    "BEGIN",
    "INSERT INTO s VALUES (8, 'e', 8.5)",
)

_QUERIES = (
    "SELECT * FROM s ORDER BY id",
    "SELECT grp, COUNT(*) AS n FROM s GROUP BY grp ORDER BY grp",
)


def state_of(db: Database) -> list:
    if not db.catalog.has_table("s"):
        return ["<no table>"]
    return [db.sql(q).rows for q in _QUERIES]


def shadow_state(upto: int) -> list:
    """Durable state after ``upto`` completed statements: any still-open
    transaction at that point contributes nothing."""
    shadow = Database(_CONFIG)
    for statement in _SCRIPT[:upto]:
        shadow.sql(statement)
    if shadow.in_transaction:
        shadow.rollback()
    return state_of(shadow)


def run_script(db: Database) -> int:
    done = 0
    for statement in _SCRIPT:
        db.sql(statement)
        done += 1
    return done


def count_ops(tmp_path) -> int:
    disk = FaultyDisk()
    db = Database.open(
        str(tmp_path / "probe"),
        disk=disk,
        durability="per-commit",
        default_config=_CONFIG,
    )
    run_script(db)
    db.close()
    return disk.ops


class TestTxnCrashSweep:
    def test_crash_at_every_write_point_recovers_last_commit(self, tmp_path):
        expected = [shadow_state(upto) for upto in range(len(_SCRIPT) + 1)]
        total = count_ops(tmp_path)
        assert total > len(_SCRIPT)
        mid_txn_crashes = 0
        for crash_at in range(total):
            target = tmp_path / f"crash_{crash_at}"
            disk = FaultyDisk(crash_after_ops=crash_at, lose_unsynced_on_crash=True)
            db = Database.open(
                str(target), disk=disk, durability="per-commit",
                default_config=_CONFIG,
            )
            committed = 0
            crashed = False
            try:
                for statement in _SCRIPT:
                    db.sql(statement)
                    committed += 1
                db.close()
            except InjectedFault:
                crashed = True
                if db.in_transaction:
                    mid_txn_crashes += 1
            assert crashed, f"write point {crash_at} never fired"
            recovered = Database.open(str(target), default_config=_CONFIG)
            observed = state_of(recovered)
            assert observed == expected[committed], (
                f"crash at write point {crash_at}/{total}: recovery did not "
                f"land on the last commit point after {committed} statements"
            )
        # The sweep must actually have crashed inside open transactions,
        # or the txn-filtering claim was never exercised.
        assert mid_txn_crashes >= 3

    def test_uncommitted_records_invisible_to_replay(self, tmp_path):
        target = tmp_path / "open_txn"
        db = Database.open(
            str(target), durability="per-commit", default_config=_CONFIG
        )
        db.sql("CREATE TABLE s (id INT NOT NULL, grp VARCHAR, amount FLOAT)")
        db.sql("INSERT INTO s VALUES (1, 'a', 1.5)")
        db.sql("BEGIN")
        db.sql("INSERT INTO s VALUES (2, 'b', 2.5)")
        db.sql("UPDATE s SET amount = 9.0 WHERE id = 1")
        # Force the uncommitted records onto disk, then "crash" (drop
        # the handle without COMMIT). They are durable bytes — and must
        # still be invisible to replay.
        db.wal.flush()
        before = get_registry().counter("storage.wal.replay.uncommitted_skipped")
        recovered = Database.open(str(target), default_config=_CONFIG)
        assert state_of(recovered) == [
            [(1, "a", 1.5)],
            [("a", 1)],
        ]
        skipped = get_registry().counter("storage.wal.replay.uncommitted_skipped")
        assert skipped - before == 2

    def test_rolled_back_txn_invisible_to_replay(self, tmp_path):
        target = tmp_path / "rolled_back"
        db = Database.open(
            str(target), durability="per-commit", default_config=_CONFIG
        )
        db.sql("CREATE TABLE s (id INT NOT NULL, grp VARCHAR, amount FLOAT)")
        db.sql("BEGIN")
        db.sql("INSERT INTO s VALUES (1, 'x', 1.0)")
        db.sql("ROLLBACK")
        db.sql("INSERT INTO s VALUES (2, 'y', 2.0)")
        db.close()
        recovered = Database.open(str(target), default_config=_CONFIG)
        assert state_of(recovered) == [[(2, "y", 2.0)], [("y", 1)]]

    def test_differential_replay_after_crash_equals_no_crash(self, tmp_path):
        # Run the committed workload, crash (abandon the handle without
        # close/save), reopen: replay-from-log must equal the same
        # workload executed in memory without any crash.
        target = tmp_path / "diff"
        db = Database.open(
            str(target), durability="per-commit", default_config=_CONFIG
        )
        run_script(db)
        # No close(): the open final transaction dies with the "crash".
        del db
        recovered = Database.open(str(target), default_config=_CONFIG)
        assert state_of(recovered) == shadow_state(len(_SCRIPT))

    def test_checkpoint_then_txn_then_crash(self, tmp_path):
        # A save() mid-workload truncates covered segments; transactions
        # after the checkpoint must still replay (or be skipped) against
        # the snapshot base exactly as against an empty base.
        target = tmp_path / "ckpt"
        db = Database.open(
            str(target), durability="per-commit", default_config=_CONFIG
        )
        db.sql("CREATE TABLE s (id INT NOT NULL, grp VARCHAR, amount FLOAT)")
        db.sql("INSERT INTO s VALUES (1, 'a', 1.5)")
        db.save(str(target))
        with db.transaction():
            db.sql("INSERT INTO s VALUES (2, 'b', 2.5)")
        db.sql("BEGIN")
        db.sql("INSERT INTO s VALUES (3, 'c', 3.5)")  # never committed
        db.wal.flush()
        del db
        recovered = Database.open(str(target), default_config=_CONFIG)
        assert state_of(recovered) == [
            [(1, "a", 1.5), (2, "b", 2.5)],
            [("a", 1), ("b", 1)],
        ]


class TestGroupCommitTxn:
    def test_commit_defers_fsync_to_commit_marker(self, tmp_path):
        """Inside a transaction, per-statement fsyncs are skipped: the
        whole transaction becomes durable with the COMMIT."""
        target = tmp_path / "fsyncs"
        db = Database.open(
            str(target), durability="per-commit", default_config=_CONFIG
        )
        db.sql("CREATE TABLE s (id INT NOT NULL, grp VARCHAR, amount FLOAT)")
        registry = get_registry()
        base = registry.counter("storage.wal.fsyncs")
        db.sql("BEGIN")
        for i in range(5):
            db.sql(f"INSERT INTO s VALUES ({i}, 'x', 1.0)")
        mid = registry.counter("storage.wal.fsyncs")
        assert mid == base, "in-txn statements must not fsync"
        db.sql("COMMIT")
        after = registry.counter("storage.wal.fsyncs")
        assert after == base + 1, "COMMIT is the single fsync point"
        db.close()
        recovered = Database.open(str(target), default_config=_CONFIG)
        assert recovered.sql("SELECT COUNT(*) AS n FROM s").scalar() == 5
