"""Replay-on-open: differential testing, corruption handling, checkpoints.

The differential tests run a randomized DML script against a WAL-backed
database and an identical in-memory shadow, "crash" (abandon the live
object without saving), reopen the directory, and require the replayed
database to answer every query exactly like the shadow — structural
equality, not just survival.
"""

import os
import random

import pytest

from repro import Database, StoreConfig
from repro.cli import Shell, main
from repro.errors import WalCorruptError
from repro.storage.diskio import DiskIO
from repro.storage.snapshot import MANIFEST_NAME, load_manifest
from repro.wal.log import WAL_DIR_NAME

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

_CONFIG = StoreConfig(rowgroup_size=24, bulk_load_threshold=12, delta_close_rows=12)

_QUERIES = (
    "SELECT * FROM r ORDER BY id",
    "SELECT grp, COUNT(*) AS n, SUM(amount) AS s FROM r GROUP BY grp ORDER BY grp",
    "SELECT COUNT(*) AS n FROM r WHERE amount > 5",
)


def state_of(db: Database) -> list:
    if not db.catalog.has_table("r"):
        return ["<no table>"]
    return [db.sql(q).rows for q in _QUERIES]


def random_script(rng: random.Random, length: int) -> list:
    """A reproducible mixed-DML script as (callable name, args) pairs."""
    ops = [("create", ())]
    next_id = 0
    for _ in range(length):
        roll = rng.random()
        if roll < 0.45:
            count = rng.randrange(1, 6)
            rows = [
                (next_id + i, f"g{rng.randrange(4)}", round(rng.uniform(0, 10), 2))
                for i in range(count)
            ]
            next_id += count
            ops.append(("insert", (rows,)))
        elif roll < 0.6:
            count = rng.randrange(10, 20)
            rows = [
                (next_id + i, f"g{rng.randrange(4)}", round(rng.uniform(0, 10), 2))
                for i in range(count)
            ]
            next_id += count
            ops.append(("bulk", (rows,)))
        elif roll < 0.75:
            ops.append(("delete", (f"g{rng.randrange(4)}",)))
        elif roll < 0.85:
            ops.append(("update", (f"g{rng.randrange(4)}",)))
        elif roll < 0.95:
            ops.append(("mover", ()))
        else:
            ops.append(("rebuild", ()))
    return ops


def apply_op(db: Database, op: str, args: tuple) -> None:
    if op == "create":
        db.sql("CREATE TABLE r (id INT NOT NULL, grp VARCHAR, amount FLOAT)")
    elif op == "insert":
        db.insert("r", args[0])
    elif op == "bulk":
        db.bulk_load("r", args[0])
    elif op == "delete":
        db.sql(f"DELETE FROM r WHERE grp = '{args[0]}'")
    elif op == "update":
        db.sql(f"UPDATE r SET amount = amount + 1 WHERE grp = '{args[0]}'")
    elif op == "mover":
        db.run_tuple_mover("r", include_open=True)
    elif op == "rebuild":
        db.rebuild("r")


class TestDifferentialReplay:
    @pytest.mark.parametrize("round_seed", [SEED, SEED + 1, SEED + 2])
    def test_replay_after_crash_equals_no_crash_run(self, tmp_path, round_seed):
        rng = random.Random(round_seed)
        script = random_script(rng, 40)
        target = tmp_path / f"diff_{round_seed}"
        live = Database.open(str(target), durability="off", default_config=_CONFIG)
        shadow = Database(_CONFIG)
        checkpoint_at = {len(script) // 3, 2 * len(script) // 3}
        for i, (op, args) in enumerate(script):
            apply_op(live, op, args)
            apply_op(shadow, op, args)
            if i in checkpoint_at:
                live.save(str(target))  # mid-script checkpoint
        # Crash: abandon `live` without close()/save(); replay must
        # reconstruct every statement from snapshot + log tail.
        recovered = Database.open(str(target), default_config=_CONFIG)
        assert state_of(recovered) == state_of(shadow)
        # The replayed database is structurally equivalent going forward:
        # the same new statements produce the same answers.
        for db in (recovered, shadow):
            db.sql("DELETE FROM r WHERE grp = 'g1'")
            db.run_tuple_mover("r", include_open=True)
        assert state_of(recovered) == state_of(shadow)

    def test_reopen_continue_reopen(self, tmp_path):
        target = tmp_path / "continue"
        shadow = Database(_CONFIG)
        db = Database.open(str(target), default_config=_CONFIG)
        for d in (db, shadow):
            d.sql("CREATE TABLE r (id INT NOT NULL, grp VARCHAR, amount FLOAT)")
            d.insert("r", [(1, "a", 1.0), (2, "b", 2.0)])
        first_lsn = db.wal.last_lsn
        db.close()
        db = Database.open(str(target), default_config=_CONFIG)
        assert db.wal.last_lsn == first_lsn  # LSNs continue, not restart
        for d in (db, shadow):
            d.insert("r", [(3, "c", 3.0)])
            d.sql("DELETE FROM r WHERE id = 1")
        db.close()
        assert state_of(Database.open(str(target))) == state_of(shadow)


class TestTornTailAndCorruption:
    def _populated(self, tmp_path, name="db"):
        target = tmp_path / name
        db = Database.open(str(target), durability="per-commit",
                           default_config=_CONFIG)
        db.sql("CREATE TABLE r (id INT NOT NULL, grp VARCHAR, amount FLOAT)")
        db.insert("r", [(i, "a", float(i)) for i in range(5)])
        db.insert("r", [(10, "b", 1.0)])
        db.sql("DELETE FROM r WHERE id = 2")
        return target, state_of(db)

    def _segment_paths(self, target):
        return sorted((target / WAL_DIR_NAME).glob("seg_*.wal"))

    def test_torn_final_record_truncates_and_replays(self, tmp_path, registry):
        target, _ = self._populated(tmp_path)
        seg = self._segment_paths(target)[-1]
        pristine = seg.read_bytes()
        seg.write_bytes(pristine[:-3])  # tear the last frame
        db = Database.open(str(target), default_config=_CONFIG)
        assert registry.counter("storage.wal.replay.torn_tails_truncated") == 1
        # The torn statement (the DELETE) is gone; everything before it
        # survived.
        assert db.sql("SELECT COUNT(*) AS n FROM r").scalar() == 6
        # The truncated log replays cleanly on a second open.
        assert state_of(Database.open(str(target))) == state_of(db)

    def test_mid_log_corruption_refuses_to_open(self, tmp_path):
        target, _ = self._populated(tmp_path)
        seg = self._segment_paths(target)[0]
        data = bytearray(seg.read_bytes())
        data[12] ^= 0xFF  # first record's body: valid records follow
        seg.write_bytes(bytes(data))
        with pytest.raises(WalCorruptError) as excinfo:
            Database.open(str(target))
        assert seg.name in str(excinfo.value)

    def test_corruption_fuzz_prefix_or_refusal(self, tmp_path):
        """Random single-bit flips and truncations anywhere in the log:
        opening either succeeds with a committed prefix of the script or
        raises WalCorruptError — never wrong data, never a crash."""
        rng = random.Random(SEED)
        # Prefix states of the fixed script in _populated.
        shadow = Database(_CONFIG)
        prefixes = [state_of(shadow)]
        shadow.sql("CREATE TABLE r (id INT NOT NULL, grp VARCHAR, amount FLOAT)")
        prefixes.append(state_of(shadow))
        shadow.insert("r", [(i, "a", float(i)) for i in range(5)])
        prefixes.append(state_of(shadow))
        shadow.insert("r", [(10, "b", 1.0)])
        prefixes.append(state_of(shadow))
        shadow.sql("DELETE FROM r WHERE id = 2")
        prefixes.append(state_of(shadow))
        for round_no in range(30):
            target, _ = self._populated(tmp_path, name=f"fuzz_{round_no}")
            seg = rng.choice(self._segment_paths(target))
            data = bytearray(seg.read_bytes())
            if rng.random() < 0.5:
                data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
            else:
                del data[rng.randrange(len(data)) :]
            seg.write_bytes(bytes(data))
            try:
                db = Database.open(str(target), default_config=_CONFIG)
            except WalCorruptError:
                continue
            assert state_of(db) in prefixes, (
                f"fuzz round {round_no}: recovered state is not a "
                "committed prefix"
            )


class TestCheckpoints:
    def test_save_records_lsn_and_truncates_log(self, tmp_path, registry):
        target, expected = TestTornTailAndCorruption()._populated(tmp_path)
        db = Database.open(str(target), default_config=_CONFIG)
        lsn_before = db.wal.last_lsn
        db.save(str(target))
        manifest = load_manifest(DiskIO(), target)
        assert manifest.checkpoint_lsn == lsn_before
        assert self_segments(target) == []
        assert registry.counter("storage.wal.checkpoints") == 1
        # Reopen: nothing to replay, state intact, appends continue.
        db2 = Database.open(str(target), default_config=_CONFIG)
        assert state_of(db2) == expected
        db2.insert("r", [(99, "z", 0.5)])
        assert db2.wal.last_lsn == lsn_before + 1
        db2.close()
        assert (
            Database.open(str(target)).sql(
                "SELECT COUNT(*) AS n FROM r WHERE id = 99"
            ).scalar()
            == 1
        )

    def test_wal_only_directory_opens_and_checks(self, tmp_path):
        target = tmp_path / "walonly"
        db = Database.open(str(target), durability="per-commit",
                           default_config=_CONFIG)
        db.sql("CREATE TABLE r (id INT NOT NULL, grp VARCHAR, amount FLOAT)")
        db.insert("r", [(1, "a", 1.0)])
        # Never saved: no manifest, all state in the log.
        assert not (target / MANIFEST_NAME).exists()
        report = Database.check(str(target))
        assert report.manifest_status == "wal-only" and report.ok
        recovered = Database.open(str(target), default_config=_CONFIG)
        assert recovered.sql("SELECT COUNT(*) AS n FROM r").scalar() == 1

    def test_corrupt_manifest_with_wal_refuses_to_open(self, tmp_path):
        # Regression: a corrupt manifest used to fall into the "no
        # snapshot yet, recover from the log alone" path — but the
        # checkpoint had truncated the log, so the database silently
        # opened *empty*. Corruption must fail the open instead.
        target = tmp_path / "corruptsnap"
        db = Database.open(str(target), durability="per-commit",
                           default_config=_CONFIG)
        db.sql("CREATE TABLE r (id INT NOT NULL, grp VARCHAR, amount FLOAT)")
        db.insert("r", [(1, "a", 1.0)])
        db.save(str(target))  # checkpoint: the log no longer holds state
        db.close()
        manifest_path = target / MANIFEST_NAME
        data = bytearray(manifest_path.read_bytes())
        data[len(data) // 2] ^= 0x10
        manifest_path.write_bytes(bytes(data))
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError, match="manifest"):
            Database.open(str(target), default_config=_CONFIG)

    def test_plain_load_without_wal_dir_stays_walless(self, tmp_path):
        db = Database(_CONFIG)
        db.sql("CREATE TABLE r (id INT NOT NULL, grp VARCHAR, amount FLOAT)")
        db.save(str(tmp_path / "plain"))
        loaded = Database.load(str(tmp_path / "plain"))
        assert loaded.wal is None
        assert not (tmp_path / "plain" / WAL_DIR_NAME).exists()


def self_segments(target):
    return sorted((target / WAL_DIR_NAME).glob("seg_*.wal"))


class TestCheckIntegration:
    def test_check_names_corrupt_segment_and_offset(self, tmp_path):
        target, _ = TestTornTailAndCorruption()._populated(tmp_path)
        seg = self_segments(target)[0]
        data = bytearray(seg.read_bytes())
        data[12] ^= 0xFF
        seg.write_bytes(bytes(data))
        report = Database.check(str(target))
        assert not report.ok
        bad = [v for v in report.wal_verdicts if v.status == "corrupt"]
        assert bad and bad[0].segment == seg.name
        assert "byte 0" in bad[0].detail
        rendered = "\n".join(report.render())
        assert f"wal/{seg.name}: corrupt" in rendered

    def test_cli_check_fails_on_wal_damage(self, tmp_path, capsys):
        target, _ = TestTornTailAndCorruption()._populated(tmp_path)
        assert main(["check", str(target)]) == 0
        capsys.readouterr()
        seg = self_segments(target)[0]
        data = bytearray(seg.read_bytes())
        data[12] ^= 0xFF
        seg.write_bytes(bytes(data))
        assert main(["check", str(target)]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_shell_wal_and_durability_commands(self, tmp_path):
        shell = Shell()
        assert "no write-ahead log" in shell.run_meta("\\wal")[0]
        out = shell.run_meta(f"\\open {tmp_path / 'shelldb'}")
        assert any("wal" in line for line in out)
        shell.feed_line("CREATE TABLE t (a INT);")
        shell.feed_line("INSERT INTO t VALUES (1), (2);")
        out = shell.run_meta("\\wal")
        assert any("last LSN: 2" in line for line in out)
        assert shell.run_meta("\\durability") == ["durability is group"]
        assert shell.run_meta("\\durability per-commit") == [
            "durability set to per-commit"
        ]
        assert "error" in shell.run_meta("\\durability bogus")[0]
        # Statements survive without an explicit save.
        shell2 = Shell()
        shell2.run_meta(f"\\open {tmp_path / 'shelldb'}")
        out = shell2.feed_line("SELECT COUNT(*) AS n FROM t;")
        assert any("2" in line for line in out)
