"""Crash-at-every-write-point sweeps for the write-ahead log.

Drives a scripted DML sequence against :meth:`Database.open` through a
:class:`FaultyDisk` that crashes at every WAL write point (each append
and each fsync is one operation), then reopens the directory and asserts
the recovered state is exactly a *committed prefix* of the script:

* ``per-commit`` + ``lose_unsynced_on_crash`` (the honest power-cut
  model): recovery yields exactly the statements that returned —
  nothing committed is lost, nothing uncommitted survives;
* ``group``: recovery yields a prefix no longer than what was attempted
  (the bounded window of the group-commit trade-off);
* rotation sweep: crashes while the log is rotating segments never
  corrupt it — reattach always sees a clean prefix.
"""

import os

import pytest

from repro import Database, StoreConfig
from repro.storage.diskio import DiskIO, FaultyDisk, InjectedFault
from repro.wal.log import WriteAheadLog
from repro.wal.record import WalRecordType

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

# One entry = one committed statement; mixes trickle/bulk/delete/update,
# DDL and a maintenance op so the sweep crosses every record type's
# append path. Small thresholds make the tuple mover do real work.
_CONFIG = StoreConfig(rowgroup_size=16, bulk_load_threshold=8, delta_close_rows=8)

_SCRIPT = (
    "CREATE TABLE s (id INT NOT NULL, grp VARCHAR, amount FLOAT)",
    "INSERT INTO s VALUES (1, 'a', 1.5), (2, 'b', 2.5)",
    "INSERT INTO s VALUES (3, 'a', 3.5)",
    "INSERT INTO s VALUES (4, 'b', 4.5), (5, 'a', 5.5), (6, 'c', 6.5)",
    "DELETE FROM s WHERE id = 2",
    "UPDATE s SET amount = 10.0 WHERE grp = 'a'",
    "INSERT INTO s VALUES (7, 'c', 7.5), (8, 'a', 8.5)",
    "DELETE FROM s WHERE grp = 'c'",
    "INSERT INTO s VALUES (9, 'd', 9.5)",
)

_QUERIES = (
    "SELECT * FROM s ORDER BY id",
    "SELECT grp, COUNT(*) AS n FROM s GROUP BY grp ORDER BY grp",
)


def run_script(db: Database, upto: int) -> int:
    """Apply the first ``upto`` statements; returns how many completed."""
    done = 0
    for statement in _SCRIPT[:upto]:
        db.sql(statement)
        done += 1
    return done


def state_of(db: Database) -> list:
    if not db.catalog.has_table("s"):
        return ["<no table>"]
    return [db.sql(q).rows for q in _QUERIES]


def shadow_states() -> list:
    """Expected state after each statement-count prefix (0..len)."""
    states = []
    for upto in range(len(_SCRIPT) + 1):
        shadow = Database(_CONFIG)
        run_script(shadow, upto)
        states.append(state_of(shadow))
    return states


def count_ops(tmp_path, durability: str) -> int:
    disk = FaultyDisk()
    db = Database.open(
        str(tmp_path / "probe"),
        disk=disk,
        durability=durability,
        default_config=_CONFIG,
    )
    run_script(db, len(_SCRIPT))
    db.close()
    return disk.ops


class TestDmlCrashSweep:
    def _sweep(self, tmp_path, durability: str, exact: bool) -> None:
        expected = shadow_states()
        total = count_ops(tmp_path, durability)
        assert total >= len(_SCRIPT), "each statement must hit the disk"
        hits = set()
        for crash_at in range(total):
            target = tmp_path / f"crash_{durability}_{crash_at}"
            disk = FaultyDisk(
                crash_after_ops=crash_at, lose_unsynced_on_crash=True
            )
            db = Database.open(
                str(target), disk=disk, durability=durability,
                default_config=_CONFIG,
            )
            committed = 0
            crashed = False
            try:
                for statement in _SCRIPT:
                    db.sql(statement)
                    committed += 1
                db.close()
            except InjectedFault:
                crashed = True
            assert crashed, f"write point {crash_at} never fired"
            recovered = Database.open(str(target), default_config=_CONFIG)
            observed = state_of(recovered)
            assert observed in expected, (
                f"non-prefix state after crash at write point "
                f"{crash_at}/{total} ({durability})"
            )
            prefix_len = expected.index(observed)
            hits.add(prefix_len)
            if exact:
                assert prefix_len == committed, (
                    f"crash at {crash_at}: {committed} statements committed "
                    f"but recovery replayed {prefix_len}"
                )
            else:
                # Group commit only makes flush boundaries durable: a
                # power cut loses at most one un-flushed window, never a
                # mid-window slice.
                assert prefix_len <= committed + 1
                assert prefix_len % 8 == 0, (
                    f"crash at {crash_at}: recovered {prefix_len} "
                    "statements, not a group-commit flush boundary"
                )
        if exact:
            # Per-commit durability must surface many distinct prefixes.
            assert len(hits) >= 3

    def test_per_commit_recovers_exact_committed_prefix(self, tmp_path):
        self._sweep(tmp_path, "per-commit", exact=True)

    def test_group_commit_recovers_bounded_prefix(self, tmp_path):
        self._sweep(tmp_path, "group", exact=False)

    def test_uninterrupted_run_recovers_everything(self, tmp_path):
        expected = shadow_states()
        target = tmp_path / "clean"
        db = Database.open(
            str(target), durability="per-commit", default_config=_CONFIG
        )
        run_script(db, len(_SCRIPT))
        db.close()
        assert state_of(Database.open(str(target))) == expected[-1]


class TestTornAppendSweep:
    def test_torn_final_append_truncates_to_prefix(self, tmp_path):
        """A torn WAL append (prefix of the frame on disk) at every write
        point must recover to the exact committed prefix — the torn
        record never committed."""
        expected = shadow_states()
        total = count_ops(tmp_path, "per-commit")
        for crash_at in range(total):
            for torn in (1, 5, 11):
                target = tmp_path / f"torn_{crash_at}_{torn}"
                disk = FaultyDisk(
                    crash_after_ops=crash_at,
                    torn_write_bytes=torn,
                    lose_unsynced_on_crash=True,
                )
                db = Database.open(
                    str(target), disk=disk, durability="per-commit",
                    default_config=_CONFIG,
                )
                committed = 0
                try:
                    for statement in _SCRIPT:
                        db.sql(statement)
                        committed += 1
                    db.close()
                except InjectedFault:
                    pass
                observed = state_of(
                    Database.open(str(target), default_config=_CONFIG)
                )
                assert observed == expected[committed], (
                    f"torn append ({torn} bytes) at write point {crash_at}"
                )


class TestRotationCrashSweep:
    def test_crash_during_rotation_keeps_clean_prefix(self, tmp_path):
        """Tiny segments force a rotation every append or two; crashing
        at every write point must leave a log that reattaches cleanly to
        a prefix of the appended LSNs."""
        payload = b"x" * 40
        probe = FaultyDisk()
        wal, _ = WriteAheadLog.attach(
            probe, tmp_path / "probe" / "wal", durability="group",
            group_commit_size=3, segment_bytes=64,
        )
        for _ in range(12):
            wal.log_statement(WalRecordType.INSERT, "t", payload)
        wal.close()
        total = probe.ops
        assert total > 12  # appends + rotation fsyncs + flushes
        for crash_at in range(total):
            root = tmp_path / f"rot_{crash_at}" / "wal"
            disk = FaultyDisk(
                crash_after_ops=crash_at, lose_unsynced_on_crash=True
            )
            wal, _ = WriteAheadLog.attach(
                disk, root, durability="group",
                group_commit_size=3, segment_bytes=64,
            )
            appended = 0
            with pytest.raises(InjectedFault):
                for _ in range(12):
                    wal.log_statement(WalRecordType.INSERT, "t", payload)
                    appended += 1
                wal.close()
            _, recovery = WriteAheadLog.attach(DiskIO(), root)
            lsns = [r.lsn for r in recovery.replay_records]
            assert lsns == list(range(1, len(lsns) + 1))
            assert len(lsns) <= appended + 1
