"""The segmented log: durability modes, group commit, rotation, checking."""

import pytest

from repro.errors import WalCorruptError
from repro.storage.diskio import DiskIO
from repro.wal.log import WriteAheadLog, check_wal, normalize_durability
from repro.wal.record import WalRecordType


def open_wal(tmp_path, **kwargs):
    wal, recovery = WriteAheadLog.attach(DiskIO(), tmp_path / "wal", **kwargs)
    return wal, recovery


def log_n(wal, n, start=0):
    for i in range(n):
        wal.log_statement(WalRecordType.INSERT, "t", b"row-%d" % (start + i))


class TestDurabilityModes:
    def test_normalize_accepts_aliases(self):
        assert normalize_durability("fsync-per-commit") == "per-commit"
        assert normalize_durability("fsync") == "per-commit"
        with pytest.raises(ValueError, match="unknown durability"):
            normalize_durability("yolo")

    def test_per_commit_fsyncs_every_statement(self, tmp_path, registry):
        wal, _ = open_wal(tmp_path, durability="per-commit")
        log_n(wal, 10)
        assert registry.counter("storage.wal.commits") == 10
        assert registry.counter("storage.wal.fsyncs") == 10
        assert wal.durable_lsn == wal.last_lsn == 10

    def test_group_commit_amortizes_fsyncs(self, tmp_path, registry):
        wal, _ = open_wal(tmp_path, durability="group", group_commit_size=8)
        log_n(wal, 32)
        assert registry.counter("storage.wal.commits") == 32
        assert registry.counter("storage.wal.fsyncs") == 32 // 8
        assert registry.counter("storage.wal.group_commit.batched_commits") == 32
        assert wal.durable_lsn == 32

    def test_off_never_fsyncs_on_commit(self, tmp_path, registry):
        wal, _ = open_wal(tmp_path, durability="off")
        log_n(wal, 20)
        assert registry.counter("storage.wal.fsyncs") == 0
        assert wal.durable_lsn == 0
        wal.flush()
        assert registry.counter("storage.wal.fsyncs") == 1
        assert wal.durable_lsn == 20

    def test_commit_piggybacks_on_earlier_fsync(self, tmp_path, registry):
        wal, _ = open_wal(tmp_path, durability="per-commit")
        log_n(wal, 1)
        fsyncs = registry.counter("storage.wal.fsyncs")
        wal.commit()  # nothing new appended: already durable
        assert registry.counter("storage.wal.fsyncs") == fsyncs

    def test_tightening_mode_flushes_backlog(self, tmp_path, registry):
        wal, _ = open_wal(tmp_path, durability="off")
        log_n(wal, 5)
        assert wal.durable_lsn == 0
        wal.set_durability("per-commit")
        assert wal.durable_lsn == 5

    def test_close_flushes_pending_window(self, tmp_path, registry):
        wal, _ = open_wal(tmp_path, durability="group", group_commit_size=100)
        log_n(wal, 3)
        assert wal.durable_lsn == 0
        wal.close()
        assert wal.durable_lsn == 3


class TestRotation:
    def test_segments_rotate_at_size_threshold(self, tmp_path, registry):
        wal, _ = open_wal(tmp_path, segment_bytes=64)
        log_n(wal, 10)
        wal.flush()
        names = sorted(p.name for p in (tmp_path / "wal").iterdir())
        assert len(names) > 1
        assert names[0] == "seg_000000000001.wal"
        # Reattach: records survive rotation, LSNs contiguous.
        wal2, recovery = open_wal(tmp_path, segment_bytes=64)
        assert [r.lsn for r in recovery.replay_records] == list(range(1, 11))
        assert wal2.last_lsn == 10

    def test_append_continues_after_reattach(self, tmp_path):
        wal, _ = open_wal(tmp_path)
        log_n(wal, 4)
        wal.flush()
        wal2, _ = open_wal(tmp_path)
        log_n(wal2, 2, start=4)
        wal2.flush()
        _, recovery = open_wal(tmp_path)
        assert [r.lsn for r in recovery.replay_records] == [1, 2, 3, 4, 5, 6]

    def test_missing_middle_segment_refuses(self, tmp_path):
        wal, _ = open_wal(tmp_path, segment_bytes=64)
        log_n(wal, 10)
        wal.flush()
        names = sorted(p.name for p in (tmp_path / "wal").iterdir())
        assert len(names) >= 3
        (tmp_path / "wal" / names[1]).unlink()
        with pytest.raises(WalCorruptError, match="missing segment"):
            open_wal(tmp_path)


class TestTruncateCovered:
    def test_covered_segments_are_deleted(self, tmp_path, registry):
        wal, _ = open_wal(tmp_path, segment_bytes=64)
        log_n(wal, 10)
        wal.flush()
        before = len(list((tmp_path / "wal").iterdir()))
        assert before > 2
        removed = wal.truncate_covered(wal.last_lsn)
        assert removed == before
        assert list((tmp_path / "wal").iterdir()) == []
        assert registry.counter("storage.wal.segments_deleted") == removed
        # The log keeps appending after a full truncation.
        log_n(wal, 1, start=10)
        wal.flush()
        _, recovery = open_wal(tmp_path, checkpoint_lsn=10)
        assert [r.lsn for r in recovery.replay_records] == [11]

    def test_partial_checkpoint_keeps_tail_segments(self, tmp_path, registry):
        wal, _ = open_wal(tmp_path, segment_bytes=64)
        log_n(wal, 10)
        wal.flush()
        tail_first = max(
            int(p.name[4:16]) for p in (tmp_path / "wal").iterdir()
        )
        wal.truncate_covered(tail_first - 1)
        remaining = sorted(p.name for p in (tmp_path / "wal").iterdir())
        assert remaining and all(int(n[4:16]) >= tail_first for n in remaining)
        _, recovery = open_wal(tmp_path, checkpoint_lsn=tail_first - 1)
        assert [r.lsn for r in recovery.replay_records] == list(
            range(tail_first, 11)
        )


class TestStatus:
    def test_status_reports_log_shape(self, tmp_path):
        wal, _ = open_wal(tmp_path, durability="group", group_commit_size=8)
        log_n(wal, 3)
        status = wal.status()
        assert status["durability"] == "group"
        assert status["last_lsn"] == 3
        assert status["durable_lsn"] == 0
        assert status["pending_commits"] == 3
        assert status["segments"] == 1
        assert status["bytes"] > 0


class TestCheckWal:
    def test_clean_log_is_ok(self, tmp_path):
        wal, _ = open_wal(tmp_path)
        log_n(wal, 5)
        wal.flush()
        verdicts = check_wal(DiskIO(), tmp_path / "wal", checkpoint_lsn=0)
        assert [v.status for v in verdicts] == ["ok"]
        assert "LSN 1..5" in verdicts[0].detail

    def test_stale_segment_reported(self, tmp_path):
        wal, _ = open_wal(tmp_path)
        log_n(wal, 5)
        wal.flush()
        verdicts = check_wal(DiskIO(), tmp_path / "wal", checkpoint_lsn=5)
        assert [v.status for v in verdicts] == ["stale"]
        assert all(v.ok for v in verdicts)

    def test_torn_tail_reported_with_offset(self, tmp_path):
        wal, _ = open_wal(tmp_path)
        log_n(wal, 3)
        wal.flush()
        seg = next((tmp_path / "wal").iterdir())
        seg.write_bytes(seg.read_bytes()[:-2])
        verdicts = check_wal(DiskIO(), tmp_path / "wal", checkpoint_lsn=0)
        assert verdicts[0].status == "torn-tail" and verdicts[0].ok
        assert "byte" in verdicts[0].detail

    def test_mid_log_corruption_reported(self, tmp_path):
        wal, _ = open_wal(tmp_path)
        log_n(wal, 3)
        wal.flush()
        seg = next((tmp_path / "wal").iterdir())
        data = bytearray(seg.read_bytes())
        data[12] ^= 0xFF  # first record's body; later records stay valid
        seg.write_bytes(bytes(data))
        verdicts = check_wal(DiskIO(), tmp_path / "wal", checkpoint_lsn=0)
        assert verdicts[0].status == "corrupt" and not verdicts[0].ok

    def test_checkpoint_gap_reported(self, tmp_path):
        wal, _ = open_wal(tmp_path)
        log_n(wal, 5)
        wal.flush()
        # A checkpoint of 2 needs replay from LSN 3, but the log starts
        # at 1 — fine. A checkpoint BEHIND the log start is the gap case.
        verdicts = check_wal(DiskIO(), tmp_path / "wal", checkpoint_lsn=0)
        assert all(v.ok for v in verdicts)
        wal.truncate_covered(5)
        log_n(wal, 2, start=5)
        wal.flush()
        verdicts = check_wal(DiskIO(), tmp_path / "wal", checkpoint_lsn=3)
        gap = [v for v in verdicts if v.status == "checkpoint-gap"]
        assert gap and "6..5" not in gap[0].detail
        assert not gap[0].ok

    def test_lsn_gap_between_segments_reported(self, tmp_path):
        wal, _ = open_wal(tmp_path, segment_bytes=64)
        log_n(wal, 10)
        wal.flush()
        names = sorted(p.name for p in (tmp_path / "wal").iterdir())
        assert len(names) >= 3
        (tmp_path / "wal" / names[1]).unlink()
        verdicts = check_wal(DiskIO(), tmp_path / "wal", checkpoint_lsn=0)
        assert any(v.status == "lsn-gap" and not v.ok for v in verdicts)
