"""Tests for the SQL shell (I/O-free core)."""

import pytest

from repro.cli import Shell, format_result
from repro.db.database import Result
from repro import types


class TestFormatResult:
    def test_alignment_and_count(self):
        result = Result(
            columns=["name", "n"],
            dtypes=[types.VARCHAR, types.BIGINT],
            rows=[("alpha", 1), ("b", 22)],
        )
        text = format_result(result)
        lines = text.split("\n")
        assert lines[0].startswith("name")
        assert "(2 rows)" in text

    def test_null_rendering(self):
        result = Result(columns=["x"], dtypes=[types.INT], rows=[(None,)])
        assert "NULL" in format_result(result)

    def test_truncation(self):
        result = Result(
            columns=["x"], dtypes=[types.INT], rows=[(i,) for i in range(100)]
        )
        text = format_result(result, max_rows=5)
        assert "100 rows total" in text
        assert text.count("\n") < 12


@pytest.fixture
def shell():
    return Shell()


def feed(shell, *lines):
    out = []
    for line in lines:
        out.extend(shell.feed_line(line))
    return "\n".join(out)


class TestShell:
    def test_ddl_dml_query(self, shell):
        assert feed(shell, "CREATE TABLE t (a INT, b VARCHAR);") == "ok"
        out = feed(shell, "INSERT INTO t VALUES (1, 'x');")
        assert "rows_affected" in out
        out = feed(shell, "SELECT a, b FROM t;")
        assert "1 | x" in out

    def test_multiline_statement(self, shell):
        feed(shell, "CREATE TABLE t (a INT);")
        out = feed(shell, "SELECT a", "FROM t;")
        assert "(0 rows)" in out

    def test_prompt_reflects_buffer(self, shell):
        assert shell.prompt == "repro=> "
        shell.feed_line("SELECT 1")
        assert shell.prompt == "   ...> "

    def test_error_reported_not_raised(self, shell):
        out = feed(shell, "SELECT * FROM ghost;")
        assert out.startswith("error:")

    def test_syntax_error_reported(self, shell):
        out = feed(shell, "SELEKT;")
        assert out.startswith("error:")

    def test_quit(self, shell):
        shell.run_meta("\\q")
        assert not shell.running

    def test_tables_and_schema(self, shell):
        feed(shell, "CREATE TABLE t (a INT NOT NULL, b VARCHAR) USING both;")
        out = "\n".join(shell.run_meta("\\tables"))
        assert "t" in out and "both" in out
        out = "\n".join(shell.run_meta("\\schema t"))
        assert "a INT NOT NULL" in out

    def test_sizes(self, shell):
        feed(shell, "CREATE TABLE t (a INT);", "INSERT INTO t VALUES (1);")
        out = "\n".join(shell.run_meta("\\sizes t"))
        assert "columnstore" in out

    def test_mode_switch(self, shell):
        assert "batch" in shell.run_meta("\\mode batch")[0]
        assert shell.mode == "batch"
        assert "current mode" in shell.run_meta("\\mode nonsense")[0]

    def test_timing_toggle(self, shell):
        shell.run_meta("\\timing on")
        feed(shell, "CREATE TABLE t (a INT);")
        out = feed(shell, "SELECT a FROM t;")
        assert "time:" in out

    def test_explain(self, shell):
        feed(shell, "CREATE TABLE t (a INT);")
        out = "\n".join(shell.run_meta("\\explain SELECT a FROM t"))
        assert "ColumnStoreScan" in out

    def test_unknown_meta(self, shell):
        assert "unknown command" in shell.run_meta("\\bogus")[0]

    def test_help(self, shell):
        out = "\n".join(shell.run_meta("\\help"))
        assert "\\tables" in out

    def test_mover_and_rebuild(self, shell):
        feed(shell, "CREATE TABLE t (a INT);", "INSERT INTO t VALUES (1), (2);")
        out = "\n".join(shell.run_meta("\\mover t"))
        assert "moved 2 rows" in out
        assert shell.run_meta("\\rebuild t") == ["rebuilt t"]

    def test_save_and_open(self, shell, tmp_path):
        feed(shell, "CREATE TABLE t (a INT);", "INSERT INTO t VALUES (7);")
        target = str(tmp_path / "db")
        shell.run_meta(f"\\save {target}")
        fresh = Shell()
        out = "\n".join(fresh.run_meta(f"\\open {target}"))
        assert "1 tables" in out
        assert "7" in feed(fresh, "SELECT a FROM t;")

    def test_blank_lines_ignored(self, shell):
        assert shell.feed_line("") == []
        assert shell.feed_line("   ") == []


class TestExplainAnalyze:
    def test_database_api(self):
        from repro import Database

        db = Database()
        db.sql("CREATE TABLE t (a INT NOT NULL, g VARCHAR)")
        db.bulk_load("t", [(i, f"g{i % 3}") for i in range(200)])
        text = db.explain_analyze("SELECT g, COUNT(*) AS n FROM t WHERE a > 50 GROUP BY g")
        assert "executed in" in text
        assert "rows_scanned=200" in text
        assert "groups=3" in text

    def test_meta_command(self):
        shell = Shell()
        feed(shell, "CREATE TABLE t (a INT);", "INSERT INTO t VALUES (1), (2);")
        out = "\n".join(shell.run_meta("\\analyze SELECT a FROM t WHERE a > 1"))
        assert "executed in" in out
        assert "ColumnStoreScan" in out

    def test_join_stats_reported(self):
        from repro import Database

        db = Database()
        db.sql("CREATE TABLE f (k INT NOT NULL)")
        db.sql("CREATE TABLE d (id INT NOT NULL, t VARCHAR)")
        db.bulk_load("f", [(i % 5,) for i in range(100)])
        db.bulk_load("d", [(i, "x") for i in range(5)])
        text = db.explain_analyze(
            "SELECT COUNT(*) AS n FROM f JOIN d ON f.k = d.id"
        )
        assert "build_rows=5" in text
        assert "probe_rows=100" in text


class TestMainExitCodes:
    """`python -m repro` is scriptable: corruption, failed opens and
    usage errors must surface as nonzero exit codes, not just printed
    text with a lying `0`."""

    @staticmethod
    def _saved_dir(tmp_path):
        from repro import Database

        target = tmp_path / "db"
        db = Database.open(str(target), durability="per-commit")
        db.sql("CREATE TABLE t (id INT NOT NULL)")
        db.sql("INSERT INTO t VALUES (1), (2)")
        db.save(str(target))
        db.close()
        return target

    @staticmethod
    def _corrupt_manifest(target):
        from repro.storage.snapshot import MANIFEST_NAME

        path = target / MANIFEST_NAME
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x10
        path.write_bytes(bytes(data))

    def test_check_without_directory_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["check"]) == 2
        assert "usage" in capsys.readouterr().out

    def test_check_missing_directory_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["check", str(tmp_path / "nope")]) == 1

    def test_check_clean_directory_passes(self, tmp_path, capsys):
        from repro.cli import main

        target = self._saved_dir(tmp_path)
        assert main(["check", str(target)]) == 0

    def test_check_corruption_fails(self, tmp_path, capsys):
        from repro.cli import main

        target = self._saved_dir(tmp_path)
        self._corrupt_manifest(target)
        assert main(["check", str(target)]) == 1

    def test_open_corrupt_directory_fails(self, tmp_path, capsys):
        from repro.cli import main

        target = self._saved_dir(tmp_path)
        self._corrupt_manifest(target)
        assert main([str(target)]) == 1

    def test_open_clean_directory_runs_shell(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        target = self._saved_dir(tmp_path)

        def no_stdin(prompt=""):
            raise EOFError

        monkeypatch.setattr("builtins.input", no_stdin)
        assert main([str(target)]) == 0

    def test_durability_flag_without_value_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["--durability"]) == 2
