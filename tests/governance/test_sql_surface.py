"""SET / SHOW / KILL surface and end-to-end governance behavior."""

import threading
import time

import pytest

from repro import Database
from repro.concurrency import ConcurrentDatabase
from repro.errors import (
    BindingError,
    QueryCancelledError,
    QueryKilledError,
    QueryTimeoutError,
    ResourceExhaustedError,
    SqlSyntaxError,
)
from repro.governance import get_query_registry

# A self-join with an ORDER BY: slow enough (thousands of output rows
# per input row) that a governance signal lands mid-flight.
SLOW_QUERY = "SELECT t1.a FROM t t1 JOIN t t2 ON t1.b = t2.b ORDER BY t1.a"


@pytest.fixture
def db():
    database = Database()
    database.sql("CREATE TABLE t (a INT, b INT)")
    database.sql(
        "INSERT INTO t VALUES " + ", ".join(f"({i}, {i % 7})" for i in range(2000))
    )
    return database


class TestSettings:
    def test_set_show_roundtrip(self, db):
        db.sql("SET statement_timeout = 5000")
        assert db.sql("SHOW statement_timeout").scalar() == 5000
        assert db.get_setting("statement_timeout") == 5000

    def test_set_default_clears(self, db):
        db.sql("SET statement_timeout = 5000")
        db.sql("SET statement_timeout = DEFAULT")
        assert db.sql("SHOW statement_timeout").scalar() == 0

    def test_set_to_syntax(self, db):
        db.sql("SET query_memory_budget TO 1048576")
        assert db.get_setting("query_memory_budget") == 1048576

    def test_unknown_setting_rejected(self, db):
        with pytest.raises(BindingError):
            db.sql("SET wibble = 1")
        with pytest.raises(BindingError):
            db.sql("SHOW wibble")

    def test_set_requires_integer(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SET statement_timeout = 'soon'")

    def test_zero_disables(self, db):
        db.sql("SET statement_timeout = 5000")
        db.sql("SET statement_timeout = 0")
        assert db.get_setting("statement_timeout") is None


class TestTimeout:
    def test_statement_timeout_fires(self, db):
        db.sql("SET statement_timeout = 1")
        with pytest.raises(QueryTimeoutError):
            db.sql(SLOW_QUERY)
        db.sql("SET statement_timeout = DEFAULT")
        assert len(get_query_registry()) == 0

    def test_control_statements_never_time_out(self, db):
        db.sql("SET statement_timeout = 1")
        db.sql("SHOW statement_timeout")  # ungoverned: must not raise
        db.sql("SET statement_timeout = DEFAULT")

    def test_fast_query_unaffected(self, db):
        db.sql("SET statement_timeout = 10000")
        assert db.sql("SELECT count(*) FROM t").scalar() == 2000
        db.sql("SET statement_timeout = DEFAULT")


class TestKill:
    def test_show_queries_and_kill(self, db):
        outcome = {}

        def worker():
            try:
                db.sql(SLOW_QUERY)
                outcome["state"] = "finished"
            except QueryKilledError:
                outcome["state"] = "killed"

        thread = threading.Thread(target=worker)
        thread.start()
        rows = []
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not rows:
            rows = db.sql("SHOW QUERIES").rows
        assert rows, "statement never appeared in SHOW QUERIES"
        query_id = rows[0][0]
        assert rows[0][6] == SLOW_QUERY  # sql column
        assert db.sql(f"KILL {query_id}").scalar() == 1
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert outcome["state"] in ("killed", "finished")
        assert len(get_query_registry()) == 0

    def test_kill_unknown_id_returns_zero(self, db):
        assert db.sql("KILL 999999").scalar() == 0


class TestMemorySettings:
    def test_soft_budget_forces_spill(self, db):
        db.sql("SET query_memory_budget = 4096")
        result = db.sql("SELECT a, b FROM t ORDER BY b, a")
        assert len(result.rows) == 2000
        db.sql("SET query_memory_budget = DEFAULT")
        # Degraded to spill, same answer:
        assert result.rows == db.sql("SELECT a, b FROM t ORDER BY b, a").rows

    def test_hard_limit_raises_resource_exhausted(self, db):
        db.sql("SET query_memory_limit = 1024")
        with pytest.raises(ResourceExhaustedError) as err:
            db.sql("SELECT a, b FROM t ORDER BY b, a")
        assert err.value.retryable
        db.sql("SET query_memory_limit = DEFAULT")
        assert len(get_query_registry()) == 0


class TestSessionOverlay:
    @pytest.fixture
    def cdb(self, db):
        concurrent = ConcurrentDatabase(db)
        yield concurrent
        concurrent.close()

    def test_session_overlay_wins(self, cdb, db):
        db.set_setting("statement_timeout", 60_000)
        with cdb.session("a") as session:
            session.sql("SET statement_timeout = 1")
            with pytest.raises(QueryTimeoutError):
                session.sql(SLOW_QUERY)
            assert session.sql("SHOW statement_timeout").scalar() == 1
        db.set_setting("statement_timeout", None)

    def test_session_zero_overrides_database_default(self, cdb, db):
        db.set_setting("statement_timeout", 1)
        with cdb.session("a") as session:
            session.sql("SET statement_timeout = 0")
            assert session.sql("SELECT count(*) FROM t").scalar() == 2000
        db.set_setting("statement_timeout", None)

    def test_overlay_does_not_leak_across_sessions(self, cdb):
        with cdb.session("a") as a, cdb.session("b") as b:
            a.sql("SET statement_timeout = 12345")
            assert b.sql("SHOW statement_timeout").scalar() == 0

    def test_cancel_running_from_other_thread(self, cdb):
        outcome = {}
        with cdb.session("victim") as session:

            def worker():
                try:
                    session.sql(SLOW_QUERY)
                    outcome["state"] = "finished"
                except QueryCancelledError:
                    outcome["state"] = "cancelled"

            thread = threading.Thread(target=worker)
            thread.start()
            deadline = time.monotonic() + 5.0
            cancelled = False
            while time.monotonic() < deadline and not cancelled:
                cancelled = session.cancel_running()
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            if cancelled:
                assert outcome["state"] == "cancelled"
            assert session.cancel_running() is False  # idle again

    def test_timeout_inside_transaction_rolls_back(self, cdb):
        with cdb.session("txn") as session:
            session.sql("BEGIN")
            session.sql("INSERT INTO t VALUES (9001, 0)")
            session.sql("SET statement_timeout = 1")
            with pytest.raises(QueryTimeoutError):
                session.sql(SLOW_QUERY)
            session.sql("SET statement_timeout = DEFAULT")
            # The transaction survives a statement-level failure.
            session.sql("ROLLBACK")
            assert (
                session.sql("SELECT count(*) FROM t WHERE a = 9001").scalar() == 0
            )


class TestPlanApiGovernance:
    def test_execute_registers_and_cleans_up(self, db):
        plan = db.scan_plan("t")
        result = db.execute(plan)
        assert len(result.rows) == 2000
        assert len(get_query_registry()) == 0

    def test_subquery_reuses_outer_context(self, db):
        # The scalar subquery executes through db.execute while the outer
        # statement is governed; it must not create a second context.
        db.sql("SET statement_timeout = 60000")
        value = db.sql("SELECT count(*) FROM t WHERE a < (SELECT max(b) FROM t)")
        assert value.scalar() == 6
        db.sql("SET statement_timeout = DEFAULT")
        assert len(get_query_registry()) == 0
