"""QueryContext / MemoryGovernor / QueryRegistry unit behavior."""

import threading

import pytest

from repro.errors import (
    QueryCancelledError,
    QueryKilledError,
    QueryTimeoutError,
    ResourceExhaustedError,
    RetryableError,
)
from repro.governance import (
    RESERVE_OK,
    RESERVE_SPILL,
    MemoryGovernor,
    QueryContext,
    QueryRegistry,
    activate,
    current,
    get_memory_governor,
    governed,
    set_query_registry,
)


@pytest.fixture
def registry():
    """A fresh registry installed for the test, restored afterwards."""
    fresh = QueryRegistry()
    previous = set_query_registry(fresh)
    yield fresh
    set_query_registry(previous)


class TestDeadline:
    def test_check_passes_without_deadline(self):
        ctx = QueryContext(1)
        for _ in range(10):
            ctx.check()
        assert ctx.checks == 10

    def test_expired_deadline_raises_timeout(self):
        ctx = QueryContext(1, timeout_ms=1)
        ctx.deadline = 0.0  # force the past
        with pytest.raises(QueryTimeoutError) as err:
            ctx.check()
        assert err.value.query_id == 1
        assert not err.value.retryable  # same statement would time out again

    def test_zero_timeout_means_disabled(self):
        assert QueryContext(1, timeout_ms=0).deadline is None
        assert QueryContext(1, timeout_ms=None).deadline is None


class TestCancel:
    def test_cancel_raises_cancelled(self):
        ctx = QueryContext(2)
        ctx.cancel()
        with pytest.raises(QueryCancelledError) as err:
            ctx.check()
        assert err.value.retryable

    def test_kill_reason_raises_killed(self):
        ctx = QueryContext(3)
        ctx.cancel(reason="killed")
        with pytest.raises(QueryKilledError):
            ctx.check()

    def test_first_cancel_reason_wins(self):
        ctx = QueryContext(4)
        ctx.cancel(reason="cancelled")
        ctx.cancel(reason="killed")
        with pytest.raises(QueryCancelledError) as err:
            ctx.check()
        assert not isinstance(err.value, QueryKilledError)

    def test_cancel_from_another_thread_is_seen(self):
        ctx = QueryContext(5)
        threading.Thread(target=ctx.cancel).start()
        for _ in range(1000):
            try:
                ctx.check()
            except QueryCancelledError:
                return
        pytest.fail("cancel never observed")


class TestActivation:
    def test_activate_installs_and_restores(self):
        ctx = QueryContext(6)
        assert current() is None
        with activate(ctx):
            assert current() is ctx
        assert current() is None

    def test_activation_is_thread_local(self):
        ctx = QueryContext(7)
        seen = {}

        def probe():
            seen["other"] = current()

        with activate(ctx):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["other"] is None


class TestMemory:
    def test_soft_budget_signals_spill(self):
        ctx = QueryContext(8, memory_budget_bytes=100)
        assert ctx.try_reserve(80) == RESERVE_OK
        assert ctx.try_reserve(80) == RESERVE_SPILL
        assert ctx.reserved_bytes == 80  # the refused reservation not held

    def test_hard_limit_raises_retryable(self):
        ctx = QueryContext(9, memory_limit_bytes=100)
        assert ctx.try_reserve(80) == RESERVE_OK
        with pytest.raises(ResourceExhaustedError) as err:
            ctx.try_reserve(80)
        assert isinstance(err.value, RetryableError)
        assert ctx.reserved_bytes == 80

    def test_process_governor_cap(self):
        governor = MemoryGovernor(limit_bytes=150)
        a = QueryContext(10, governor=governor)
        b = QueryContext(11, governor=governor)
        assert a.try_reserve(100) == RESERVE_OK
        with pytest.raises(ResourceExhaustedError):
            b.try_reserve(100)
        a.release(100)
        assert b.try_reserve(100) == RESERVE_OK
        b.release_all()
        assert governor.reserved_bytes == 0

    def test_release_clamps_to_held(self):
        governor = MemoryGovernor(limit_bytes=1000)
        ctx = QueryContext(12, governor=governor)
        ctx.try_reserve(100)
        ctx.release(10_000)  # buggy double-release must not underflow
        assert ctx.reserved_bytes == 0
        assert governor.reserved_bytes == 0

    def test_release_all_is_leakproof(self):
        governor = MemoryGovernor(limit_bytes=1000)
        ctx = QueryContext(13, governor=governor)
        ctx.try_reserve(100)
        ctx.try_reserve(200)
        ctx.release_all()
        assert ctx.reserved_bytes == 0
        assert governor.reserved_bytes == 0

    def test_default_governor_uncapped(self):
        assert get_memory_governor().limit_bytes is None


class TestRegistry:
    def test_ids_monotonic(self, registry):
        assert registry.next_query_id() < registry.next_query_id()

    def test_kill_running(self, registry):
        ctx = QueryContext(registry.next_query_id())
        registry.register(ctx)
        assert registry.kill(ctx.query_id)
        with pytest.raises(QueryKilledError):
            ctx.check()
        registry.deregister(ctx)

    def test_kill_unknown_id_is_false(self, registry):
        assert registry.kill(424242) is False

    def test_list_running_sorted(self, registry):
        contexts = [QueryContext(registry.next_query_id()) for _ in range(3)]
        for ctx in reversed(contexts):
            registry.register(ctx)
        assert registry.list_running() == contexts
        for ctx in contexts:
            registry.deregister(ctx)

    def test_governed_registers_then_cleans_up(self, registry):
        ctx = QueryContext(registry.next_query_id())
        with governed(ctx):
            assert registry.get(ctx.query_id) is ctx
            assert current() is ctx
        assert len(registry) == 0
        assert current() is None

    def test_governed_cleans_up_on_error(self, registry):
        governor = MemoryGovernor(limit_bytes=1000)
        ctx = QueryContext(registry.next_query_id(), governor=governor)
        with pytest.raises(RuntimeError):
            with governed(ctx):
                ctx.try_reserve(500)
                raise RuntimeError("operator died")
        assert len(registry) == 0
        assert governor.reserved_bytes == 0
