"""Tests for predicate analysis, expression rewriting, memory grants and
type inference — the supporting modules of the planner/executor."""

import numpy as np
import pytest

from repro import Database, schema, types
from repro.errors import SpillBudgetError
from repro.exec.batch import Batch
from repro.exec.expressions import (
    And,
    Arithmetic,
    Between,
    Case,
    Comparison,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Not,
    Or,
    col,
    lit,
)
from repro.exec.memory import MemoryGrant, batch_bytes
from repro.exec.predicates import (
    combine_conjuncts,
    extract_column_ranges,
    single_column_of,
    split_conjuncts,
)
from repro.planner.rewrite import map_expression, rename_columns


class TestSplitConjuncts:
    def test_none(self):
        assert split_conjuncts(None) == []

    def test_flat(self):
        expr = Comparison("=", col("a"), lit(1))
        assert split_conjuncts(expr) == [expr]

    def test_nested_ands_flatten(self):
        a = Comparison("=", col("a"), lit(1))
        b = Comparison("=", col("b"), lit(2))
        c = Comparison("=", col("c"), lit(3))
        assert split_conjuncts(And(And(a, b), c)) == [a, b, c]

    def test_or_not_split(self):
        expr = Or(Comparison("=", col("a"), lit(1)), Comparison("=", col("b"), lit(2)))
        assert split_conjuncts(expr) == [expr]

    def test_combine_inverse(self):
        a = Comparison("=", col("a"), lit(1))
        b = Comparison("=", col("b"), lit(2))
        assert combine_conjuncts([]) is None
        assert combine_conjuncts([a]) is a
        combined = combine_conjuncts([a, b])
        assert split_conjuncts(combined) == [a, b]


class TestExtractRanges:
    def test_comparison_directions(self):
        ranges = extract_column_ranges(
            [Comparison(">=", col("a"), lit(5)), Comparison("<", col("a"), lit(10))]
        )
        assert ranges["a"].low == 5
        assert ranges["a"].high == 10

    def test_flipped_sides(self):
        ranges = extract_column_ranges([Comparison(">", lit(10), col("a"))])
        assert ranges["a"].high == 10
        assert ranges["a"].low is None

    def test_equality_pins_both(self):
        ranges = extract_column_ranges([Comparison("=", col("a"), lit(7))])
        assert (ranges["a"].low, ranges["a"].high) == (7, 7)

    def test_between(self):
        ranges = extract_column_ranges([Between(col("a"), lit(1), lit(9))])
        assert (ranges["a"].low, ranges["a"].high) == (1, 9)

    def test_in_list_bounds(self):
        ranges = extract_column_ranges([InList(col("a"), [4, 2, 8])])
        assert (ranges["a"].low, ranges["a"].high) == (2, 8)

    def test_tightening(self):
        ranges = extract_column_ranges(
            [Comparison(">", col("a"), lit(0)), Comparison(">", col("a"), lit(5))]
        )
        assert ranges["a"].low == 5

    def test_column_vs_column_ignored(self):
        assert extract_column_ranges([Comparison("<", col("a"), col("b"))]) == {}

    def test_not_equal_ignored(self):
        ranges = extract_column_ranges([Comparison("!=", col("a"), lit(1))])
        assert ranges.get("a") is None or (ranges["a"].low is None and ranges["a"].high is None)

    def test_single_column_of(self):
        assert single_column_of(Comparison("=", col("a"), lit(1))) == "a"
        assert single_column_of(Comparison("=", col("a"), col("b"))) is None
        assert single_column_of(lit(1)) is None


class TestRewrite:
    def full_expr(self):
        return And(
            Or(
                Comparison("<", Arithmetic("+", col("a"), lit(1)), col("b")),
                Like(col("s"), "x%"),
            ),
            Not(IsNull(col("a"))),
            Between(col("b"), lit(0), lit(10)),
            InList(col("s"), ["p", "q"]),
            Case([(Comparison("=", col("a"), lit(1)), lit("one"))], lit("other")),
            FunctionCall("coalesce", col("a"), col("b")),
        )

    def test_rename_columns_complete(self):
        renamed = rename_columns(self.full_expr(), {"a": "t.a", "s": "t.s"})
        refs = renamed.referenced_columns()
        assert refs == {"t.a", "b", "t.s"}

    def test_rename_does_not_mutate_original(self):
        expr = self.full_expr()
        rename_columns(expr, {"a": "x"})
        assert "a" in expr.referenced_columns()

    def test_renamed_expression_still_evaluates(self):
        expr = Comparison(">", col("a"), lit(1))
        renamed = rename_columns(expr, {"a": "q"})
        batch = Batch.from_pydict({"q": [0, 5]})
        values, _ = renamed.eval_batch(batch)
        assert values.tolist() == [False, True]

    def test_map_expression_replaces_nodes(self):
        expr = Arithmetic("+", col("a"), lit(1))

        def bump_literals(node):
            from repro.exec.expressions import Literal

            if isinstance(node, Literal) and node.value == 1:
                return Literal(100)
            return None

        mapped = map_expression(expr, bump_literals)
        assert mapped.eval_row({"a": 1}) == 101
        assert expr.eval_row({"a": 1}) == 2  # original untouched


class TestMemoryGrant:
    def test_reserve_within_budget(self):
        grant = MemoryGrant(budget_bytes=100)
        assert grant.try_reserve(60)
        assert grant.reserved_bytes == 60
        assert grant.available_bytes == 40

    def test_exhaustion_returns_false(self):
        grant = MemoryGrant(budget_bytes=100)
        assert grant.try_reserve(80)
        assert not grant.try_reserve(30)

    def test_exhaustion_raises_when_spill_disabled(self):
        grant = MemoryGrant(budget_bytes=10, allow_spill=False)
        with pytest.raises(SpillBudgetError):
            grant.try_reserve(11)

    def test_release_and_peak(self):
        grant = MemoryGrant(budget_bytes=100)
        grant.try_reserve(70)
        grant.release(50)
        assert grant.reserved_bytes == 20
        assert grant.peak_bytes == 70

    def test_release_never_negative(self):
        grant = MemoryGrant()
        grant.release(10)
        assert grant.reserved_bytes == 0

    def test_batch_bytes_counts_strings(self):
        small = batch_bytes({"a": np.zeros(10, dtype=np.int64)})
        big = batch_bytes({"a": np.array(["x" * 100] * 10, dtype=object)})
        assert big > small


class TestSchemaInference:
    @pytest.fixture
    def db(self):
        database = Database()
        database.create_table(
            "t",
            schema(
                ("i", types.INT, False),
                ("d", types.DATE),
                ("m", types.decimal(2)),
                ("s", types.VARCHAR),
            ),
        )
        return database

    def test_result_dtypes_surface(self, db):
        db.sql("INSERT INTO t VALUES (1, '2024-05-05', 10.50, 'x')")
        result = db.sql("SELECT i, d, m, s FROM t")
        assert [str(d) for d in result.dtypes] == [
            "INT", "DATE", "DECIMAL(18,2)", "VARCHAR",
        ]

    def test_aggregate_result_dtypes(self, db):
        db.sql("INSERT INTO t VALUES (1, '2024-05-05', 10.50, 'x')")
        result = db.sql(
            "SELECT COUNT(*) AS n, SUM(i) AS si, SUM(m) AS sm, AVG(i) AS ai FROM t"
        )
        assert [str(d) for d in result.dtypes] == [
            "BIGINT", "BIGINT", "DECIMAL(18,2)", "FLOAT",
        ]
        assert result.rows == [(1, 1, 10.5, 1.0)]
