"""Tests for per-run predicate evaluation on RLE value-encoded segments."""

import numpy as np
import pytest

from repro import types
from repro.exec.expressions import Between, Comparison, col, lit
from repro.exec.operators.scan import ColumnStoreScan
from repro.schema import schema
from repro.storage.columnstore import ColumnStoreIndex
from repro.storage.config import StoreConfig
from repro.storage.encodings import Scheme
from repro.storage.rle import RleBlock


@pytest.fixture
def index():
    """A value-encoded, RLE-compressed column (long runs, narrow range)."""
    sch = schema(("batch_id", types.INT, False), ("payload", types.INT, False))
    store = ColumnStoreIndex(
        sch, StoreConfig(rowgroup_size=5000, bulk_load_threshold=10, reorder_rows=False)
    )
    batch_ids = np.repeat(np.arange(50, dtype=np.int32), 100)  # 50 runs of 100
    payload = np.arange(5000, dtype=np.int32) * 1000  # defeats dictionaries
    store.bulk_load_columns({"batch_id": batch_ids, "payload": payload})
    segment = next(store.directory.row_groups()).segment("batch_id")
    assert segment.scheme is Scheme.VALUE
    assert isinstance(segment.stream, RleBlock)
    return store


def collect(scan):
    rows = []
    for batch in scan.batches():
        rows.extend(batch.to_rows())
    return rows


class TestRunSpaceEvaluation:
    def test_equality_on_runs(self, index):
        scan = ColumnStoreScan(
            index, ["payload"], predicate=Comparison("=", col("batch_id"), lit(7))
        )
        rows = collect(scan)
        assert len(rows) == 100
        assert scan.stats.encoded_space_conjuncts == 1

    def test_range_on_runs(self, index):
        scan = ColumnStoreScan(
            index, ["payload"], predicate=Between(col("batch_id"), lit(10), lit(12))
        )
        assert len(collect(scan)) == 300

    def test_matches_decode_then_eval(self, index):
        predicate = Comparison(">=", col("batch_id"), lit(45))
        fast = ColumnStoreScan(index, ["payload", "batch_id"], predicate=predicate)
        slow = ColumnStoreScan(
            index, ["payload", "batch_id"], predicate=predicate, encoded_eval=False
        )
        assert sorted(collect(fast)) == sorted(collect(slow))
        assert fast.stats.encoded_space_conjuncts == 1
        assert slow.stats.encoded_space_conjuncts == 0

    def test_bitpacked_value_segment_not_run_evaluated(self, index):
        # payload is bit-packed (no runs): predicate must go residual.
        scan = ColumnStoreScan(
            index, ["batch_id"], predicate=Comparison("<", col("payload"), lit(5000))
        )
        rows = collect(scan)
        assert len(rows) == 5
        assert scan.stats.encoded_space_conjuncts == 0

    def test_nulls_respected(self):
        sch = schema(("a", types.INT),)
        store = ColumnStoreIndex(sch, StoreConfig(rowgroup_size=100, bulk_load_threshold=1))
        rows = [(0,)] * 50 + [(None,)] * 25 + [(1,)] * 25
        store.bulk_load([sch.coerce_row(r) for r in rows])
        scan = ColumnStoreScan(
            store, ["a"], predicate=Comparison("=", col("a"), lit(0))
        )
        assert len(collect(scan)) == 50
