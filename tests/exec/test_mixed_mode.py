"""Tests for mixed-mode plans: row-store and columnstore tables in one
query, adapters, and mode forcing across storage kinds."""

import pytest

from repro import Database, StoreConfig, schema, types


@pytest.fixture
def db():
    database = Database(StoreConfig(rowgroup_size=64, bulk_load_threshold=40))
    database.create_table(
        "facts",
        schema(("id", types.INT, False), ("dim_id", types.INT, False), ("v", types.FLOAT)),
        storage="columnstore",
    )
    database.create_table(
        "dims",
        schema(("did", types.INT, False), ("label", types.VARCHAR)),
        storage="rowstore",
    )
    database.bulk_load("facts", [(i, i % 7, float(i)) for i in range(300)])
    database.insert("dims", [(i, f"dim{i}") for i in range(7)])
    return database


class TestMixedModePlans:
    def test_columnstore_probe_rowstore_build(self, db):
        sql = (
            "SELECT d.label, COUNT(*) AS n FROM facts f "
            "JOIN dims d ON f.dim_id = d.did GROUP BY d.label ORDER BY d.label"
        )
        result = db.sql(sql)
        assert len(result.rows) == 7
        plan = db.explain(sql)
        # Mixed plan: the rowstore side is adapted into batches.
        assert "RowsToBatches" in plan
        assert "ColumnStoreScan" in plan

    def test_rowstore_from_clause_leading(self, db):
        sql = (
            "SELECT COUNT(*) AS n FROM dims d "
            "JOIN facts f ON f.dim_id = d.did WHERE d.label = 'dim3'"
        )
        expected = sum(1 for i in range(300) if i % 7 == 3)
        assert db.sql(sql).scalar() == expected

    def test_all_three_modes_agree(self, db):
        sql = (
            "SELECT d.label, SUM(f.v) AS s FROM facts f "
            "JOIN dims d ON f.dim_id = d.did GROUP BY d.label ORDER BY d.label"
        )
        auto = db.sql(sql)
        batch = db.sql(sql, mode="batch")
        row = db.sql(sql, mode="row")
        assert auto.rows == batch.rows == row.rows

    def test_forced_batch_adapts_rowstore_scan(self, db):
        plan = db.explain("SELECT label FROM dims", mode="batch")
        assert "RowsToBatches" in plan

    def test_forced_row_uses_row_columnstore_scan(self, db):
        plan = db.explain("SELECT id FROM facts", mode="row")
        assert "RowColumnStoreScan" in plan

    def test_left_join_mixed(self, db):
        db.insert("facts", [(999, 77, 1.0)])  # dim 77 does not exist
        sql = (
            "SELECT f.id, d.label FROM facts f "
            "LEFT JOIN dims d ON f.dim_id = d.did WHERE f.id = 999"
        )
        assert db.sql(sql).rows == [(999, None)]

    def test_delta_rows_visible_in_mixed_join(self, db):
        db.insert("facts", [(1000, 3, 5.0)])  # trickle -> delta store
        sql = (
            "SELECT COUNT(*) AS n FROM facts f JOIN dims d ON f.dim_id = d.did "
            "WHERE f.id = 1000"
        )
        assert db.sql(sql).scalar() == 1


class TestBothStorageModeChoice:
    def test_auto_prefers_columnstore_for_both(self):
        db = Database()
        db.sql("CREATE TABLE t (a INT) USING both")
        db.sql("INSERT INTO t VALUES (1)")
        plan = db.explain("SELECT a FROM t")
        assert "ColumnStoreScan" in plan

    def test_row_mode_uses_heap_for_both(self):
        db = Database()
        db.sql("CREATE TABLE t (a INT) USING both")
        db.sql("INSERT INTO t VALUES (1)")
        plan = db.explain("SELECT a FROM t", mode="row")
        assert "RowTableScan" in plan
