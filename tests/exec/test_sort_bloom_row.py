"""Tests for sort/top operators, bloom filters, spill files and the row
engine (including batch/row equivalence)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import types
from repro.exec.batch import Batch, slice_into_batches
from repro.exec.bloom import JoinBitmapFilter
from repro.exec.expressions import Comparison, col, lit
from repro.exec.operators.base import BatchOperator
from repro.exec.operators.hash_aggregate import agg, count_star
from repro.exec.operators.sort import BatchSort, BatchTop
from repro.exec.operators.union import BatchConcat
from repro.exec.row_engine import (
    BatchesToRows,
    RowFilter,
    RowHashAggregate,
    RowHashJoin,
    RowProject,
    RowSort,
    RowTableScan,
    RowTop,
    RowsToBatches,
)
from repro.exec.spill import SpillFile, partition_of
from repro.rowstore.table import RowStoreTable
from repro.schema import schema


class ListSource(BatchOperator):
    def __init__(self, data: dict, batch_size: int = 32):
        self._batch = Batch.from_pydict(data)
        self._batch_size = batch_size

    @property
    def output_names(self):
        return self._batch.names

    def batches(self):
        yield from slice_into_batches(self._batch, self._batch_size)


def collect(op):
    rows = []
    for batch in op.batches():
        rows.extend(batch.to_rows())
    return rows


class TestBatchSort:
    def test_ascending(self):
        rows = collect(BatchSort(ListSource({"a": [3, 1, 2]}), [("a", False)]))
        assert [r[0] for r in rows] == [1, 2, 3]

    def test_descending(self):
        rows = collect(BatchSort(ListSource({"a": [3, 1, 2]}), [("a", True)]))
        assert [r[0] for r in rows] == [3, 2, 1]

    def test_multi_key(self):
        data = {"a": [1, 2, 1, 2], "b": [9, 8, 7, 6]}
        rows = collect(BatchSort(ListSource(data), [("a", False), ("b", True)]))
        assert rows == [(1, 9), (1, 7), (2, 8), (2, 6)]

    def test_nulls_last_ascending(self):
        rows = collect(BatchSort(ListSource({"a": [2, None, 1]}), [("a", False)]))
        assert [r[0] for r in rows] == [1, 2, None]

    def test_string_sort(self):
        rows = collect(BatchSort(ListSource({"s": ["b", "a", "c"]}), [("s", False)]))
        assert [r[0] for r in rows] == ["a", "b", "c"]

    def test_descending_stability(self):
        data = {"k": [1, 1, 2, 2], "seq": [0, 1, 2, 3]}
        rows = collect(BatchSort(ListSource(data, batch_size=100), [("k", True)]))
        assert rows == [(2, 2), (2, 3), (1, 0), (1, 1)]

    def test_empty(self):
        assert collect(BatchSort(ListSource({"a": []}), [("a", False)])) == []


class TestBatchTop:
    def test_plain_limit(self):
        rows = collect(BatchTop(ListSource({"a": list(range(100))}, 16), 5))
        assert len(rows) == 5

    def test_limit_zero(self):
        assert collect(BatchTop(ListSource({"a": [1]}), 0)) == []

    def test_ordered_top(self):
        data = {"a": [5, 3, 9, 1, 7]}
        rows = collect(BatchTop(ListSource(data), 2, keys=[("a", False)]))
        assert rows == [(1,), (3,)]

    def test_ordered_top_descending(self):
        data = {"a": [5, 3, 9, 1, 7]}
        rows = collect(BatchTop(ListSource(data), 3, keys=[("a", True)]))
        assert rows == [(9,), (7,), (5,)]

    def test_top_matches_sort_head(self):
        rng = np.random.default_rng(5)
        data = {"a": rng.integers(0, 50, 200).tolist(), "b": list(range(200))}
        top = collect(BatchTop(ListSource(data), 10, keys=[("a", False)]))
        full = collect(BatchSort(ListSource(data), [("a", False)]))[:10]
        assert [r[0] for r in top] == [r[0] for r in full]


class TestConcat:
    def test_union_all(self):
        op = BatchConcat([ListSource({"a": [1]}), ListSource({"a": [2, 3]})])
        assert collect(op) == [(1,), (2,), (3,)]

    def test_renames_to_first_child(self):
        op = BatchConcat([ListSource({"a": [1]}), ListSource({"b": [2]})])
        assert op.output_names == ["a"]
        assert collect(op) == [(1,), (2,)]


class TestBloomFilter:
    def test_exact_for_small_int_range(self):
        bf = JoinBitmapFilter.build(np.array([10, 20, 30], dtype=np.int64))
        assert bf.kind == "exact"
        hits = bf.might_contain(np.array([10, 15, 30, 40], dtype=np.int64))
        assert hits.tolist() == [True, False, True, False]

    def test_bloom_for_wide_range(self):
        keys = np.array([0, 2**40], dtype=np.int64)
        bf = JoinBitmapFilter.build(keys)
        assert bf.kind == "bloom"
        assert bf.might_contain(keys).all()

    def test_bloom_for_strings(self):
        keys = np.array(["a", "b"], dtype=object)
        bf = JoinBitmapFilter.build(keys)
        assert bf.kind == "bloom"
        assert bf.might_contain(np.array(["a", "b"], dtype=object)).all()

    def test_bloom_false_positive_rate_reasonable(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 2**50, 1000).astype(np.int64)
        bf = JoinBitmapFilter.build(keys)
        probes = rng.integers(2**51, 2**52, 10_000).astype(np.int64)
        fp = bf.might_contain(probes).mean()
        assert fp < 0.2

    def test_empty_build(self):
        bf = JoinBitmapFilter.build(np.array([], dtype=np.int64))
        assert not bf.might_contain(np.array([1, 2], dtype=np.int64)).any()

    def test_float_keys(self):
        keys = np.array([1.5, 2.5])
        bf = JoinBitmapFilter.build(keys)
        assert bf.might_contain(np.array([1.5])).all()


class TestSpillFile:
    def test_roundtrip(self):
        spill = SpillFile()
        batch = Batch.from_pydict({"a": [1, 2], "b": ["x", None]})
        spill.append(batch)
        spill.append(batch)
        assert spill.rows == 4
        back = [b.to_rows() for b in spill.read_back()]
        assert back == [[(1, "x"), (2, None)], [(1, "x"), (2, None)]]
        spill.close()

    def test_empty_batches_skipped(self):
        spill = SpillFile()
        empty = Batch.from_pydict({"a": []})
        spill.append(empty)
        assert spill.n_batches == 0
        spill.close()

    def test_partition_of_is_deterministic(self):
        keys = np.arange(100, dtype=np.int64)
        p1 = partition_of(keys, 8)
        p2 = partition_of(keys, 8)
        assert (p1 == p2).all()
        assert set(np.unique(p1)) <= set(range(8))


@pytest.fixture
def row_table():
    sch = schema(("id", types.INT, False), ("g", types.VARCHAR), ("v", types.FLOAT))
    table = RowStoreTable(sch)
    table.insert_many(
        [sch.coerce_row((i, f"g{i % 3}", float(i))) for i in range(30)]
    )
    return table


class TestRowEngine:
    def test_scan_filter(self, row_table):
        scan = RowTableScan(
            row_table, ["id"], predicate=Comparison("<", col("id"), lit(5))
        )
        assert len(list(scan.rows())) == 5

    def test_project(self, row_table):
        scan = RowTableScan(row_table, ["id", "v"])
        proj = RowProject(scan, [("double", Comparison("=", col("id"), lit(0)))])
        first = next(proj.rows())
        assert first == {"double": True}

    def test_aggregate(self, row_table):
        scan = RowTableScan(row_table, ["g", "v"])
        aggop = RowHashAggregate(scan, ["g"], [count_star("n"), agg("sum", "v", "s")])
        rows = {r["g"]: (r["n"], r["s"]) for r in aggop.rows()}
        assert rows["g0"] == (10, sum(float(i) for i in range(0, 30, 3)))

    def test_sort_and_top(self, row_table):
        scan = RowTableScan(row_table, ["id"])
        rows = list(RowTop(scan, 3, keys=[("id", True)]).rows())
        assert [r["id"] for r in rows] == [29, 28, 27]

    def test_join(self, row_table):
        left = RowTableScan(row_table, ["id", "g"])
        sch = schema(("name", types.VARCHAR, False), ("label", types.VARCHAR))
        dim = RowStoreTable(sch)
        dim.insert_many([("g0", "zero"), ("g1", "one")])
        right = RowTableScan(dim, ["name", "label"])
        join = RowHashJoin(right, left, ["name"], ["g"])
        rows = list(join.rows())
        assert len(rows) == 20  # g2 rows have no match
        assert all(r["label"] in ("zero", "one") for r in rows)

    def test_adapters_roundtrip(self, row_table):
        scan = RowTableScan(row_table, ["id", "g"])
        adapted = BatchesToRows(RowsToBatches(scan, batch_size=7))
        assert len(list(adapted.rows())) == 30


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(-50, 50)),
        min_size=0,
        max_size=80,
    )
)
def test_engines_agree_on_grouped_aggregation(pairs):
    """Batch and row engines produce identical grouped aggregates."""
    from repro.exec.operators.hash_aggregate import BatchHashAggregate

    data = {"g": [p[0] for p in pairs], "v": [p[1] for p in pairs]}
    aggs = [count_star("n"), agg("sum", "v", "s"), agg("min", "v", "lo")]
    batch_rows = collect(BatchHashAggregate(ListSource(data, 16), ["g"], aggs))

    class DictRows:
        output_names = ["g", "v"]

        def rows(self):
            for g, v in pairs:
                yield {"g": g, "v": v}

        def child_operators(self):
            return []

    row_rows = [
        (r["g"], r["n"], r["s"], r["lo"])
        for r in RowHashAggregate(DictRows(), ["g"], aggs).rows()
    ]
    assert sorted(batch_rows) == sorted(row_rows)
