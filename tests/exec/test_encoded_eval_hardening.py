"""Regressions for encoded-eval edge cases: archived, all-NULL, and
empty-dictionary segments.

`_dict_space_eval` used to run on archived segments (decompressing the
archive once for the dictionary and again for the code stream, per
conjunct) and touched ``entry_mask[codes]`` before the empty-dictionary
early return. These tests pin the hardened behavior: archived segments
take the decoded path, and all-NULL / empty-dict segments never index an
empty mask — with identical results either way.
"""

import numpy as np
import pytest

from repro import types
from repro.exec.expressions import Comparison, col, lit
from repro.exec.operators.scan import ColumnStoreScan
from repro.schema import schema
from repro.storage.columnstore import ColumnStoreIndex
from repro.storage.config import StoreConfig
from repro.storage.encodings import Scheme
from repro.storage.rle import RleBlock


def collect(scan):
    rows = []
    for batch in scan.batches():
        rows.extend(batch.to_rows())
    return rows


def small_config():
    return StoreConfig(rowgroup_size=200, bulk_load_threshold=1, reorder_rows=False)


class TestArchivedSegments:
    @pytest.fixture
    def store(self):
        sch = schema(("k", types.VARCHAR, False), ("run", types.INT, False))
        store = ColumnStoreIndex(sch, small_config())
        rows = [(("a", "b", "c")[i % 3], i // 50) for i in range(200)]
        store.bulk_load([sch.coerce_row(r) for r in rows])
        group = next(store.directory.row_groups())
        assert group.segment("k").scheme is Scheme.DICT
        assert isinstance(group.segment("run").stream, RleBlock)
        store.archive()
        assert next(store.directory.row_groups()).segment("k").archived
        return store

    def test_archived_dict_segment_takes_decoded_path(self, store):
        predicate = Comparison("=", col("k"), lit("b"))
        scan = ColumnStoreScan(store, ["k"], predicate=predicate)
        rows = collect(scan)
        assert len(rows) == 67
        assert scan.stats.encoded_space_conjuncts == 0

    def test_archived_matches_decoded_result(self, store):
        for column, literal in (("k", "c"), ("run", 2)):
            predicate = Comparison("=", col(column), lit(literal))
            fast = ColumnStoreScan(store, ["k", "run"], predicate=predicate)
            slow = ColumnStoreScan(
                store, ["k", "run"], predicate=predicate, encoded_eval=False
            )
            assert sorted(collect(fast)) == sorted(collect(slow))


class TestDegenerateDictionaries:
    def build(self, rows):
        sch = schema(("a", types.VARCHAR), ("b", types.INT, False))
        store = ColumnStoreIndex(sch, small_config())
        store.bulk_load([sch.coerce_row(r) for r in rows])
        return store

    def test_all_null_segment_predicate_matches_nothing(self):
        store = self.build([(None, i) for i in range(100)])
        segment = next(store.directory.row_groups()).segment("a")
        assert segment.scheme is Scheme.DICT and len(segment.dictionary) == 0
        scan = ColumnStoreScan(
            store, ["b"], predicate=Comparison("=", col("a"), lit("x"))
        )
        assert collect(scan) == []

    def test_all_null_segment_matches_decoded_path(self):
        store = self.build([(None, i) for i in range(100)])
        predicate = Comparison("!=", col("a"), lit("x"))
        fast = ColumnStoreScan(store, ["a", "b"], predicate=predicate)
        slow = ColumnStoreScan(
            store, ["a", "b"], predicate=predicate, encoded_eval=False
        )
        assert sorted(collect(fast)) == sorted(collect(slow)) == []

    def test_mixed_null_segment_keeps_non_null_semantics(self):
        rows = [("v" if i % 4 else None, i) for i in range(100)]
        store = self.build(rows)
        predicate = Comparison("=", col("a"), lit("v"))
        fast = ColumnStoreScan(store, ["a", "b"], predicate=predicate)
        slow = ColumnStoreScan(
            store, ["a", "b"], predicate=predicate, encoded_eval=False
        )
        fast_rows, slow_rows = collect(fast), collect(slow)
        assert sorted(fast_rows) == sorted(slow_rows)
        assert len(fast_rows) == 75
        assert fast.stats.encoded_space_conjuncts == 1
