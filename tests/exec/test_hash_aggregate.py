"""Tests for batch hash aggregation, including the spill (local/global) path."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec.batch import Batch, slice_into_batches
from repro.exec.memory import MemoryGrant
from repro.exec.operators.base import BatchOperator
from repro.exec.operators.hash_aggregate import (
    AggregateSpec,
    BatchHashAggregate,
    agg,
    count_star,
)
from repro.exec.expressions import Arithmetic, col, lit


class ListSource(BatchOperator):
    def __init__(self, data: dict, batch_size: int = 64):
        self._batch = Batch.from_pydict(data)
        self._batch_size = batch_size

    @property
    def output_names(self):
        return self._batch.names

    def batches(self):
        yield from slice_into_batches(self._batch, self._batch_size)


def run_agg(data, keys, aggregates, **kwargs):
    op = BatchHashAggregate(ListSource(data), keys, aggregates, **kwargs)
    rows = []
    for batch in op.batches():
        rows.extend(batch.to_rows())
    return op, rows


class TestScalarAggregates:
    def test_count_star(self):
        _, rows = run_agg({"a": [1, 2, None]}, [], [count_star("n")])
        assert rows == [(3,)]

    def test_count_ignores_nulls(self):
        _, rows = run_agg({"a": [1, 2, None]}, [], [agg("count", "a", "n")])
        assert rows == [(2,)]

    def test_sum_min_max_avg(self):
        _, rows = run_agg(
            {"a": [1, 2, 3, None]},
            [],
            [
                agg("sum", "a", "s"),
                agg("min", "a", "lo"),
                agg("max", "a", "hi"),
                agg("avg", "a", "mean"),
            ],
        )
        assert rows == [(6, 1, 3, 2.0)]

    def test_empty_input_yields_one_row(self):
        _, rows = run_agg({"a": []}, [], [count_star("n"), agg("sum", "a", "s")])
        assert rows == [(0, None)]

    def test_all_null_sum_is_null(self):
        _, rows = run_agg({"a": [None, None]}, [], [agg("sum", "a", "s")])
        assert rows == [(None,)]

    def test_aggregate_over_expression(self):
        spec = AggregateSpec("sum", Arithmetic("*", col("a"), lit(2)), "double_sum")
        _, rows = run_agg({"a": [1, 2, 3]}, [], [spec])
        assert rows == [(12,)]

    def test_float_sum(self):
        _, rows = run_agg({"a": [1.5, 2.5]}, [], [agg("sum", "a", "s")])
        assert rows == [(4.0,)]


class TestGroupedAggregates:
    def test_single_int_key(self):
        _, rows = run_agg(
            {"g": [1, 2, 1, 2, 1], "v": [10, 20, 30, 40, 50]},
            ["g"],
            [count_star("n"), agg("sum", "v", "s")],
        )
        assert sorted(rows) == [(1, 3, 90), (2, 2, 60)]

    def test_string_key(self):
        _, rows = run_agg(
            {"g": ["a", "b", "a"], "v": [1, 2, 3]},
            ["g"],
            [agg("max", "v", "m")],
        )
        assert sorted(rows) == [("a", 3), ("b", 2)]

    def test_null_group_key_forms_one_group(self):
        _, rows = run_agg(
            {"g": [None, None, 1], "v": [1, 2, 3]},
            ["g"],
            [count_star("n")],
        )
        assert sorted(rows, key=repr) == sorted([(None, 2), (1, 1)], key=repr)

    def test_composite_keys(self):
        _, rows = run_agg(
            {"g1": [1, 1, 2], "g2": ["x", "y", "x"], "v": [1, 2, 3]},
            ["g1", "g2"],
            [agg("sum", "v", "s")],
        )
        assert sorted(rows) == [(1, "x", 1), (1, "y", 2), (2, "x", 3)]

    def test_min_max_strings(self):
        _, rows = run_agg(
            {"g": [1, 1], "s": ["pear", "apple"]},
            ["g"],
            [agg("min", "s", "lo"), agg("max", "s", "hi")],
        )
        assert rows == [(1, "apple", "pear")]

    def test_empty_grouped_input_yields_nothing(self):
        _, rows = run_agg({"g": [], "v": []}, ["g"], [count_star("n")])
        assert rows == []

    def test_duplicate_output_names_rejected(self):
        with pytest.raises(ExecutionError):
            BatchHashAggregate(
                ListSource({"g": [1]}), ["g"], [count_star("g")]
            )


class TestSpilling:
    def make_data(self, n=5000, groups=500):
        rng = np.random.default_rng(9)
        return {
            "g": rng.integers(0, groups, n).tolist(),
            "v": rng.integers(0, 100, n).tolist(),
        }

    def test_spill_matches_in_memory(self):
        data = self.make_data()
        aggs = [count_star("n"), agg("sum", "v", "s"), agg("min", "v", "lo"),
                agg("max", "v", "hi"), agg("avg", "v", "mean")]
        _, expected = run_agg(data, ["g"], aggs)
        op, got = run_agg(data, ["g"], aggs, grant=MemoryGrant(budget_bytes=8_000))
        assert op.stats.spilled
        assert op.stats.partials_spilled > 0
        assert sorted(got) == sorted(expected)

    def test_spill_with_string_keys(self):
        data = self.make_data(2000, 300)
        data["g"] = [f"group-{g}" for g in data["g"]]
        aggs = [agg("sum", "v", "s")]
        _, expected = run_agg(data, ["g"], aggs)
        op, got = run_agg(data, ["g"], aggs, grant=MemoryGrant(budget_bytes=4_000))
        assert op.stats.spilled
        assert sorted(got) == sorted(expected)

    def test_group_count_stat(self):
        data = self.make_data(1000, 50)
        op, rows = run_agg(data, ["g"], [count_star("n")])
        assert op.stats.groups == len(rows)
