"""Tests for expressions: vectorized vs row evaluation, NULL semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import types
from repro.exec.batch import Batch
from repro.exec.expressions import (
    And,
    Arithmetic,
    Between,
    Case,
    Column,
    Comparison,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    col,
    compile_like,
    lit,
    predicate_mask,
    predicate_true,
)


@pytest.fixture
def batch():
    return Batch.from_pydict(
        {
            "x": [1, 2, None, 4],
            "y": [10.0, None, 30.0, 40.0],
            "s": ["apple", "banana", "apricot", None],
            "flag": [True, False, True, None],
        }
    )


def rows_of(batch):
    names = batch.names
    return [dict(zip(names, row)) for row in batch.to_rows()]


def check_consistency(expr, batch):
    """Batch and row evaluation must agree on every row."""
    values, nulls = expr.eval_batch(batch)
    for i, row in enumerate(rows_of(batch)):
        row_result = expr.eval_row(row)
        if nulls is not None and nulls[i]:
            assert row_result is None, f"row {i}: batch NULL but row {row_result!r}"
        else:
            batch_value = values[i]
            batch_value = batch_value.item() if hasattr(batch_value, "item") else batch_value
            assert row_result == pytest.approx(batch_value), f"row {i}"


class TestBasics:
    def test_column(self, batch):
        values, nulls = col("x").eval_batch(batch)
        assert values[0] == 1
        assert nulls.tolist() == [False, False, True, False]

    def test_literal(self, batch):
        values, nulls = lit(7).eval_batch(batch)
        assert (values == 7).all()
        assert nulls is None

    def test_null_literal(self, batch):
        _, nulls = lit(None).eval_batch(batch)
        assert nulls.all()

    def test_string_literal(self, batch):
        values, _ = lit("z").eval_batch(batch)
        assert values.dtype == object


class TestArithmetic:
    def test_add(self, batch):
        check_consistency(Arithmetic("+", col("x"), lit(1)), batch)

    def test_multiply_columns(self, batch):
        check_consistency(Arithmetic("*", col("x"), col("y")), batch)

    def test_divide_by_zero_is_null(self, batch):
        expr = Arithmetic("/", col("x"), lit(0))
        _, nulls = expr.eval_batch(batch)
        assert nulls.tolist() == [True, True, True, True]
        assert expr.eval_row({"x": 5}) is None

    def test_modulo(self, batch):
        check_consistency(Arithmetic("%", col("x"), lit(3)), batch)

    def test_null_propagates(self, batch):
        expr = Arithmetic("+", col("x"), col("y"))
        _, nulls = expr.eval_batch(batch)
        assert nulls.tolist() == [False, True, True, False]


class TestComparisons:
    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_ops_consistent(self, batch, op):
        check_consistency(Comparison(op, col("x"), lit(2)), batch)

    def test_string_comparison(self, batch):
        mask = predicate_mask(Comparison(">", col("s"), lit("apple")), batch)
        assert mask.tolist() == [False, True, True, False]

    def test_null_comparison_not_true(self, batch):
        mask = predicate_mask(Comparison("=", col("x"), lit(1)), batch)
        assert mask.tolist() == [True, False, False, False]


class TestBooleans:
    def test_and_kleene(self, batch):
        # x > 0 AND y > 15: row1 (2, None) -> NULL; row2 (None, 30) -> NULL
        expr = And(Comparison(">", col("x"), lit(0)), Comparison(">", col("y"), lit(15.0)))
        check_consistency(expr, batch)
        mask = predicate_mask(expr, batch)
        assert mask.tolist() == [False, False, False, True]

    def test_and_false_dominates_null(self):
        b = Batch.from_pydict({"a": [None], "b": [5]})
        expr = And(Comparison(">", col("b"), lit(10)), Comparison("=", col("a"), lit(1)))
        values, nulls = expr.eval_batch(b)
        # FALSE AND NULL = FALSE, not NULL.
        assert nulls is None or not nulls[0]
        assert not values[0]
        assert expr.eval_row({"a": None, "b": 5}) is False

    def test_or_true_dominates_null(self):
        b = Batch.from_pydict({"a": [None], "b": [5]})
        expr = Or(Comparison("<", col("b"), lit(10)), Comparison("=", col("a"), lit(1)))
        values, nulls = expr.eval_batch(b)
        assert values[0]
        assert nulls is None or not nulls[0]
        assert expr.eval_row({"a": None, "b": 5}) is True

    def test_or_null_when_undetermined(self):
        b = Batch.from_pydict({"a": [None]})
        expr = Or(Comparison("=", col("a"), lit(1)), Comparison("=", col("a"), lit(2)))
        assert expr.eval_row({"a": None}) is None
        _, nulls = expr.eval_batch(b)
        assert nulls[0]

    def test_not(self, batch):
        check_consistency(Not(Comparison(">", col("x"), lit(2))), batch)


class TestSpecialPredicates:
    def test_is_null(self, batch):
        mask = predicate_mask(IsNull(col("x")), batch)
        assert mask.tolist() == [False, False, True, False]

    def test_is_not_null(self, batch):
        mask = predicate_mask(IsNull(col("x"), negated=True), batch)
        assert mask.tolist() == [True, True, False, True]

    def test_between(self, batch):
        check_consistency(Between(col("x"), lit(2), lit(4)), batch)

    def test_in_list_ints(self, batch):
        check_consistency(InList(col("x"), [1, 4]), batch)

    def test_in_list_strings(self, batch):
        mask = predicate_mask(InList(col("s"), ["apple", "apricot"]), batch)
        assert mask.tolist() == [True, False, True, False]

    def test_like(self, batch):
        mask = predicate_mask(Like(col("s"), "ap%"), batch)
        assert mask.tolist() == [True, False, True, False]

    def test_like_underscore(self, batch):
        mask = predicate_mask(Like(col("s"), "_anana"), batch)
        assert mask.tolist() == [False, True, False, False]

    def test_not_like(self, batch):
        mask = predicate_mask(Like(col("s"), "ap%", negated=True), batch)
        assert mask.tolist() == [False, True, False, False]

    def test_like_escapes_regex_chars(self):
        assert compile_like("a.c").match("a.c")
        assert not compile_like("a.c").match("abc")


class TestCase:
    def test_searched_case(self, batch):
        expr = Case(
            [
                (Comparison("<", col("x"), lit(2)), lit("small")),
                (Comparison("<", col("x"), lit(4)), lit("mid")),
            ],
            default=lit("big"),
        )
        values, nulls = expr.eval_batch(batch)
        assert values[0] == "small"
        assert values[1] == "mid"
        assert values[3] == "big"
        # Row with NULL x falls through to the default.
        assert values[2] == "big"

    def test_case_without_default_gives_null(self, batch):
        expr = Case([(Comparison("<", col("x"), lit(2)), lit(1))])
        _, nulls = expr.eval_batch(batch)
        assert nulls.tolist() == [False, True, True, True]

    def test_case_row_consistency(self, batch):
        expr = Case(
            [(Comparison(">", col("x"), lit(2)), Arithmetic("*", col("x"), lit(10)))],
            default=lit(0),
        )
        check_consistency(expr, batch)


class TestFunctions:
    def test_year_month_day(self):
        d = types.DATE.coerce("2024-03-15")
        b = Batch.from_pydict({"d": [d]}, dtypes={"d": np.dtype(np.int32)})
        assert FunctionCall("year", col("d")).eval_batch(b)[0][0] == 2024
        assert FunctionCall("month", col("d")).eval_batch(b)[0][0] == 3
        assert FunctionCall("day", col("d")).eval_batch(b)[0][0] == 15
        assert FunctionCall("year", col("d")).eval_row({"d": d}) == 2024

    def test_pre_epoch_dates(self):
        d = types.DATE.coerce("1965-07-04")
        b = Batch.from_pydict({"d": [d]}, dtypes={"d": np.dtype(np.int32)})
        assert FunctionCall("year", col("d")).eval_batch(b)[0][0] == 1965
        assert FunctionCall("month", col("d")).eval_batch(b)[0][0] == 7

    def test_string_functions(self, batch):
        upper, _ = FunctionCall("upper", col("s")).eval_batch(batch)
        assert upper[0] == "APPLE"
        length, _ = FunctionCall("length", col("s")).eval_batch(batch)
        assert length[1] == 6

    def test_abs(self):
        b = Batch.from_pydict({"v": [-3, 4]})
        values, _ = FunctionCall("abs", col("v")).eval_batch(b)
        assert values.tolist() == [3, 4]

    def test_referenced_columns(self):
        expr = And(
            Comparison("=", col("a"), lit(1)),
            Or(Comparison("<", col("b"), col("c")), IsNull(col("a"))),
        )
        assert expr.referenced_columns() == {"a", "b", "c"}


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(-100, 100)),
            st.one_of(st.none(), st.integers(-100, 100)),
        ),
        min_size=1,
        max_size=50,
    ),
    st.integers(-100, 100),
)
def test_predicate_batch_row_equivalence(pairs, threshold):
    """predicate_mask and predicate_true agree on arbitrary data."""
    batch = Batch.from_pydict(
        {"a": [p[0] for p in pairs], "b": [p[1] for p in pairs]}
    )
    expr = Or(
        And(
            Comparison(">", col("a"), lit(threshold)),
            Comparison("<=", col("b"), lit(threshold)),
        ),
        IsNull(col("b")),
    )
    mask = predicate_mask(expr, batch)
    for i, (a, b) in enumerate(pairs):
        assert mask[i] == predicate_true(expr, {"a": a, "b": b})
