"""Tests for the batch hash join: all join types, bitmaps, spilling."""

import numpy as np
import pytest

from repro.exec.batch import Batch, slice_into_batches
from repro.exec.memory import MemoryGrant
from repro.exec.operators.base import BatchOperator
from repro.exec.operators.hash_join import BatchHashJoin
from repro.errors import ExecutionError, SpillBudgetError


class ListSource(BatchOperator):
    """Test helper: serves a fixed pydict as batches."""

    def __init__(self, data: dict, batch_size: int = 100):
        self._batch = Batch.from_pydict(data)
        self._batch_size = batch_size

    @property
    def output_names(self):
        return self._batch.names

    def batches(self):
        yield from slice_into_batches(self._batch, self._batch_size)


def run_join(build_data, probe_data, build_keys, probe_keys, **kwargs):
    join = BatchHashJoin(
        ListSource(build_data), ListSource(probe_data), build_keys, probe_keys, **kwargs
    )
    rows = []
    for batch in join.batches():
        rows.extend(batch.to_rows())
    return join, rows


class TestInnerJoin:
    def test_basic(self):
        join, rows = run_join(
            {"id": [1, 2], "name": ["a", "b"]},
            {"k": [2, 1, 3], "v": [20, 10, 30]},
            ["id"],
            ["k"],
        )
        # Output = probe columns then build columns.
        assert sorted(rows) == [(1, 10, 1, "a"), (2, 20, 2, "b")]
        assert join.stats.output_rows == 2

    def test_duplicates_multiply(self):
        _, rows = run_join(
            {"id": [1, 1], "tag": ["x", "y"]},
            {"k": [1, 1], "v": [10, 20]},
            ["id"],
            ["k"],
        )
        assert len(rows) == 4

    def test_null_keys_never_match(self):
        _, rows = run_join(
            {"id": [1, None], "name": ["a", "n"]},
            {"k": [1, None], "v": [10, 20]},
            ["id"],
            ["k"],
        )
        assert len(rows) == 1
        assert rows[0][1] == 10

    def test_string_keys(self):
        _, rows = run_join(
            {"name": ["a", "b"], "x": [1, 2]},
            {"s": ["b", "c"], "y": [20, 30]},
            ["name"],
            ["s"],
        )
        assert rows == [("b", 20, "b", 2)]

    def test_composite_keys(self):
        _, rows = run_join(
            {"a": [1, 1], "b": ["x", "y"], "payload": [100, 200]},
            {"c": [1, 1], "d": ["y", "z"], "v": [10, 20]},
            ["a", "b"],
            ["c", "d"],
        )
        assert rows == [(1, "y", 10, 1, "y", 200)]

    def test_empty_build(self):
        _, rows = run_join({"id": [], "n": []}, {"k": [1], "v": [2]}, ["id"], ["k"])
        assert rows == []

    def test_name_collision_rejected(self):
        with pytest.raises(ExecutionError):
            BatchHashJoin(
                ListSource({"id": [1]}), ListSource({"id": [1]}), ["id"], ["id"]
            )

    def test_key_arity_checked(self):
        with pytest.raises(ExecutionError):
            BatchHashJoin(
                ListSource({"a": [1]}), ListSource({"b": [1]}), ["a"], ["b", "b"]
            )


class TestOuterSemiAnti:
    BUILD = {"id": [1, 2], "name": ["a", "b"]}
    PROBE = {"k": [1, 3, None], "v": [10, 30, 40]}

    def test_left_outer(self):
        _, rows = run_join(self.BUILD, self.PROBE, ["id"], ["k"], join_type="left")
        assert sorted(rows, key=lambda r: r[1]) == [
            (1, 10, 1, "a"),
            (3, 30, None, None),
            (None, 40, None, None),
        ]

    def test_semi(self):
        _, rows = run_join(self.BUILD, self.PROBE, ["id"], ["k"], join_type="semi")
        assert rows == [(1, 10)]

    def test_anti(self):
        _, rows = run_join(self.BUILD, self.PROBE, ["id"], ["k"], join_type="anti")
        assert sorted(rows, key=lambda r: r[1]) == [(3, 30), (None, 40)]

    def test_semi_no_duplicate_probe_rows(self):
        _, rows = run_join(
            {"id": [1, 1], "n": ["a", "b"]},
            {"k": [1], "v": [10]},
            ["id"],
            ["k"],
            join_type="semi",
        )
        assert rows == [(1, 10)]


class TestBitmap:
    def test_bitmap_created_on_build(self):
        join, _ = run_join(
            {"id": [5, 9], "n": ["a", "b"]},
            {"k": [5, 6], "v": [1, 2]},
            ["id"],
            ["k"],
            create_bitmap=True,
        )
        assert join.bitmap is not None
        hits = join.bitmap.might_contain(np.array([5, 6, 9], dtype=np.int64))
        assert hits.tolist() == [True, False, True]

    def test_no_bitmap_when_disabled(self):
        join, _ = run_join(
            {"id": [1], "n": ["a"]}, {"k": [1], "v": [2]}, ["id"], ["k"],
            create_bitmap=False,
        )
        assert join.bitmap is None


class TestSpilling:
    def big_data(self, n=3000):
        rng = np.random.default_rng(42)
        build = {
            "id": list(range(n)),
            "name": [f"value-{i}" for i in range(n)],
        }
        probe = {
            "k": rng.integers(0, n, n * 2).tolist(),
            "v": list(range(n * 2)),
        }
        return build, probe

    def test_spill_matches_in_memory(self):
        build, probe = self.big_data()
        _, expected = run_join(build, probe, ["id"], ["k"])
        join, got = run_join(
            build, probe, ["id"], ["k"], grant=MemoryGrant(budget_bytes=10_000)
        )
        assert join.stats.spilled
        assert join.stats.build_rows_spilled == 3000
        assert sorted(got) == sorted(expected)

    def test_spill_left_join(self):
        build, probe = self.big_data(500)
        probe["k"][0] = 10**9  # unmatched
        _, expected = run_join(build, probe, ["id"], ["k"], join_type="left")
        join, got = run_join(
            build, probe, ["id"], ["k"], join_type="left",
            grant=MemoryGrant(budget_bytes=5_000),
        )
        assert join.stats.spilled
        assert sorted(got, key=repr) == sorted(expected, key=repr)

    def test_spill_disabled_raises(self):
        build, probe = self.big_data(500)
        with pytest.raises(SpillBudgetError):
            run_join(
                build, probe, ["id"], ["k"],
                grant=MemoryGrant(budget_bytes=1_000, allow_spill=False),
            )

    def test_no_spill_within_grant(self):
        build, probe = self.big_data(100)
        join, _ = run_join(build, probe, ["id"], ["k"], grant=MemoryGrant())
        assert not join.stats.spilled
