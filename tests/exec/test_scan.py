"""Tests for the columnstore scan operator: segment elimination, encoded-
space predicate evaluation, bitmap pushdown, delete masks, delta scans."""

import numpy as np
import pytest

from repro import types
from repro.exec.bloom import JoinBitmapFilter
from repro.exec.expressions import And, Between, Comparison, InList, Like, col, lit
from repro.exec.operators.scan import BitmapProbe, ColumnStoreScan
from repro.schema import schema
from repro.storage.columnstore import GROUP, ColumnStoreIndex, RowLocator
from repro.storage.config import StoreConfig


@pytest.fixture
def sch():
    return schema(
        ("id", types.INT, False),
        ("day", types.INT, False),
        ("name", types.VARCHAR),
        ("v", types.FLOAT),
    )


@pytest.fixture
def index(sch):
    """200 rows in 4 row groups of 50, ordered by day (0..199)."""
    idx = ColumnStoreIndex(
        sch, StoreConfig(rowgroup_size=50, bulk_load_threshold=10, reorder_rows=False)
    )
    rows = [
        sch.coerce_row((i, i, f"name{i % 10}", float(i % 7))) for i in range(200)
    ]
    idx.bulk_load(rows)
    return idx


def collect(scan):
    rows = []
    for batch in scan.batches():
        rows.extend(batch.to_rows())
    return rows


class TestBasicScan:
    def test_full_scan(self, index):
        scan = ColumnStoreScan(index, ["id", "name"])
        rows = collect(scan)
        assert len(rows) == 200
        assert scan.stats.units_seen == 4

    def test_batch_size_respected(self, index):
        scan = ColumnStoreScan(index, ["id"], batch_size=16)
        sizes = [b.row_count for b in scan.batches()]
        assert max(sizes) <= 16
        assert sum(sizes) == 200

    def test_predicate(self, index):
        scan = ColumnStoreScan(index, ["id"], predicate=Comparison("<", col("v"), lit(1.0)))
        rows = collect(scan)
        assert all(r[0] % 7 == 0 for r in rows)


class TestSegmentElimination:
    def test_range_predicate_eliminates(self, index):
        # day in [0..49] lives entirely in row group 0.
        scan = ColumnStoreScan(
            index, ["id"], predicate=Between(col("day"), lit(10), lit(20))
        )
        rows = collect(scan)
        assert len(rows) == 11
        assert scan.stats.units_eliminated == 3
        assert scan.stats.rows_scanned == 50

    def test_equality_eliminates(self, index):
        scan = ColumnStoreScan(
            index, ["id"], predicate=Comparison("=", col("day"), lit(175))
        )
        collect(scan)
        assert scan.stats.units_eliminated == 3

    def test_in_list_prunes_by_range(self, index):
        scan = ColumnStoreScan(index, ["id"], predicate=InList(col("day"), [5, 30]))
        rows = collect(scan)
        assert len(rows) == 2
        assert scan.stats.units_eliminated == 3

    def test_no_elimination_without_ranges(self, index):
        scan = ColumnStoreScan(index, ["id"], predicate=Like(col("name"), "name1%"))
        collect(scan)
        assert scan.stats.units_eliminated == 0

    def test_elimination_can_be_disabled(self, index):
        scan = ColumnStoreScan(
            index,
            ["id"],
            predicate=Between(col("day"), lit(10), lit(20)),
            segment_elimination=False,
        )
        rows = collect(scan)
        assert len(rows) == 11
        assert scan.stats.units_eliminated == 0
        assert scan.stats.rows_scanned == 200


class TestEncodedEval:
    def test_string_equality_uses_dictionary(self, index):
        scan = ColumnStoreScan(
            index, ["id"], predicate=Comparison("=", col("name"), lit("name3"))
        )
        rows = collect(scan)
        assert len(rows) == 20
        assert scan.stats.encoded_space_conjuncts == 4  # one per row group

    def test_like_on_encoded_data(self, index):
        scan = ColumnStoreScan(index, ["id"], predicate=Like(col("name"), "name_"))
        rows = collect(scan)
        assert len(rows) == 200
        assert scan.stats.encoded_space_conjuncts == 4

    def test_disabled_encoded_eval_same_result(self, index):
        predicate = InList(col("name"), ["name1", "name2"])
        fast = ColumnStoreScan(index, ["id"], predicate=predicate)
        slow = ColumnStoreScan(index, ["id"], predicate=predicate, encoded_eval=False)
        assert collect(fast) == collect(slow)
        assert fast.stats.encoded_space_conjuncts > 0
        assert slow.stats.encoded_space_conjuncts == 0

    def test_multi_column_conjunct_not_encoded(self, index):
        scan = ColumnStoreScan(
            index, ["id"], predicate=Comparison("<", col("id"), col("day"))
        )
        collect(scan)
        assert scan.stats.encoded_space_conjuncts == 0


class TestDeletes:
    def test_deleted_rows_filtered(self, index):
        group = next(index.directory.row_groups())
        for position in range(5):
            index.delete(RowLocator(GROUP, group.group_id, position))
        scan = ColumnStoreScan(index, ["id"])
        rows = collect(scan)
        assert len(rows) == 195
        assert scan.stats.rows_rejected_deleted == 5


class TestDeltaScan:
    def test_delta_rows_included(self, index, sch):
        index.insert(sch.coerce_row((999, 999, "fresh", 1.0)))
        scan = ColumnStoreScan(index, ["id", "name"])
        rows = collect(scan)
        assert (999, "fresh") in rows
        assert scan.stats.delta_rows_scanned == 1

    def test_predicate_applies_to_delta(self, index, sch):
        index.insert(sch.coerce_row((999, 999, "fresh", 1.0)))
        scan = ColumnStoreScan(
            index, ["id"], predicate=Comparison("=", col("name"), lit("fresh"))
        )
        assert collect(scan) == [(999,)]

    def test_deleted_delta_row_not_returned(self, index, sch):
        locator = index.insert(sch.coerce_row((999, 999, "fresh", 1.0)))
        index.delete(locator)
        scan = ColumnStoreScan(index, ["id"])
        assert len(collect(scan)) == 200


class TestBitmapPushdown:
    def test_bitmap_rejects_rows(self, index):
        bitmap = JoinBitmapFilter.build(np.array([3, 5, 7], dtype=np.int64))
        scan = ColumnStoreScan(
            index, ["id"], bitmap_probes=[BitmapProbe("day", bitmap)]
        )
        rows = collect(scan)
        assert sorted(r[0] for r in rows) == [3, 5, 7]
        assert scan.stats.rows_rejected_by_bitmap == 197


class TestLocators:
    def test_locators_track_rows(self, index):
        scan = ColumnStoreScan(
            index,
            ["id"],
            predicate=Comparison("=", col("day"), lit(60)),
            include_locators=True,
        )
        batches = list(scan.batches())
        locators = [loc for b in batches for loc in (b.locators or [])]
        assert len(locators) == 1
        assert locators[0].kind == GROUP
        row = index.get_row(locators[0])
        assert row[0] == 60
