"""Encoded-space aggregation: code-space GROUP BY, run-granular scalars.

Every test compares the encoded fast path against the decoded path with
exact equality (no rounding): the fast path must be bit-identical, not
merely close. The Hypothesis property sweeps dict/RLE/bitpack segments
with NULLs, deletes, and trickle-inserted delta rows.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import types
from repro.exec.expressions import Between, Comparison, col, lit
from repro.exec.operators.hash_aggregate import BatchHashAggregate, agg, count_star
from repro.exec.operators.scan import (
    ColumnStoreScan,
    build_encoded_agg_request,
)
from repro.observability.registry import get_registry
from repro.schema import schema
from repro.storage.columnstore import GROUP, ColumnStoreIndex, RowLocator
from repro.storage.config import StoreConfig
from repro.storage.encodings import Scheme
from repro.storage.rle import RleBlock


def run_agg(store, columns, group_keys, aggs, predicate=None, encoded=True):
    scan = ColumnStoreScan(store, columns, predicate=predicate)
    op = BatchHashAggregate(scan, group_keys, aggs)
    if encoded:
        op.encoded_request = build_encoded_agg_request(group_keys, aggs, columns)
        assert op.encoded_request is not None
    rows = []
    for batch in op.batches():
        rows.extend(batch.to_rows())
    return rows, scan


def sort_key(row):
    return tuple((v is None, str(type(v)), 0 if v is None else v) for v in row)


def assert_same(fast_rows, slow_rows):
    assert sorted(fast_rows, key=sort_key) == sorted(slow_rows, key=sort_key)


@pytest.fixture
def rle_store():
    """run: value-encoded RLE; payload: bit-packed (defeats runs/dicts)."""
    sch = schema(("run", types.INT, False), ("payload", types.INT, False))
    store = ColumnStoreIndex(
        sch, StoreConfig(rowgroup_size=5000, bulk_load_threshold=10, reorder_rows=False)
    )
    runs = np.repeat(np.arange(50, dtype=np.int64), 100)
    payload = np.arange(5000, dtype=np.int64) * 997
    store.bulk_load_columns({"run": runs, "payload": payload})
    segment = next(store.directory.row_groups()).segment("run")
    assert segment.scheme is Scheme.VALUE
    assert isinstance(segment.stream, RleBlock)
    return store


@pytest.fixture
def dict_store():
    """k: VARCHAR dictionary with NULLs; g: small-int dictionary; v nullable."""
    sch = schema(("k", types.VARCHAR), ("g", types.INT, False), ("v", types.INT))
    store = ColumnStoreIndex(
        sch, StoreConfig(rowgroup_size=400, bulk_load_threshold=1, reorder_rows=False)
    )
    # Wide-range, low-cardinality ints with no common scale so dictionary
    # encoding beats value (bit-pack) encoding for the g segment.
    primes = (3, 7919, 104729, 1299709, 15485863)
    rows = [
        (("a", "b", "c", None)[i % 4], primes[i % 5], i * 3 if i % 7 else None)
        for i in range(1000)
    ]
    store.bulk_load([sch.coerce_row(r) for r in rows])
    group = next(store.directory.row_groups())
    assert group.segment("k").scheme is Scheme.DICT
    assert group.segment("g").scheme is Scheme.DICT
    return store


SCALAR_AGGS = [
    count_star("n"),
    agg("count", "run", "c"),
    agg("sum", "run", "s"),
    agg("min", "run", "lo"),
    agg("max", "run", "hi"),
    agg("avg", "run", "mean"),
]


class TestRunGranularScalars:
    def test_scalar_aggregates_without_decoding(self, rle_store):
        fast, fast_scan = run_agg(rle_store, ["run"], [], SCALAR_AGGS)
        slow, slow_scan = run_agg(rle_store, ["run"], [], SCALAR_AGGS, encoded=False)
        assert fast == slow
        # One run processed per RLE run, far fewer than rows aggregated.
        assert 0 < fast_scan.stats.agg_runs_processed < 5000 / 10
        assert fast_scan.stats.agg_fallbacks == 0
        assert fast_scan.stats.columns_decoded == 0
        assert slow_scan.stats.columns_decoded > 0

    def test_predicate_folds_into_run_weights(self, rle_store):
        predicate = Comparison(">=", col("run"), lit(40))
        fast, fast_scan = run_agg(rle_store, ["run"], [], SCALAR_AGGS, predicate)
        slow, _ = run_agg(rle_store, ["run"], [], SCALAR_AGGS, predicate, encoded=False)
        assert fast == slow
        assert fast[0][0] == 1000  # 10 runs of 100 survive
        assert fast_scan.stats.columns_decoded == 0

    def test_deletes_fold_into_run_weights(self, rle_store):
        group = next(rle_store.directory.row_groups())
        for position in range(0, 5000, 3):
            rle_store.delete(RowLocator(GROUP, group.group_id, position))
        fast, _ = run_agg(rle_store, ["run"], [], SCALAR_AGGS)
        slow, _ = run_agg(rle_store, ["run"], [], SCALAR_AGGS, encoded=False)
        assert fast == slow

    def test_delta_rows_merge_via_fallback(self, rle_store):
        sch = rle_store.schema
        for i in range(25):
            rle_store.insert(sch.coerce_row((1000 + i, i)))
        fast, fast_scan = run_agg(rle_store, ["run"], [], SCALAR_AGGS)
        slow, _ = run_agg(rle_store, ["run"], [], SCALAR_AGGS, encoded=False)
        assert fast == slow
        assert fast_scan.stats.agg_fallbacks >= 1  # the delta unit

    def test_bitpacked_arg_falls_back_to_decode(self, rle_store):
        aggs = [agg("sum", "payload", "s"), agg("min", "payload", "lo")]
        fast, fast_scan = run_agg(rle_store, ["payload"], [], aggs)
        slow, _ = run_agg(rle_store, ["payload"], [], aggs, encoded=False)
        assert fast == slow
        # The bit-packed argument is decoded, but inside the encoded unit
        # (no whole-unit fallback) and runs aren't claimed for it.
        assert fast_scan.stats.agg_fallbacks == 0
        assert fast_scan.stats.agg_runs_processed == 0
        assert fast_scan.stats.columns_decoded == 1


class TestCodeSpaceGroupBy:
    GROUP_AGGS = [count_star("n"), agg("sum", "v", "s"), agg("max", "v", "hi")]

    def test_group_by_dict_codes(self, dict_store):
        before = get_registry().counter("storage.scan.agg_code_space_groups")
        fast, fast_scan = run_agg(dict_store, ["k", "v"], ["k"], self.GROUP_AGGS)
        slow, _ = run_agg(dict_store, ["k", "v"], ["k"], self.GROUP_AGGS, encoded=False)
        assert_same(fast, slow)
        assert {row[0] for row in fast} == {"a", "b", "c", None}
        assert fast_scan.stats.agg_fallbacks == 0
        assert get_registry().counter("storage.scan.agg_code_space_groups") > before

    def test_multi_key_group_by(self, dict_store):
        columns = ["k", "g", "v"]
        fast, scan = run_agg(dict_store, columns, ["k", "g"], self.GROUP_AGGS)
        slow, _ = run_agg(dict_store, columns, ["k", "g"], self.GROUP_AGGS, encoded=False)
        assert_same(fast, slow)
        assert len(fast) == 20  # 4 k-values x 5 g-values
        assert scan.stats.agg_fallbacks == 0

    def test_group_by_with_predicate_and_deletes(self, dict_store):
        for group in dict_store.directory.row_groups():
            for position in range(0, group.row_count, 5):
                dict_store.delete(RowLocator(GROUP, group.group_id, position))
        predicate = Comparison("!=", col("k"), lit("b"))
        columns = ["k", "v"]
        fast, _ = run_agg(dict_store, columns, ["k"], self.GROUP_AGGS, predicate)
        slow, _ = run_agg(dict_store, columns, ["k"], self.GROUP_AGGS, predicate, encoded=False)
        assert_same(fast, slow)
        assert all(row[0] != "b" for row in fast)

    def test_archived_group_falls_back(self, dict_store):
        dict_store.archive()
        fast, scan = run_agg(dict_store, ["k", "v"], ["k"], self.GROUP_AGGS)
        slow, _ = run_agg(dict_store, ["k", "v"], ["k"], self.GROUP_AGGS, encoded=False)
        assert_same(fast, slow)
        assert scan.stats.agg_fallbacks == scan.stats.units_seen


class TestRangePruning:
    def test_contained_conjunct_skips_decode(self, rle_store):
        # payload spans [0, 4999*997]; the conjunct is true for every row,
        # so the bit-packed segment's min/max alone settles it — no decode.
        predicate = Between(col("payload"), lit(-1), lit(5000 * 997))
        aggs = [count_star("n"), agg("sum", "run", "s")]
        fast, fast_scan = run_agg(rle_store, ["run"], [], aggs, predicate)
        slow, _ = run_agg(rle_store, ["run"], [], aggs, predicate, encoded=False)
        assert fast == slow
        assert fast[0][0] == 5000
        assert fast_scan.stats.conjuncts_pruned_by_range == 1
        assert fast_scan.stats.columns_decoded == 0

    def test_partial_overlap_still_decodes(self, rle_store):
        predicate = Comparison("<", col("payload"), lit(997 * 1000))
        aggs = [count_star("n")]
        fast, fast_scan = run_agg(rle_store, ["run"], [], aggs, predicate)
        slow, _ = run_agg(rle_store, ["run"], [], aggs, predicate, encoded=False)
        assert fast == slow == [(1000,)]
        assert fast_scan.stats.conjuncts_pruned_by_range == 0
        assert fast_scan.stats.columns_decoded == 1

    def test_strict_bound_at_max_is_not_pruned(self):
        sch = schema(("a", types.INT, False),)
        store = ColumnStoreIndex(
            sch, StoreConfig(rowgroup_size=100, bulk_load_threshold=1)
        )
        store.bulk_load([(i % 10,) for i in range(100)])
        scan = ColumnStoreScan(
            store, ["a"], predicate=Comparison("<", col("a"), lit(9))
        )
        rows = []
        for batch in scan.batches():
            rows.extend(batch.to_rows())
        assert len(rows) == 90  # max == 9 must NOT satisfy a < 9 for all


class TestFloatExactness:
    def test_float_sum_stays_bit_identical(self):
        sch = schema(("grp", types.VARCHAR, False), ("f", types.FLOAT, False))
        store = ColumnStoreIndex(
            sch, StoreConfig(rowgroup_size=300, bulk_load_threshold=1, reorder_rows=False)
        )
        rng = np.random.default_rng(11)
        rows = [
            (("x", "y")[i % 2], float(v))
            for i, v in enumerate(rng.standard_normal(900))
        ]
        store.bulk_load([sch.coerce_row(r) for r in rows])
        aggs = [agg("sum", "f", "s"), agg("avg", "f", "m"), agg("min", "f", "lo")]
        fast, _ = run_agg(store, ["grp", "f"], ["grp"], aggs)
        slow, _ = run_agg(store, ["grp", "f"], ["grp"], aggs, encoded=False)
        # Exact ==, not approx: float accumulation order must match.
        assert_same(fast, slow)

        scalar = [agg("sum", "f", "s"), agg("avg", "f", "m")]
        fast, scan = run_agg(store, ["f"], [], scalar)
        slow, _ = run_agg(store, ["f"], [], scalar, encoded=False)
        assert fast == slow
        # Float SUM is order-sensitive: it must not have been weighted.
        assert scan.stats.agg_runs_processed == 0


# --------------------------------------------------------------------- #
# Property: encoded == decoded over random segments
# --------------------------------------------------------------------- #
SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

opt_key = st.one_of(st.none(), st.sampled_from(["red", "green", "blue", ""]))
run_val = st.integers(min_value=0, max_value=3)  # few values -> RLE-friendly
opt_int = st.one_of(st.none(), st.integers(min_value=-1000, max_value=1000))
flt = st.floats(min_value=-50, max_value=50, allow_nan=False, width=32)

rows_strategy = st.lists(
    st.tuples(opt_key, run_val, opt_int, flt), min_size=0, max_size=120
)


def build_store(rows, delete_step, trickle):
    sch = schema(
        ("k", types.VARCHAR),
        ("r", types.INT, False),
        ("v", types.INT),
        ("f", types.FLOAT, False),
    )
    store = ColumnStoreIndex(
        sch, StoreConfig(rowgroup_size=40, bulk_load_threshold=1, reorder_rows=False)
    )
    if rows:
        store.bulk_load([sch.coerce_row(r) for r in rows])
    if delete_step:
        for group in store.directory.row_groups():
            for position in range(0, group.row_count, delete_step):
                store.delete(RowLocator(GROUP, group.group_id, position))
    for row in trickle:
        store.insert(sch.coerce_row(row))
    return store


@given(
    rows=rows_strategy,
    delete_step=st.sampled_from([0, 2, 3]),
    trickle=st.lists(st.tuples(opt_key, run_val, opt_int, flt), max_size=10),
)
@SETTINGS
def test_encoded_agg_equals_decoded(rows, delete_step, trickle):
    store = build_store(rows, delete_step, trickle)
    aggs = [
        count_star("n"),
        agg("count", "v", "c"),
        agg("sum", "v", "s"),
        agg("min", "v", "lo"),
        agg("max", "v", "hi"),
        agg("avg", "f", "m"),
        agg("sum", "r", "rs"),
    ]
    columns = ["k", "r", "v", "f"]
    for keys in ([], ["k"], ["k", "r"], ["r"]):
        fast, _ = run_agg(store, columns, keys, aggs)
        slow, _ = run_agg(store, columns, keys, aggs, encoded=False)
        assert_same(fast, slow)


@given(rows=rows_strategy)
@SETTINGS
def test_encoded_agg_with_predicate_equals_decoded(rows):
    store = build_store(rows, 0, [])
    aggs = [count_star("n"), agg("sum", "v", "s"), agg("min", "f", "lo")]
    predicate = Comparison(">=", col("r"), lit(1))
    columns = ["k", "r", "v", "f"]
    for keys in ([], ["k"]):
        fast, _ = run_agg(store, columns, keys, aggs, predicate)
        slow, _ = run_agg(store, columns, keys, aggs, predicate, encoded=False)
        assert_same(fast, slow)
