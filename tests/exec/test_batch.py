"""Tests for the Batch structure."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec.batch import Batch, concat_batches, slice_into_batches


@pytest.fixture
def batch():
    return Batch.from_pydict(
        {"a": [1, 2, 3, 4], "b": ["w", "x", None, "z"], "c": [1.5, None, 3.5, 4.5]}
    )


class TestConstruction:
    def test_from_pydict_types(self, batch):
        assert batch.column("a").dtype == np.int64
        assert batch.column("b").dtype == object
        assert batch.column("c").dtype == np.float64

    def test_null_masks(self, batch):
        assert batch.null_mask("a") is None
        assert batch.null_mask("b").tolist() == [False, False, True, False]

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ExecutionError):
            Batch(columns={"a": np.arange(3), "b": np.arange(4)})

    def test_unknown_column(self, batch):
        with pytest.raises(ExecutionError):
            batch.column("ghost")

    def test_explicit_dtype(self):
        b = Batch.from_pydict({"a": [1, 2]}, dtypes={"a": np.dtype(np.int32)})
        assert b.column("a").dtype == np.int32

    def test_all_none_column_is_fully_masked(self):
        b = Batch.from_pydict({"a": [None, None]})
        assert b.null_mask("a").all()
        # Sample-less columns get a numeric vector, not object filler.
        assert b.column("a").dtype == np.int64


class TestSelection:
    def test_counts(self, batch):
        assert batch.row_count == 4
        assert batch.active_count == 4

    def test_narrow(self, batch):
        narrowed = batch.narrow(np.array([True, False, True, False]))
        assert narrowed.active_count == 2
        assert narrowed.selection.tolist() == [0, 2]
        # Underlying data untouched.
        assert narrowed.row_count == 4

    def test_narrow_twice_intersects(self, batch):
        first = batch.narrow(np.array([True, True, True, False]))
        second = first.narrow(np.array([False, True, True, True]))
        assert second.selection.tolist() == [1, 2]

    def test_compact(self, batch):
        compacted = batch.narrow(np.array([False, True, False, True])).compact()
        assert compacted.row_count == 2
        assert compacted.column("a").tolist() == [2, 4]
        assert compacted.selection is None

    def test_to_rows_respects_selection(self, batch):
        rows = batch.narrow(np.array([False, False, True, False])).to_rows()
        assert rows == [(3, None, 3.5)]


class TestManipulation:
    def test_project(self, batch):
        projected = batch.project(["c", "a"])
        assert projected.names == ["c", "a"]

    def test_with_column(self, batch):
        extended = batch.with_column("d", np.arange(4))
        assert extended.names == ["a", "b", "c", "d"]

    def test_with_column_wrong_length(self, batch):
        with pytest.raises(ExecutionError):
            batch.with_column("d", np.arange(5))


class TestConcatSlice:
    def test_concat(self, batch):
        merged = concat_batches([batch, batch])
        assert merged.row_count == 8
        assert merged.null_mask("b").sum() == 2

    def test_concat_empty(self):
        assert concat_batches([]) is None

    def test_concat_drops_empty_selections(self, batch):
        empty = batch.narrow(np.zeros(4, dtype=bool))
        merged = concat_batches([empty, batch])
        assert merged.row_count == 4

    def test_slice(self, batch):
        slices = list(slice_into_batches(batch, batch_size=3))
        assert [s.row_count for s in slices] == [3, 1]
        assert slices[1].column("a").tolist() == [4]
