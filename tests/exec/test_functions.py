"""Tests for n-ary scalar functions: COALESCE, CONCAT, SUBSTR, ROUND."""

import pytest

from repro import Database
from repro.errors import BindingError
from repro.exec.batch import Batch
from repro.exec.expressions import ExecutionError, FunctionCall, col, lit


@pytest.fixture
def batch():
    return Batch.from_pydict(
        {
            "a": [1, None, 3],
            "b": [None, 20, 30],
            "s": ["hello", "wor", None],
            "f": [1.2345, 2.5, None],
        }
    )


def rows_of(batch):
    names = batch.names
    return [dict(zip(names, row)) for row in batch.to_rows()]


def check_consistency(expr, batch):
    values, nulls = expr.eval_batch(batch)
    for i, row in enumerate(rows_of(batch)):
        expected = expr.eval_row(row)
        if nulls is not None and nulls[i]:
            assert expected is None
        else:
            got = values[i]
            got = got.item() if hasattr(got, "item") else got
            assert expected == pytest.approx(got) if isinstance(got, float) else expected == got


class TestCoalesce:
    def test_picks_first_non_null(self, batch):
        expr = FunctionCall("coalesce", col("a"), col("b"))
        values, nulls = expr.eval_batch(batch)
        assert values.tolist() == [1, 20, 3]
        assert nulls is None

    def test_falls_through_to_literal(self, batch):
        expr = FunctionCall("coalesce", col("a"), lit(-1))
        values, _ = expr.eval_batch(batch)
        assert values.tolist() == [1, -1, 3]

    def test_all_null_row_stays_null(self):
        b = Batch.from_pydict({"x": [None], "y": [None]})
        _, nulls = FunctionCall("coalesce", col("x"), col("y")).eval_batch(b)
        assert nulls[0]

    def test_row_mode(self, batch):
        check_consistency(FunctionCall("coalesce", col("a"), col("b"), lit(0)), batch)


class TestConcat:
    def test_null_becomes_empty(self, batch):
        expr = FunctionCall("concat", col("s"), lit("!"))
        values, nulls = expr.eval_batch(batch)
        assert values.tolist() == ["hello!", "wor!", "!"]
        assert nulls is None

    def test_numbers_stringify(self, batch):
        expr = FunctionCall("concat", lit("v="), col("a"))
        values, _ = expr.eval_batch(batch)
        assert values[0] == "v=1"
        assert values[1] == "v="  # NULL -> ''

    def test_row_mode(self, batch):
        check_consistency(FunctionCall("concat", col("s"), col("s")), batch)


class TestSubstr:
    def test_one_based(self, batch):
        expr = FunctionCall("substr", col("s"), lit(2), lit(3))
        values, nulls = expr.eval_batch(batch)
        assert values[0] == "ell"
        assert values[1] == "or"
        assert nulls.tolist() == [False, False, True]

    def test_without_length(self, batch):
        expr = FunctionCall("substr", col("s"), lit(3))
        values, _ = expr.eval_batch(batch)
        assert values[0] == "llo"

    def test_row_mode(self, batch):
        check_consistency(FunctionCall("substr", col("s"), lit(1), lit(2)), batch)


class TestRound:
    def test_default_digits(self, batch):
        expr = FunctionCall("round", col("f"))
        values, nulls = expr.eval_batch(batch)
        assert values[0] == 1.0
        assert nulls.tolist() == [False, False, True]

    def test_with_digits(self, batch):
        expr = FunctionCall("round", col("f"), lit(2))
        values, _ = expr.eval_batch(batch)
        assert values[0] == pytest.approx(1.23)

    def test_row_mode(self, batch):
        check_consistency(FunctionCall("round", col("f"), lit(1)), batch)


class TestArityValidation:
    def test_unary_rejects_two_args(self):
        with pytest.raises(ExecutionError):
            FunctionCall("abs", col("a"), col("b"))

    def test_substr_needs_at_least_two(self):
        with pytest.raises(ExecutionError):
            FunctionCall("substr", col("s"))

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            FunctionCall("frobnicate", col("a"))


class TestSqlIntegration:
    @pytest.fixture
    def db(self):
        database = Database()
        database.sql("CREATE TABLE t (a INT, s VARCHAR, f FLOAT)")
        database.sql(
            "INSERT INTO t VALUES (1, 'alpha', 1.25), (NULL, 'beta', NULL), (3, NULL, 9.875)"
        )
        return database

    def test_coalesce_sql(self, db):
        result = db.sql("SELECT COALESCE(a, 0) AS v FROM t ORDER BY v")
        assert [r[0] for r in result.rows] == [0, 1, 3]

    def test_concat_sql(self, db):
        result = db.sql("SELECT CONCAT(s, '-', a) AS v FROM t WHERE a = 1")
        assert result.rows == [("alpha-1",)]

    def test_substr_sql(self, db):
        result = db.sql("SELECT SUBSTR(s, 1, 2) AS v FROM t WHERE s IS NOT NULL ORDER BY v")
        assert [r[0] for r in result.rows] == ["al", "be"]

    def test_round_sql(self, db):
        result = db.sql("SELECT ROUND(f, 1) AS v FROM t WHERE a = 3")
        assert result.rows == [(9.9,)]

    def test_modes_agree(self, db):
        sql = (
            "SELECT COALESCE(s, 'missing') AS s2, CONCAT(s, '/', f) AS c "
            "FROM t ORDER BY s2"
        )
        assert db.sql(sql, mode="batch").rows == db.sql(sql, mode="row").rows

    def test_bad_arity_is_binding_error(self, db):
        with pytest.raises(BindingError):
            db.sql("SELECT SUBSTR(s) AS v FROM t")
