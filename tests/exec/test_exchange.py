"""Tests for the exchange operator and parallel (dop > 1) plans."""

import numpy as np
import pytest

from repro import Database, StoreConfig, schema, types
from repro.errors import ExecutionError
from repro.exec.batch import Batch, slice_into_batches
from repro.exec.operators.base import BatchOperator
from repro.exec.operators.exchange import BatchExchange
from repro.exec.operators.scan import ColumnStoreScan
from repro.storage.columnstore import ColumnStoreIndex
from repro.storage.config import StoreConfig as SC


class ListSource(BatchOperator):
    def __init__(self, data, batch_size=8):
        self._batch = Batch.from_pydict(data)
        self._batch_size = batch_size

    @property
    def output_names(self):
        return self._batch.names

    def batches(self):
        yield from slice_into_batches(self._batch, self._batch_size)


class Exploding(BatchOperator):
    @property
    def output_names(self):
        return ["a"]

    def batches(self):
        yield Batch.from_pydict({"a": [1]})
        raise ExecutionError("producer blew up")


class TestBatchExchange:
    def test_merges_all_children(self):
        children = [ListSource({"a": list(range(i * 10, i * 10 + 10))}) for i in range(4)]
        exchange = BatchExchange(children)
        rows = sorted(r[0] for b in exchange.batches() for r in b.to_rows())
        assert rows == list(range(40))

    def test_single_child_passthrough(self):
        exchange = BatchExchange([ListSource({"a": [1, 2]})])
        assert sum(b.active_count for b in exchange.batches()) == 2

    def test_requires_children(self):
        with pytest.raises(ExecutionError):
            BatchExchange([])

    def test_mismatched_children_rejected(self):
        with pytest.raises(ExecutionError):
            BatchExchange([ListSource({"a": [1]}), ListSource({"b": [1]})])

    def test_producer_error_propagates(self):
        exchange = BatchExchange([Exploding(), ListSource({"a": [2]})])
        with pytest.raises(ExecutionError, match="blew up"):
            list(exchange.batches())

    def test_describe_shows_dop(self):
        exchange = BatchExchange([ListSource({"a": [1]})] * 3)
        assert "dop=3" in exchange.describe()


@pytest.fixture
def index():
    sch = schema(("k", types.INT, False), ("v", types.FLOAT, False))
    store = ColumnStoreIndex(sch, SC(rowgroup_size=64, bulk_load_threshold=10))
    store.bulk_load([(i, float(i)) for i in range(1000)])
    return store


class TestShardedScan:
    def test_shards_partition_units(self, index):
        total_units = len(list(index.scan_units()))
        seen = 0
        rows = []
        for worker in range(3):
            scan = ColumnStoreScan(index, ["k"], shard=(worker, 3))
            for batch in scan.batches():
                rows.extend(r[0] for r in batch.to_rows())
            seen += scan.stats.units_seen
        assert seen == total_units
        assert sorted(rows) == list(range(1000))

    def test_shards_disjoint(self, index):
        first = ColumnStoreScan(index, ["k"], shard=(0, 2))
        second = ColumnStoreScan(index, ["k"], shard=(1, 2))
        rows_a = {r[0] for b in first.batches() for r in b.to_rows()}
        rows_b = {r[0] for b in second.batches() for r in b.to_rows()}
        assert not (rows_a & rows_b)
        assert len(rows_a | rows_b) == 1000


@pytest.fixture
def star_db():
    db = Database(StoreConfig(rowgroup_size=256, bulk_load_threshold=100))
    db.sql("CREATE TABLE f (id INT NOT NULL, dim_id INT NOT NULL, v FLOAT)")
    db.sql("CREATE TABLE d (id INT NOT NULL, tag VARCHAR)")
    rng = np.random.default_rng(3)
    db.bulk_load("f", [(i, int(rng.integers(0, 30)), float(i % 97)) for i in range(5000)])
    db.bulk_load("d", [(i, f"tag{i % 4}") for i in range(30)])
    return db


class TestParallelPlans:
    QUERIES = [
        "SELECT COUNT(*) AS n, SUM(v) AS s FROM f",
        "SELECT dim_id, COUNT(*) AS n FROM f GROUP BY dim_id ORDER BY dim_id",
        "SELECT d.tag, SUM(f.v) AS s FROM f JOIN d ON f.dim_id = d.id "
        "GROUP BY d.tag ORDER BY d.tag",
        "SELECT id FROM f WHERE v > 90 ORDER BY id LIMIT 10",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("dop", [2, 4])
    def test_parallel_matches_serial(self, star_db, query, dop):
        serial = star_db.sql(query)
        parallel = star_db.sql(query, dop=dop)
        assert serial.columns == parallel.columns

        def normalize(rows):
            return sorted(
                tuple(round(v, 6) if isinstance(v, float) else v for v in row)
                for row in rows
            )

        assert normalize(serial.rows) == normalize(parallel.rows)

    def test_parallel_bitmap_pushdown_still_works(self, star_db):
        query = (
            "SELECT COUNT(*) AS n FROM f JOIN d ON f.dim_id = d.id "
            "WHERE d.tag = 'tag1'"
        )
        assert star_db.sql(query, dop=3).rows == star_db.sql(query).rows

    def test_explain_shows_exchange(self, star_db):
        text = star_db.explain("SELECT COUNT(*) AS n FROM f", dop=4)
        assert "BatchExchange(dop=4)" in text

    def test_invalid_dop(self, star_db):
        from repro.errors import PlanningError

        with pytest.raises(PlanningError):
            star_db.sql("SELECT COUNT(*) AS n FROM f", dop=0)
