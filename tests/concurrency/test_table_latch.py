"""TableWriteLatch semantics: per-table exclusion, governed waits, KILL.

Mirrors test_rwlock.py: the latch must honor the same typed-retryable
timeout contract and the same governance interruption guarantees as the
database RW lock (the PR 7 contract), and a latch wait that dies must
never leave the latch held.
"""

import threading
import time

import pytest

from repro import Database, StoreConfig, schema, types
from repro.concurrency import ConcurrentDatabase, TableLatches, TableWriteLatch
from repro.errors import (
    ConcurrencyError,
    LockTimeoutError,
    QueryKilledError,
    QueryTimeoutError,
    RetryableError,
)
from repro.governance import QueryContext, activate
from repro.observability import registry as metrics


def run_in_thread(fn):
    t = threading.Thread(target=fn, daemon=True)
    t.start()
    return t


class TestBasics:
    def test_excludes_other_threads(self):
        latch = TableWriteLatch("t")
        latch.acquire()
        got = threading.Event()
        t = run_in_thread(lambda: (latch.acquire(), got.set(), latch.release()))
        time.sleep(0.05)
        assert not got.is_set()
        latch.release()
        t.join(timeout=2.0)
        assert got.is_set()

    def test_reentrant_for_owner(self):
        latch = TableWriteLatch("t")
        latch.acquire()
        latch.acquire()
        latch.release()
        assert latch.held_by_me
        latch.release()
        assert not latch.held_by_me

    def test_locked_guard(self):
        latch = TableWriteLatch("t")
        with latch.locked():
            assert latch.held_by_me
        assert not latch.held_by_me

    def test_registry_is_per_table_and_case_normalized(self):
        latches = TableLatches()
        assert latches.latch("Orders") is latches.latch("orders")
        assert latches.latch("orders") is not latches.latch("lineitem")

    def test_disjoint_tables_do_not_block_each_other(self):
        latches = TableLatches()
        latches.latch("a").acquire()
        got = threading.Event()
        run_in_thread(
            lambda: (latches.latch("b").acquire(), got.set(), latches.latch("b").release())
        ).join(timeout=2.0)
        assert got.is_set()
        latches.latch("a").release()


class TestMisuse:
    def test_release_without_hold_raises(self):
        latch = TableWriteLatch("t")
        with pytest.raises(ConcurrencyError):
            latch.release()

    def test_release_by_non_owner_raises(self):
        latch = TableWriteLatch("t")
        run_in_thread(latch.acquire).join(timeout=2.0)
        with pytest.raises(ConcurrencyError):
            latch.release()
        latch.release(force=True)  # teardown path still works

    def test_forced_release_unblocks_waiters(self):
        latch = TableWriteLatch("t")
        run_in_thread(latch.acquire).join(timeout=2.0)
        got = threading.Event()
        t = run_in_thread(lambda: (latch.acquire(), got.set(), latch.release()))
        time.sleep(0.05)
        assert not got.is_set()
        latch.release(force=True)
        t.join(timeout=2.0)
        assert got.is_set()


class TestTimeoutTyping:
    """Same contract as TestAcquireTimeoutTyping for the RW lock."""

    def test_wait_timeout_is_typed_and_retryable(self):
        before = metrics.get_registry().counter("concurrency.latch_waits")
        latch = TableWriteLatch("orders", timeout=0.1)
        latch.acquire()
        error = []

        def blocked():
            try:
                latch.acquire()
            except ConcurrencyError as exc:
                error.append(exc)

        run_in_thread(blocked).join(timeout=5.0)
        latch.release()
        assert error
        assert isinstance(error[0], LockTimeoutError)
        assert isinstance(error[0], RetryableError)  # clients may retry
        assert error[0].retryable is True
        assert "orders" in str(error[0])  # names the table it waited on
        assert metrics.get_registry().counter("concurrency.latch_waits") >= before + 1

    def test_governed_wait_interrupted_by_deadline(self):
        latch = TableWriteLatch("t", timeout=30.0)  # budget far beyond test
        latch.acquire()
        error = []

        def blocked():
            ctx = QueryContext(1, timeout_ms=200)
            try:
                with activate(ctx):
                    latch.acquire()
            except QueryTimeoutError as exc:
                error.append(exc)

        started = time.monotonic()
        run_in_thread(blocked).join(timeout=10.0)
        elapsed = time.monotonic() - started
        latch.release()
        assert error and isinstance(error[0], QueryTimeoutError)
        assert elapsed < 5.0  # nowhere near the 30s latch budget

    def test_governed_wait_interrupted_by_kill(self):
        """KILL lands while the statement *waits* on the latch, raises the
        typed retryable error, and leaves the latch cleanly releasable."""
        latch = TableWriteLatch("t", timeout=30.0)
        latch.acquire()
        ctx = QueryContext(7)
        error = []
        waiting = threading.Event()

        def blocked():
            try:
                with activate(ctx):
                    waiting.set()
                    latch.acquire()
            except QueryKilledError as exc:
                error.append(exc)

        t = run_in_thread(blocked)
        waiting.wait(timeout=2.0)
        time.sleep(0.05)
        ctx.cancel(reason="killed")
        t.join(timeout=10.0)
        assert error and isinstance(error[0], QueryKilledError)
        assert error[0].retryable is True
        latch.release()
        # The dead waiter left no state behind: a fresh acquire succeeds.
        with latch.locked():
            pass


class TestSessionKillDuringLatchWait:
    """End to end: a session's DML blocked on a busy table latch is
    interruptible by KILL / statement_timeout, surfaces the typed error,
    and releases both the latch path and the shared lock side."""

    @pytest.fixture
    def cdb(self):
        db = Database(StoreConfig(rowgroup_size=64, bulk_load_threshold=40))
        db.create_table("t", schema(("id", types.INT, False), ("v", types.INT)))
        with ConcurrentDatabase(db) as cdb:
            yield cdb

    def _block_latch(self, cdb, table="t"):
        """Hold ``table``'s latch from a helper thread until released."""
        release = threading.Event()
        held = threading.Event()

        def holder():
            with cdb.latches.latch(table).locked():
                held.set()
                release.wait(timeout=30.0)

        t = run_in_thread(holder)
        assert held.wait(timeout=2.0)
        return release, t

    def test_kill_interrupts_insert_waiting_on_latch(self, cdb):
        from repro.governance import get_query_registry

        release, holder = self._block_latch(cdb)
        session = cdb.session("victim")
        error = []

        def blocked_insert():
            try:
                session.sql("INSERT INTO t VALUES (1, 1)")
            except QueryKilledError as exc:
                error.append(exc)

        t = run_in_thread(blocked_insert)
        # Wait until the victim statement is registered, then KILL it.
        registry = get_query_registry()
        for _ in range(100):
            running = [c for c in registry.list_running() if c.session == "victim"]
            if running:
                break
            time.sleep(0.01)
        assert running, "victim statement never registered"
        assert registry.kill(running[0].query_id)
        t.join(timeout=10.0)
        assert error and isinstance(error[0], QueryKilledError)
        assert error[0].retryable is True
        release.set()
        holder.join(timeout=5.0)
        # Clean release: the same session can write normally afterwards.
        assert session.sql("INSERT INTO t VALUES (2, 2)").scalar() == 1
        assert session.sql("SELECT COUNT(*) AS n FROM t").scalar() == 1
        session.close()

    def test_statement_timeout_interrupts_latch_wait(self, cdb):
        release, holder = self._block_latch(cdb)
        session = cdb.session("victim")
        session.sql("SET statement_timeout = 200")
        started = time.monotonic()
        with pytest.raises(QueryTimeoutError):
            session.sql("INSERT INTO t VALUES (1, 1)")
        assert time.monotonic() - started < 5.0
        release.set()
        holder.join(timeout=5.0)
        session.sql("SET statement_timeout = DEFAULT")
        assert session.sql("INSERT INTO t VALUES (2, 2)").scalar() == 1
        session.close()

    def test_latch_wait_does_not_block_disjoint_table_writer(self, cdb):
        cdb.db.create_table(
            "u", schema(("id", types.INT, False), ("v", types.INT))
        )
        release, holder = self._block_latch(cdb, table="t")
        with cdb.session("other") as other:
            # t's latch is busy, but u's writer proceeds immediately.
            assert other.sql("INSERT INTO u VALUES (1, 1)").scalar() == 1
        release.set()
        holder.join(timeout=5.0)
