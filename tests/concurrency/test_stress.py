"""Multi-session stress: N readers + 1 writer, snapshot-consistency checks.

The writer appends *fingerprinted batches*: every committed unit of work
inserts exactly ``BATCH_ROWS`` rows sharing one ``batch`` id, with
values whose COUNT/SUM/MIN/MAX per batch are known in closed form. Half
the batches go through single-statement auto-commit, half through a
BEGIN / two INSERTs / COMMIT transaction — the half-way point of which
must never be visible. A maintenance thread runs the tuple mover and
REBUILD while everything else is in flight.

Readers continuously aggregate per batch and assert every batch they
see is complete and internally consistent. A torn row group, a pin that
caught a half-applied statement, or a snapshot spanning an uncommitted
transaction all show up as a fingerprint mismatch.
"""

import os
import threading

from repro import ConcurrentDatabase

READERS = 4
BATCH_ROWS = 10
# Scaled so the suite stays fast by default; CI can raise it.
WRITER_BATCHES = int(os.environ.get("REPRO_STRESS_BATCHES", "150"))
MIN_TOTAL_STATEMENTS = 1000


def batch_fingerprint(batch_id):
    """Expected (count, sum, min, max) of column v for one batch."""
    values = [batch_id * 1000 + i for i in range(BATCH_ROWS)]
    return (BATCH_ROWS, sum(values), values[0], values[-1])


def test_readers_see_only_committed_consistent_snapshots():
    cdb = ConcurrentDatabase()
    setup = cdb.session("setup")
    setup.sql("CREATE TABLE s (batch INT NOT NULL, v INT NOT NULL)")
    setup.close()

    stop_readers = threading.Event()
    failures = []
    statements = {"count": 0}
    statements_lock = threading.Lock()

    def count_statements(n):
        with statements_lock:
            statements["count"] += n

    def writer():
        with cdb.session("writer") as session:
            try:
                for b in range(WRITER_BATCHES):
                    rows = ", ".join(
                        f"({b}, {b * 1000 + i})" for i in range(BATCH_ROWS)
                    )
                    if b % 2 == 0:
                        session.sql(f"INSERT INTO s VALUES {rows}")
                        count_statements(1)
                    else:
                        half = BATCH_ROWS // 2
                        first = ", ".join(
                            f"({b}, {b * 1000 + i})" for i in range(half)
                        )
                        second = ", ".join(
                            f"({b}, {b * 1000 + i})" for i in range(half, BATCH_ROWS)
                        )
                        session.sql("BEGIN")
                        session.sql(f"INSERT INTO s VALUES {first}")
                        session.sql(f"INSERT INTO s VALUES {second}")
                        session.sql("COMMIT")
                        count_statements(4)
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(("writer", exc))

    def maintenance():
        with cdb.session("maintenance") as session:
            b = 0
            while not stop_readers.is_set():
                try:
                    cdb.run_tuple_mover("s", include_open=True)
                    if b % 5 == 2:
                        cdb.rebuild("s")
                    count_statements(1)
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append(("maintenance", exc))
                    return
                b += 1
                stop_readers.wait(0.02)

    def reader(name):
        with cdb.session(name) as session:
            ran = 0
            while not stop_readers.is_set() or ran < MIN_TOTAL_STATEMENTS // READERS:
                try:
                    result = session.sql(
                        "SELECT batch, COUNT(*) AS c, SUM(v) AS s, "
                        "MIN(v) AS lo, MAX(v) AS hi FROM s GROUP BY batch"
                    )
                    ran += 1
                    for batch_id, c, sm, lo, hi in result.rows:
                        expected = batch_fingerprint(batch_id)
                        if (c, sm, lo, hi) != expected:
                            failures.append(
                                (
                                    name,
                                    f"batch {batch_id}: saw {(c, sm, lo, hi)}, "
                                    f"expected {expected}",
                                )
                            )
                            stop_readers.set()
                            return
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append((name, exc))
                    stop_readers.set()
                    return
            count_statements(ran)

    writer_thread = threading.Thread(target=writer)
    maintenance_thread = threading.Thread(target=maintenance)
    reader_threads = [
        threading.Thread(target=reader, args=(f"reader-{i}",)) for i in range(READERS)
    ]
    for t in reader_threads:
        t.start()
    maintenance_thread.start()
    writer_thread.start()
    writer_thread.join(timeout=120)
    assert not writer_thread.is_alive(), "writer did not finish"
    stop_readers.set()
    for t in reader_threads:
        t.join(timeout=60)
        assert not t.is_alive(), "reader wedged"
    maintenance_thread.join(timeout=60)
    assert not maintenance_thread.is_alive(), "maintenance wedged"

    assert failures == []
    assert statements["count"] >= MIN_TOTAL_STATEMENTS

    # Final state: every batch complete.
    with cdb.session("final") as session:
        result = session.sql(
            "SELECT batch, COUNT(*) AS c, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi "
            "FROM s GROUP BY batch ORDER BY batch"
        )
        assert len(result.rows) == WRITER_BATCHES
        for batch_id, c, sm, lo, hi in result.rows:
            assert (c, sm, lo, hi) == batch_fingerprint(batch_id)
    cdb.close()

    # Nothing left running: sessions and exchange workers all reaped.
    leaked = [
        t for t in threading.enumerate() if t.name.startswith(("repro-", "reader-"))
    ]
    assert leaked == []
