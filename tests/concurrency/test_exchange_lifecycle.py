"""Exchange lifecycle under early abandonment and worker errors.

The bugs these tests pin down (PR 5): a consumer that stops pulling —
LIMIT reaching its quota, an error downstream, a test breaking out of
the loop — used to leave exchange workers blocked forever on a full
queue; and a worker error used to surface only after every sibling
drained completely. Both are lifecycle properties, so the assertions
here are about *threads*, not rows.
"""

import threading
import time

import pytest

from repro import Database
from repro.errors import ExecutionError
from repro.exec.batch import Batch, slice_into_batches
from repro.exec.operators.base import BatchOperator
from repro.exec.operators.exchange import BatchExchange


def exchange_threads():
    return [t for t in threading.enumerate() if t.name.startswith("repro-exchange")]


def assert_no_leaked_threads(deadline_seconds=5.0):
    """All exchange worker threads must exit (reaped, not abandoned)."""
    deadline = time.monotonic() + deadline_seconds
    while exchange_threads() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert exchange_threads() == []


class ListSource(BatchOperator):
    def __init__(self, data, batch_size=8):
        self._batch = Batch.from_pydict(data)
        self._batch_size = batch_size

    @property
    def output_names(self):
        return self._batch.names

    def batches(self):
        yield from slice_into_batches(self._batch, self._batch_size)


class SlowSource(BatchOperator):
    """Emits forever (until cancelled) with a small delay per batch."""

    def __init__(self, delay=0.002):
        self.delay = delay

    @property
    def output_names(self):
        return ["a"]

    def batches(self):
        i = 0
        while True:
            time.sleep(self.delay)
            yield Batch.from_pydict({"a": [i]})
            i += 1


class FailsAfter(BatchOperator):
    def __init__(self, n_batches, message="worker failed"):
        self.n_batches = n_batches
        self.message = message

    @property
    def output_names(self):
        return ["a"]

    def batches(self):
        for i in range(self.n_batches):
            yield Batch.from_pydict({"a": [i]})
        raise ExecutionError(self.message)


class TestEarlyAbandonment:
    def test_consumer_break_reaps_workers(self):
        # Unbounded producers: without cancellation the workers would
        # fill the queue and block in put() forever.
        exchange = BatchExchange([SlowSource() for _ in range(4)])
        for i, _batch in enumerate(exchange.batches()):
            if i >= 3:
                break
        assert_no_leaked_threads()

    def test_generator_close_reaps_workers(self):
        exchange = BatchExchange([SlowSource() for _ in range(2)])
        gen = exchange.batches()
        next(gen)
        gen.close()  # explicit close, not GC
        assert_no_leaked_threads()

    def test_limit_query_reaps_workers(self):
        # End to end: LIMIT abandons the scan mid-stream in a dop>1 plan.
        db = Database()
        db.sql("CREATE TABLE t (a INT NOT NULL)")
        db.insert("t", [(i,) for i in range(50_000)])
        result = db.sql("SELECT a FROM t LIMIT 5", mode="batch", dop=4)
        assert len(result.rows) == 5
        assert_no_leaked_threads()

    def test_abandoned_iterator_gc_reaps_workers(self):
        exchange = BatchExchange([SlowSource() for _ in range(2)])
        gen = exchange.batches()
        next(gen)
        del gen  # GC closes the generator, which must cancel workers
        assert_no_leaked_threads()

    def test_normal_completion_drains_everything(self):
        children = [ListSource({"a": list(range(i * 10, i * 10 + 10))}) for i in range(4)]
        exchange = BatchExchange(children)
        rows = sorted(r[0] for b in exchange.batches() for r in b.to_rows())
        assert rows == list(range(40))
        assert_no_leaked_threads()


class TestErrorPropagation:
    def test_error_raises_promptly_not_after_siblings_drain(self):
        # The sibling produces forever: the only way this test finishes
        # is the error cancelling it. Before the fix, batches() joined
        # all workers before looking at the error list.
        exchange = BatchExchange([FailsAfter(2), SlowSource()])
        start = time.monotonic()
        with pytest.raises(ExecutionError, match="worker failed"):
            list(exchange.batches())
        assert time.monotonic() - start < 5.0
        assert_no_leaked_threads()

    def test_first_error_wins(self):
        # One worker fails immediately, another much later: the early
        # error must be the one raised (first-error, not last-error).
        exchange = BatchExchange(
            [FailsAfter(0, "early failure"), FailsAfter(200, "late failure")]
        )
        with pytest.raises(ExecutionError, match="early failure"):
            list(exchange.batches())
        assert_no_leaked_threads()

    def test_traceback_preserved(self):
        exchange = BatchExchange([FailsAfter(1, "original site"), ListSource({"a": [1]})])
        try:
            list(exchange.batches())
        except ExecutionError as exc:
            frames = []
            tb = exc.__traceback__
            while tb is not None:
                frames.append(tb.tb_frame.f_code.co_name)
                tb = tb.tb_next
            # The worker's original raise site must be in the chain.
            assert "batches" in frames
        else:
            pytest.fail("expected ExecutionError")
        assert_no_leaked_threads()

    def test_error_during_abandonment_does_not_hang(self):
        exchange = BatchExchange([FailsAfter(50), SlowSource()])
        gen = exchange.batches()
        next(gen)
        gen.close()
        assert_no_leaked_threads()
