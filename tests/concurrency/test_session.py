"""Session semantics: snapshot reads, owned transactions, lock hygiene."""

import threading

import pytest

from repro import ConcurrentDatabase
from repro.errors import ConcurrencyError, SqlSyntaxError, TxnError
from repro.observability.registry import get_registry


@pytest.fixture
def cdb():
    with ConcurrentDatabase() as cdb:
        session = cdb.session("setup")
        session.sql("CREATE TABLE t (a INT NOT NULL, b VARCHAR(10))")
        session.sql("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        session.close()
        yield cdb


class TestBasics:
    def test_read_write_roundtrip(self, cdb):
        with cdb.session() as s:
            s.sql("INSERT INTO t VALUES (4, 'w')")
            assert s.sql("SELECT COUNT(*) AS c FROM t").rows == [(4,)]

    def test_session_names_unique(self, cdb):
        s = cdb.session("dup")
        with pytest.raises(ConcurrencyError, match="already in use"):
            cdb.session("dup")
        s.close()
        cdb.session("dup").close()  # name reusable after close

    def test_closed_session_rejects_statements(self, cdb):
        s = cdb.session()
        s.close()
        with pytest.raises(ConcurrencyError, match="closed"):
            s.sql("SELECT a FROM t")

    def test_thread_local_sql_convenience(self, cdb):
        assert cdb.sql("SELECT COUNT(*) AS c FROM t").rows == [(3,)]
        results = []
        t = threading.Thread(
            target=lambda: results.append(cdb.sql("SELECT COUNT(*) AS c FROM t").rows)
        )
        t.start()
        t.join()
        assert results == [[(3,)]]

    def test_select_is_pinned_not_locked(self, cdb):
        registry = get_registry()
        before = registry.counter("concurrency.pinned_statements")
        with cdb.session() as s:
            s.sql("SELECT a FROM t WHERE a > 1")
        assert registry.counter("concurrency.pinned_statements") == before + 1

    def test_rowstore_select_runs_under_lock(self, cdb):
        with cdb.session() as s:
            s.sql("CREATE TABLE r (a INT NOT NULL) USING rowstore")
            s.sql("INSERT INTO r VALUES (1), (2)")
            registry = get_registry()
            before = registry.counter("concurrency.locked_statements")
            assert s.sql("SELECT COUNT(*) AS c FROM r").rows == [(2,)]
            assert registry.counter("concurrency.locked_statements") == before + 1


class TestTransactions:
    def test_txn_commit(self, cdb):
        with cdb.session() as s:
            s.sql("BEGIN")
            assert s.in_transaction
            s.sql("INSERT INTO t VALUES (4, 'w')")
            s.sql("COMMIT")
            assert not s.in_transaction
            assert s.sql("SELECT COUNT(*) AS c FROM t").rows == [(4,)]

    def test_txn_rollback(self, cdb):
        with cdb.session() as s:
            s.sql("BEGIN")
            s.sql("DELETE FROM t WHERE a = 1")
            s.sql("ROLLBACK")
            assert s.sql("SELECT COUNT(*) AS c FROM t").rows == [(3,)]

    def test_select_inside_txn_sees_own_writes(self, cdb):
        with cdb.session() as s:
            s.sql("BEGIN")
            s.sql("INSERT INTO t VALUES (4, 'w')")
            assert s.sql("SELECT COUNT(*) AS c FROM t").rows == [(4,)]
            s.sql("ROLLBACK")

    def test_other_session_cannot_end_my_txn(self, cdb):
        a = cdb.session("a")
        b = cdb.session("b")
        a.sql("BEGIN")
        a.sql("INSERT INTO t VALUES (4, 'w')")
        with pytest.raises(TxnError, match="owned by"):
            b.sql("COMMIT")
        with pytest.raises(TxnError, match="owned by"):
            b.sql("ROLLBACK")
        a.sql("COMMIT")
        a.close()
        b.close()

    def test_txn_serializes_other_sessions(self, cdb):
        a = cdb.session("a")
        a.sql("BEGIN")
        a.sql("INSERT INTO t VALUES (4, 'w')")

        order = []

        def other_writer():
            with cdb.session("b") as b:
                b.sql("INSERT INTO t VALUES (5, 'v')")
                order.append("b-done")

        t = threading.Thread(target=other_writer)
        t.start()
        t.join(timeout=0.2)
        assert t.is_alive()  # blocked behind a's txn
        order.append("a-commits")
        a.sql("COMMIT")
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert order == ["a-commits", "b-done"]
        assert a.sql("SELECT COUNT(*) AS c FROM t").rows == [(5,)]
        a.close()

    def test_close_rolls_back_open_txn_and_releases_lock(self, cdb):
        s = cdb.session("dier")
        s.sql("BEGIN")
        s.sql("DELETE FROM t")
        s.close()
        # Lock released and work undone: a fresh session writes freely.
        with cdb.session() as fresh:
            assert fresh.sql("SELECT COUNT(*) AS c FROM t").rows == [(3,)]
            fresh.sql("INSERT INTO t VALUES (4, 'w')")

    def test_nested_begin_raises_and_keeps_txn_usable(self, cdb):
        with cdb.session() as s:
            s.sql("BEGIN")
            with pytest.raises(TxnError, match="already open"):
                s.sql("BEGIN")
            assert s.in_transaction
            s.sql("INSERT INTO t VALUES (4, 'w')")
            s.sql("COMMIT")
        with cdb.session() as s2:
            assert s2.sql("SELECT COUNT(*) AS c FROM t").rows == [(4,)]


class TestLockHygiene:
    """A statement that dies mid-flight must release every lock."""

    def assert_unwedged(self, cdb):
        done = threading.Event()

        def writer():
            with cdb.session() as w:
                w.sql("INSERT INTO t VALUES (99, 'ok')")
            done.set()

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        t.join(timeout=5.0)
        assert done.is_set(), "write lock (or read lock) was leaked"

    def test_parse_error_releases_locks(self, cdb):
        with cdb.session() as s:
            with pytest.raises(SqlSyntaxError):
                s.sql("SELEC a FROM t")
        self.assert_unwedged(cdb)

    def test_bind_error_releases_read_lock(self, cdb):
        with cdb.session() as s:
            with pytest.raises(Exception):
                s.sql("SELECT nope FROM t")
            with pytest.raises(Exception):
                s.sql("SELECT a FROM missing_table")
        self.assert_unwedged(cdb)

    def test_failed_write_releases_write_lock(self, cdb):
        with cdb.session() as s:
            with pytest.raises(Exception):
                s.sql("INSERT INTO t VALUES (1)")  # arity mismatch
        self.assert_unwedged(cdb)

    def test_failed_statement_in_txn_keeps_txn_and_releases_depth(self, cdb):
        with cdb.session() as s:
            s.sql("BEGIN")
            with pytest.raises(Exception):
                s.sql("INSERT INTO t VALUES (1)")
            assert s.in_transaction
            s.sql("ROLLBACK")
        self.assert_unwedged(cdb)

    def test_commit_without_begin_raises_without_wedging(self, cdb):
        with cdb.session() as s:
            with pytest.raises(TxnError):
                s.sql("COMMIT")
            with pytest.raises(TxnError):
                s.sql("ROLLBACK")
        self.assert_unwedged(cdb)


class TestMaintenance:
    def test_maintenance_takes_write_side(self, cdb):
        with cdb.session() as s:
            s.sql("INSERT INTO t VALUES (4, 'w')")
        report = cdb.run_tuple_mover("t", include_open=True)
        assert report.rows_moved >= 1
        cdb.rebuild("t")
        with cdb.session() as s:
            assert s.sql("SELECT COUNT(*) AS c FROM t").rows == [(4,)]

    def test_maintenance_blocked_by_open_txn(self, cdb):
        a = cdb.session("a")
        a.sql("BEGIN")
        t = threading.Thread(
            target=lambda: cdb.run_tuple_mover("t", include_open=True), daemon=True
        )
        t.start()
        t.join(timeout=0.2)
        assert t.is_alive()  # waiting on the txn's write lock
        a.sql("COMMIT")
        t.join(timeout=5.0)
        assert not t.is_alive()
        a.close()
