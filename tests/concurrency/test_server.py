"""Embedded server: protocol, per-connection sessions, graceful shutdown."""

import json
import socket
import threading
import time

import pytest

from repro.concurrency import ConcurrentDatabase
from repro.server import ReproServer, ServerClient


@pytest.fixture
def served():
    cdb = ConcurrentDatabase()
    with cdb.session("setup") as s:
        s.sql("CREATE TABLE t (a INT NOT NULL, b VARCHAR(10))")
        s.sql("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
    server = ReproServer(cdb)
    port = server.start()
    yield server, port
    server.shutdown()
    cdb.close()


def connect(port):
    return ServerClient("127.0.0.1", port)


class TestProtocol:
    def test_query_roundtrip(self, served):
        _server, port = served
        with connect(port) as client:
            response = client.sql("SELECT a, b FROM t ORDER BY a")
            assert response["columns"] == ["a", "b"]
            assert response["rows"] == [[1, "x"], [2, "y"]]
            assert response["rowcount"] == 2

    def test_dml_and_ddl(self, served):
        _server, port = served
        with connect(port) as client:
            assert client.sql("INSERT INTO t VALUES (3, 'z')")["rows"] == [[1]]
            assert client.sql("CREATE TABLE u (x INT)")["columns"] is None

    def test_sql_error_reported_not_fatal(self, served):
        _server, port = served
        with connect(port) as client:
            response = client.request("SELEC 1")
            assert response["ok"] is False
            assert response["kind"] == "SqlSyntaxError"
            # Connection still usable afterwards.
            assert client.sql("SELECT COUNT(*) AS c FROM t")["rows"] == [[2]]

    def test_malformed_request_reported(self, served):
        _server, port = served
        with connect(port) as client:
            client._sock.sendall(b"this is not json\n")
            response = json.loads(client._reader.readline())
            assert response["ok"] is False and response["kind"] == "Protocol"

    def test_non_json_values_stringified(self, served):
        _server, port = served
        with connect(port) as client:
            client.sql("CREATE TABLE d (day DATE)")
            client.sql("INSERT INTO d VALUES ('2013-06-22')")
            response = client.sql("SELECT day FROM d")
            assert response["rows"] == [["2013-06-22"]]


class TestSessions:
    def test_one_session_per_connection_txn_isolation(self, served):
        _server, port = served
        with connect(port) as a, connect(port) as b:
            a.sql("BEGIN")
            a.sql("INSERT INTO t VALUES (3, 'z')")
            response = b.request("COMMIT")
            assert response["ok"] is False and "owned by" in response["error"]
            a.sql("COMMIT")
            assert b.sql("SELECT COUNT(*) AS c FROM t")["rows"] == [[3]]

    def test_dropped_connection_rolls_back(self, served):
        server, port = served
        client = connect(port)
        client.sql("BEGIN")
        client.sql("INSERT INTO t VALUES (99, 'q')")
        client.close()
        deadline = time.monotonic() + 5.0
        while server.connection_count and time.monotonic() < deadline:
            time.sleep(0.01)
        with connect(port) as fresh:
            assert fresh.sql("SELECT COUNT(*) AS c FROM t")["rows"] == [[2]]

    def test_many_concurrent_clients(self, served):
        _server, port = served
        errors = []

        def worker(i):
            try:
                with connect(port) as client:
                    client.sql(f"INSERT INTO t VALUES ({10 + i}, 'w')")
                    rows = client.sql("SELECT COUNT(*) AS c FROM t")["rows"]
                    assert rows[0][0] >= 3
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        with connect(port) as client:
            assert client.sql("SELECT COUNT(*) AS c FROM t")["rows"] == [[10]]


class TestShutdown:
    def test_shutdown_disconnects_idle_clients(self, served):
        server, port = served
        client = connect(port)
        client.sql("SELECT a FROM t")
        server.shutdown()
        with pytest.raises((ConnectionError, OSError)):
            client.request("SELECT a FROM t")
        client.close()

    def test_shutdown_refuses_new_connections(self, served):
        server, port = served
        server.shutdown()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1.0)

    def test_shutdown_leaves_no_threads(self, served):
        server, port = served
        clients = [connect(port) for _ in range(3)]
        for i, client in enumerate(clients):
            client.sql(f"INSERT INTO t VALUES ({10 + i}, 'w')")
        server.shutdown()
        for client in clients:
            client.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and any(
            t.name.startswith("repro-server") for t in threading.enumerate()
        ):
            time.sleep(0.01)
        leaked = [
            t.name for t in threading.enumerate() if t.name.startswith("repro-server")
        ]
        assert leaked == []

    def test_shutdown_twice_is_safe(self, served):
        server, _port = served
        server.shutdown()
        server.shutdown()
