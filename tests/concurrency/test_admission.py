"""Server hardening: admission control, sheds, retries, drain accounting."""

import json
import socket
import threading
import time

import pytest

from repro.concurrency import ConcurrentDatabase
from repro.observability import registry as metrics
from repro.server import ReproServer, ServerClient, ServerError

SLOW_QUERY = "SELECT t1.a FROM t t1 JOIN t t2 ON t1.b = t2.b ORDER BY t1.a"


@pytest.fixture
def cdb():
    database = ConcurrentDatabase()
    with database.session("setup") as session:
        session.sql("CREATE TABLE t (a INT, b INT)")
        session.sql(
            "INSERT INTO t VALUES "
            + ", ".join(f"({i}, {i % 5})" for i in range(1500))
        )
    yield database
    database.close()


class TestStatementAdmission:
    def test_concurrent_statement_shed_is_retryable(self, cdb):
        server = ReproServer(cdb, max_statements=1)
        port = server.start()
        try:
            first = ServerClient("127.0.0.1", port)
            second = ServerClient("127.0.0.1", port, retries=0)
            result = {}

            def run_slow():
                result["slow"] = first.request(SLOW_QUERY)

            thread = threading.Thread(target=run_slow)
            thread.start()
            shed = None
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                response = second.request("SELECT 1 FROM t WHERE a = 0")
                if not response.get("ok"):
                    shed = response
                    break
            thread.join(timeout=30.0)
            assert shed is not None, "never shed despite max_statements=1"
            assert shed["kind"] == "AdmissionError"
            assert shed["retryable"] is True
            assert result["slow"]["ok"]
            first.close()
            second.close()
        finally:
            server.shutdown()

    def test_client_retry_rides_out_shed(self, cdb):
        server = ReproServer(cdb, max_statements=1)
        port = server.start()
        try:
            first = ServerClient("127.0.0.1", port)
            second = ServerClient("127.0.0.1", port, retries=8, backoff=0.1)
            result = {}

            def run_slow():
                result["slow"] = first.request(SLOW_QUERY)

            thread = threading.Thread(target=run_slow)
            thread.start()
            time.sleep(0.05)
            response = second.sql("SELECT count(*) FROM t")
            assert response["rows"] == [[1500]]
            thread.join(timeout=30.0)
            first.close()
            second.close()
        finally:
            server.shutdown()

    def test_shed_raises_server_error_when_retries_exhausted(self, cdb):
        server = ReproServer(cdb, max_statements=1)
        port = server.start()
        try:
            first = ServerClient("127.0.0.1", port)
            second = ServerClient("127.0.0.1", port, retries=1, backoff=0.001)
            done = threading.Event()

            def hold_slot():
                while not done.is_set():
                    first.request(SLOW_QUERY)

            thread = threading.Thread(target=hold_slot)
            thread.start()
            time.sleep(0.05)
            try:
                with pytest.raises(ServerError) as err:
                    for _ in range(50):
                        second.sql("SELECT 1 FROM t WHERE a = 0")
                assert err.value.kind == "AdmissionError"
                assert err.value.retryable is True
                assert isinstance(err.value, RuntimeError)  # old catchers
            finally:
                done.set()
                thread.join(timeout=30.0)
            first.close()
            second.close()
        finally:
            server.shutdown()


class TestConnectionAdmission:
    def test_connection_beyond_cap_gets_shed_payload(self, cdb):
        server = ReproServer(cdb, max_connections=1)
        port = server.start()
        try:
            keeper = ServerClient("127.0.0.1", port)
            keeper.sql("SELECT 1 FROM t WHERE a = 0")  # ensure registered
            extra = socket.create_connection(("127.0.0.1", port), timeout=5)
            line = extra.makefile("rb").readline()
            payload = json.loads(line)
            assert payload["ok"] is False
            assert payload["kind"] == "AdmissionError"
            assert payload["retryable"] is True
            extra.close()
            keeper.close()
        finally:
            server.shutdown()

    def test_slot_frees_when_connection_closes(self, cdb):
        server = ReproServer(cdb, max_connections=1)
        port = server.start()
        try:
            first = ServerClient("127.0.0.1", port)
            first.sql("SELECT 1 FROM t WHERE a = 0")
            first.close()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and server.connection_count:
                time.sleep(0.01)
            second = ServerClient("127.0.0.1", port)
            assert second.sql("SELECT count(*) FROM t")["rows"] == [[1500]]
            second.close()
        finally:
            server.shutdown()


class TestIdleTimeout:
    def test_idle_connection_is_dropped(self, cdb):
        server = ReproServer(cdb, idle_timeout=0.2)
        port = server.start()
        try:
            client = ServerClient("127.0.0.1", port)
            client.sql("SELECT 1 FROM t WHERE a = 0")
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and server.connection_count:
                time.sleep(0.05)
            assert server.connection_count == 0  # reaped, session closed
            client.close()
        finally:
            server.shutdown()


class TestDrainAccounting:
    def test_drain_expiry_counts_killed_connection(self, cdb):
        before = metrics.get_registry().counter("server.drain_killed")
        server = ReproServer(cdb)
        port = server.start()
        client = ServerClient("127.0.0.1", port)
        result = {}

        def run_slow():
            try:
                result["slow"] = client.request(SLOW_QUERY)
            except (ConnectionError, OSError):
                result["slow"] = {"kind": "disconnected"}

        thread = threading.Thread(target=run_slow)
        thread.start()
        time.sleep(0.1)
        server.shutdown(drain_seconds=0.1)
        thread.join(timeout=30.0)
        assert server.drain_killed == 1
        after = metrics.get_registry().counter("server.drain_killed")
        assert after >= before + 1
        client.close()

    def test_clean_drain_counts_nothing(self, cdb):
        server = ReproServer(cdb)
        port = server.start()
        client = ServerClient("127.0.0.1", port)
        client.sql("SELECT count(*) FROM t")
        server.shutdown()
        assert server.drain_killed == 0
        client.close()


class TestClientTimeouts:
    def test_connect_and_read_timeouts_are_separate(self, cdb):
        server = ReproServer(cdb)
        port = server.start()
        try:
            client = ServerClient(
                "127.0.0.1", port, timeout=30.0, connect_timeout=1.0
            )
            # Read timeout (not the 1s connect budget) governs the query:
            # a statement slower than connect_timeout still succeeds.
            assert client._sock.gettimeout() == 30.0
            response = client.sql(SLOW_QUERY)
            assert response["ok"]
            client.close()
        finally:
            server.shutdown()

    def test_short_read_timeout_fires_on_slow_statement(self, cdb):
        # The converse split: a generous connect budget must not extend
        # the read deadline — a statement slower than ``timeout`` raises.
        server = ReproServer(cdb)
        port = server.start()
        try:
            client = ServerClient(
                "127.0.0.1", port, timeout=0.05, connect_timeout=30.0
            )
            with pytest.raises(OSError):
                client.request(SLOW_QUERY)
            client.close()
        finally:
            server.shutdown()
