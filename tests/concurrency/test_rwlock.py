"""ReadWriteLock semantics: sharing, exclusion, preference, reentrancy."""

import threading
import time

import pytest

from repro.concurrency import ReadWriteLock
from repro.errors import ConcurrencyError


def run_in_thread(fn):
    t = threading.Thread(target=fn, daemon=True)
    t.start()
    return t


class TestBasics:
    def test_readers_share(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        acquired = threading.Event()

        def second_reader():
            lock.acquire_read()
            acquired.set()
            lock.release_read()

        run_in_thread(second_reader).join(timeout=2.0)
        assert acquired.is_set()
        lock.release_read()

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        got_read = threading.Event()
        t = run_in_thread(lambda: (lock.acquire_read(), got_read.set(), lock.release_read()))
        time.sleep(0.05)
        assert not got_read.is_set()
        lock.release_write()
        t.join(timeout=2.0)
        assert got_read.is_set()

    def test_reader_excludes_writer(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        got_write = threading.Event()
        t = run_in_thread(lambda: (lock.acquire_write(), got_write.set(), lock.release_write()))
        time.sleep(0.05)
        assert not got_write.is_set()
        lock.release_read()
        t.join(timeout=2.0)
        assert got_write.is_set()

    def test_write_reentrant(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        lock.acquire_write()
        lock.release_write()
        assert lock.write_held_by_me
        lock.release_write()
        assert not lock.write_held_by_me

    def test_context_managers(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            pass
        with lock.write_locked():
            assert lock.write_held_by_me


class TestWriterPreference:
    def test_new_readers_queue_behind_waiting_writer(self):
        lock = ReadWriteLock()
        lock.acquire_read()

        writer_done = threading.Event()
        late_reader_done = threading.Event()
        order = []

        def writer():
            lock.acquire_write()
            order.append("writer")
            lock.release_write()
            writer_done.set()

        wt = run_in_thread(writer)
        time.sleep(0.05)  # writer is now waiting on our read hold

        def late_reader():
            lock.acquire_read()
            order.append("reader")
            lock.release_read()
            late_reader_done.set()

        rt = run_in_thread(late_reader)
        time.sleep(0.05)
        # The late reader must not have slipped past the waiting writer.
        assert not late_reader_done.is_set()
        lock.release_read()
        wt.join(timeout=2.0)
        rt.join(timeout=2.0)
        assert order == ["writer", "reader"]


class TestMisuse:
    def test_read_while_holding_write_raises(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        with pytest.raises(ConcurrencyError, match="self-deadlock"):
            lock.acquire_read()
        lock.release_write()

    def test_unmatched_read_release_raises(self):
        with pytest.raises(ConcurrencyError):
            ReadWriteLock().release_read()

    def test_write_release_by_non_owner_raises(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        error = []

        def other():
            try:
                lock.release_write()
            except ConcurrencyError as exc:
                error.append(exc)

        run_in_thread(other).join(timeout=2.0)
        assert error
        lock.release_write()

    def test_forced_release_from_other_thread(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        run_in_thread(lambda: lock.release_write(force=True)).join(timeout=2.0)
        # Fully released: another writer can acquire immediately.
        with lock.write_locked():
            pass

    def test_acquire_timeout_raises_instead_of_hanging(self):
        lock = ReadWriteLock(timeout=0.1)
        lock.acquire_write()
        error = []

        def blocked():
            try:
                lock.acquire_read()
            except ConcurrencyError as exc:
                error.append(exc)

        run_in_thread(blocked).join(timeout=5.0)
        assert error and "timed out" in str(error[0])
        lock.release_write()


class TestAcquireTimeoutTyping:
    """Lock-wait expiry surfaces as a *typed, retryable* error and the
    wait counters advance — clients can distinguish "back off and retry"
    from a real concurrency bug (satellite of the governance PR)."""

    def test_read_timeout_is_typed_and_retryable(self):
        from repro.errors import LockTimeoutError, RetryableError
        from repro.observability import registry as metrics

        before = metrics.get_registry().counter("concurrency.read_waits")
        lock = ReadWriteLock(timeout=0.1)
        lock.acquire_write()
        error = []

        def blocked():
            try:
                lock.acquire_read()
            except ConcurrencyError as exc:
                error.append(exc)

        run_in_thread(blocked).join(timeout=5.0)
        lock.release_write()
        assert error
        assert isinstance(error[0], LockTimeoutError)
        assert isinstance(error[0], RetryableError)  # clients may retry
        assert isinstance(error[0], ConcurrencyError)  # old catchers still work
        assert error[0].retryable is True
        after = metrics.get_registry().counter("concurrency.read_waits")
        assert after >= before + 1

    def test_write_timeout_is_typed_and_retryable(self):
        from repro.errors import LockTimeoutError
        from repro.observability import registry as metrics

        before = metrics.get_registry().counter("concurrency.write_waits")
        lock = ReadWriteLock(timeout=0.1)
        lock.acquire_read()
        error = []

        def blocked():
            try:
                lock.acquire_write()
            except ConcurrencyError as exc:
                error.append(exc)

        run_in_thread(blocked).join(timeout=5.0)
        lock.release_read()
        assert error
        assert isinstance(error[0], LockTimeoutError)
        assert error[0].retryable is True
        after = metrics.get_registry().counter("concurrency.write_waits")
        assert after >= before + 1

    def test_governed_wait_interrupted_by_deadline(self):
        """A statement blocked on the lock honors its deadline: the wait
        is sliced, so the timeout lands while *waiting*, not after."""
        import time as _time

        from repro.errors import QueryTimeoutError
        from repro.governance import QueryContext, activate

        lock = ReadWriteLock(timeout=30.0)  # lock budget far beyond test
        lock.acquire_write()
        error = []

        def blocked():
            ctx = QueryContext(1, timeout_ms=200)
            try:
                with activate(ctx):
                    lock.acquire_read()
            except QueryTimeoutError as exc:
                error.append(exc)

        started = _time.monotonic()
        run_in_thread(blocked).join(timeout=10.0)
        elapsed = _time.monotonic() - started
        lock.release_write()
        assert error and isinstance(error[0], QueryTimeoutError)
        assert elapsed < 5.0  # nowhere near the 30s lock budget
