"""Hot backup under concurrent load: the image is the pinned epoch.

Two writers keep committing and a reader keeps scanning while the backup
runs. The barrier hook fingerprints the database at the exact instant
the cut is taken (under the write lock, so nothing commits between the
fingerprint and the cut); the restored image must match that fingerprint
exactly — not "roughly the rows at around that time".
"""

from __future__ import annotations

import threading

import pytest

from repro.backup import restore_backup
from repro.concurrency.database import ConcurrentDatabase
from repro.db.database import Database


def _fingerprint(sql):
    row = sql("SELECT COUNT(*) AS c, SUM(v) AS s FROM t").rows[0]
    return tuple(row)


class TestHotBackupChaos:
    @pytest.mark.parametrize("round_", [0, 1])
    def test_restore_matches_the_pinned_cut_exactly(self, tmp_path, round_):
        src = tmp_path / "src"
        cdb = ConcurrentDatabase.open(str(src))
        cdb.sql("CREATE TABLE t (id INT NOT NULL, v INT)")
        for i in range(10):
            cdb.sql(f"INSERT INTO t VALUES ({i}, {i})")
        cdb.save(str(src))

        stop = threading.Event()
        started = threading.Barrier(4)
        errors = []

        def writer(base):
            try:
                started.wait(timeout=10)
                i = 0
                while not stop.is_set() and i < 3000:
                    cdb.sql(f"INSERT INTO t VALUES ({base + i}, {i})")
                    i += 1
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        def reader():
            try:
                started.wait(timeout=10)
                while not stop.is_set():
                    _fingerprint(cdb.sql)
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(1_000_000,)),
            threading.Thread(target=writer, args=(2_000_000,)),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()

        cut = {}

        def hook(db):
            # Runs under the write lock as the last barrier step: this IS
            # the state the backup's epoch covers.
            cut["fp"] = _fingerprint(db.sql)

        started.wait(timeout=10)
        # Let the writers race for a moment so the backup overlaps real
        # commits, then cut.
        for _ in range(50):
            cdb.sql("SELECT COUNT(*) AS c FROM t")
        result = cdb.backup(str(tmp_path / f"bk{round_}"), barrier_hook=hook)

        # Writers kept committing during the copy: the live database has
        # moved past the cut by the time the backup lands.
        stop.set()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        live_fp = _fingerprint(cdb.sql)
        cdb.close()

        restored = restore_backup(tmp_path / f"bk{round_}", tmp_path / f"dest{round_}")
        assert restored.epoch == result.epoch
        rdb = Database.load(str(tmp_path / f"dest{round_}"))
        restored_fp = _fingerprint(rdb.sql)
        rdb.close()

        assert restored_fp == cut["fp"], (
            f"restored image diverged from the pinned cut: {restored_fp} != "
            f"{cut['fp']} (live ended at {live_fp})"
        )
        # Sanity: the writers really did commit past the cut.
        assert live_fp[0] >= cut["fp"][0]

    def test_backup_lease_is_released_after_the_copy(self, tmp_path):
        cdb = ConcurrentDatabase.open(str(tmp_path / "src"))
        cdb.sql("CREATE TABLE t (id INT NOT NULL, v INT)")
        cdb.sql("INSERT INTO t VALUES (1, 1)")
        cdb.backup(str(tmp_path / "bk"))
        assert len(cdb.db.mvcc.readers) == 0
        assert cdb.db._backups_in_flight == 0
        cdb.close()
