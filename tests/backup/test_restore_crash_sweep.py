"""Crash the restore at every write point: the dest is never half a DB.

While the ``RESTORE_IN_PROGRESS`` marker exists (it is the first file
written and the last removed), the destination is not a database:
``Database.load`` refuses it and ``check`` reports it. Every crash point
must leave the destination in that clearly-uncommitted state — and a
re-run of the same restore over the wreckage must succeed.
"""

from __future__ import annotations

import os

import pytest

from repro.backup import RESTORE_MARKER_NAME, restore_backup
from repro.db.database import Database
from repro.errors import RecoveryError
from repro.storage.diskio import FaultyDisk, InjectedFault

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def _make_backup(tmp_path):
    src = tmp_path / "src"
    db = Database.open(str(src))
    db.sql("CREATE TABLE t (id INT NOT NULL, v INT)")
    for i in range(1, 4):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
    db.save(str(src))
    for i in range(4, 7):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
    expected = sorted(tuple(r) for r in db.sql("SELECT id, v FROM t").rows)
    db.backup(str(tmp_path / "bk"))
    db.close()
    return tmp_path / "bk", expected


class TestRestoreCrashSweep:
    def test_crash_at_every_write_point(self, tmp_path):
        backup, expected = _make_backup(tmp_path)

        probe = FaultyDisk()
        restore_backup(backup, tmp_path / "probe", disk=probe)
        total = probe.ops
        assert total > 4  # the sweep must cover real work

        for n in range(total):
            dest = tmp_path / f"dest_{n}"
            torn_bytes = (n % 5) + 1 if n % 2 == SEED % 2 else None
            disk = FaultyDisk(crash_after_ops=n, torn_write_bytes=torn_bytes)
            with pytest.raises(InjectedFault):
                restore_backup(backup, dest, disk=disk)

            # The wreckage is clearly uncommitted: load refuses it.
            with pytest.raises(RecoveryError):
                Database.load(str(dest))
            if (dest / RESTORE_MARKER_NAME).exists():
                report = Database.check(str(dest))
                assert not report.ok
                assert report.manifest_status == "restore-in-progress"

            # Re-running the restore over the wreckage succeeds.
            result = restore_backup(backup, dest)
            assert result.records > 0
            rdb = Database.load(str(dest))
            got = sorted(tuple(r) for r in rdb.sql("SELECT id, v FROM t").rows)
            assert got == expected
            rdb.close()

    def test_marker_refuses_load_until_restore_commits(self, tmp_path):
        backup, expected = _make_backup(tmp_path)
        dest = tmp_path / "dest"
        restore_backup(backup, dest)
        # Re-planting the marker flips the directory back to uncommitted,
        # however complete its contents are.
        (dest / RESTORE_MARKER_NAME).write_bytes(b"{}")
        with pytest.raises(RecoveryError, match="uncommitted restore"):
            Database.load(str(dest))
        report = Database.check(str(dest))
        assert report.manifest_status == "restore-in-progress"
        assert not report.ok
        # A fresh restore claims the marked directory and commits.
        restore_backup(backup, dest)
        rdb = Database.load(str(dest))
        got = sorted(tuple(r) for r in rdb.sql("SELECT id, v FROM t").rows)
        assert got == expected
        rdb.close()
