"""Crash the backup at every write point: torn backups are never valid.

The invariant is *commit-or-nothing*: whatever write point the crash
lands on, the destination either fails verification (and restore refuses
it) or — when the crash hit post-commit bookkeeping such as the archive
registry update — is a complete, verified backup that restores exactly.
There is no third state.
"""

from __future__ import annotations

import os

import pytest

from repro.backup import restore_backup, verify_backup
from repro.db.database import Database
from repro.errors import BackupError
from repro.storage.diskio import DiskIO, FaultyDisk, InjectedFault

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def _seed_source(root):
    db = Database.open(str(root))
    db.sql("CREATE TABLE t (id INT NOT NULL, v INT)")
    for i in range(1, 4):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
    db.save(str(root))
    for i in range(4, 7):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
    expected = sorted(tuple(r) for r in db.sql("SELECT id, v FROM t").rows)
    db.close()
    return expected


def _probe(src, dest):
    """Measure the op counts of a clean load + backup on a FaultyDisk."""
    disk = FaultyDisk()
    db = Database.load(str(src), disk=disk)
    load_ops = disk.ops
    db.backup(str(dest), disk=disk)
    db.close()
    return load_ops, disk.ops - load_ops


class TestBackupCrashSweep:
    def test_crash_at_every_write_point(self, tmp_path):
        src = tmp_path / "src"
        expected = _seed_source(src)
        load_ops, backup_ops = _probe(src, tmp_path / "probe")
        assert backup_ops > 4  # the sweep must cover real work
        clean = DiskIO()

        torn, committed = 0, 0
        for n in range(backup_ops):
            dest = tmp_path / f"bk_{n}"
            torn_bytes = (n % 7) + 1 if n % 2 == SEED % 2 else None
            disk = FaultyDisk(
                crash_after_ops=load_ops + n, torn_write_bytes=torn_bytes
            )
            db = Database.load(str(src), disk=disk)
            assert disk.ops == load_ops  # loads are deterministic
            with pytest.raises(InjectedFault):
                db.backup(str(dest), disk=disk)
            # The "crash" unwound; the barrier must not leak state.
            assert db._backups_in_flight == 0
            assert len(db.mvcc.readers) == 0
            del db

            try:
                verify_backup(clean, dest)
            except BackupError:
                torn += 1
                # A torn backup is never restorable-as-valid.
                with pytest.raises(BackupError):
                    restore_backup(dest, tmp_path / f"r_{n}")
                assert not (tmp_path / f"r_{n}").exists()
            else:
                # Crash landed after the commit point (manifest written
                # and verified): the backup must be fully usable.
                committed += 1
                restore_backup(dest, tmp_path / f"r_{n}")
                rdb = Database.load(str(tmp_path / f"r_{n}"))
                got = sorted(
                    tuple(r) for r in rdb.sql("SELECT id, v FROM t").rows
                )
                assert got == expected
                rdb.close()

        # Both regimes were exercised: most points tear the backup, the
        # registry bookkeeping after the manifest commit does not.
        assert torn > committed >= 1

        # The source database survived every "crash" untouched.
        db = Database.load(str(src))
        got = sorted(tuple(r) for r in db.sql("SELECT id, v FROM t").rows)
        assert got == expected
        db.close()
        report = Database.check(str(src))
        assert report.ok, report.render()

    def test_dropped_manifest_rename_leaves_backup_uncommitted(self, tmp_path):
        src = tmp_path / "src"
        _seed_source(src)
        disk = FaultyDisk(drop_rename_of="BACKUP_MANIFEST")
        db = Database.load(str(src), disk=disk)
        # The lost rename means verify_backup finds no manifest: the
        # backup reports failure rather than claiming success.
        with pytest.raises(BackupError):
            db.backup(str(tmp_path / "bk"), disk=disk)
        del db
        with pytest.raises(BackupError):
            restore_backup(tmp_path / "bk", tmp_path / "dest")
