"""WAL archiving: rotation hooks, archive-before-delete, retention."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.backup import ARCHIVE_DIR_NAME, WalArchiver, check_archive
from repro.db.database import Database
from repro.errors import WalCorruptError
from repro.storage.diskio import DiskIO
from repro.wal.log import WriteAheadLog
from repro.wal.record import WalRecordType


def _fill(wal, count, start=0):
    for i in range(start, start + count):
        wal.log_statement(WalRecordType.INSERT, "t", b"x" * 40)
    wal.flush()


class TestRotationArchiving:
    def test_sealed_segments_are_archived_on_rotation(self, tmp_path):
        disk = DiskIO()
        wal, _ = WriteAheadLog.attach(
            disk, tmp_path / "wal", segment_bytes=256, durability="per-commit"
        )
        archiver = WalArchiver(disk, tmp_path / "arch")
        wal.set_archiver(archiver)
        _fill(wal, 30)
        spans = archiver.segment_spans()
        assert len(spans) >= 2  # rotation really happened and archived
        # Spans are contiguous: each segment starts right after the last.
        for (_, _, prev_last), (_, next_first, _) in zip(spans, spans[1:]):
            assert next_first == prev_last + 1
        assert archiver.last_archived_lsn() >= spans[-1][1]
        verdicts = check_archive(disk, tmp_path / "arch")
        assert all(v.ok for v in verdicts)

    def test_set_archiver_catches_up_on_sealed_segments(self, tmp_path):
        disk = DiskIO()
        wal, _ = WriteAheadLog.attach(
            disk, tmp_path / "wal", segment_bytes=256, durability="per-commit"
        )
        _fill(wal, 30)  # several segments sealed with no archiver attached
        archiver = WalArchiver(disk, tmp_path / "arch")
        wal.set_archiver(archiver)
        assert len(archiver.segment_spans()) >= 2
        # Catch-up is idempotent: attaching again copies nothing new.
        before = disk.listdir(tmp_path / "arch")
        wal.set_archiver(WalArchiver(disk, tmp_path / "arch"))
        assert disk.listdir(tmp_path / "arch") == before

    def test_archiver_refuses_damaged_source_segment(self, tmp_path):
        disk = DiskIO()
        wal, _ = WriteAheadLog.attach(
            disk, tmp_path / "wal", durability="per-commit"
        )
        _fill(wal, 3)
        name = disk.listdir(tmp_path / "wal")[0]
        seg = tmp_path / "wal" / name
        data = bytearray(disk.read_file(seg))
        data[10] ^= 0xFF
        Path(seg).write_bytes(bytes(data))
        archiver = WalArchiver(disk, tmp_path / "arch")
        with pytest.raises(WalCorruptError, match="refusing to archive"):
            archiver.archive_segment(disk, seg, 1)
        assert disk.listdir(tmp_path / "arch") == []


class TestArchiveBeforeDelete:
    def test_checkpoint_truncation_archives_first(self, tmp_path):
        db = Database.open(str(tmp_path / "db"))
        db.sql("CREATE TABLE t (id INT NOT NULL)")
        for i in range(5):
            db.sql(f"INSERT INTO t VALUES ({i})")
        last = db.wal.last_lsn
        db.save(str(tmp_path / "db"))  # covers + truncates the segment
        db.close()
        archive = tmp_path / "db" / ARCHIVE_DIR_NAME
        archiver = WalArchiver(DiskIO(), archive)
        # Everything the checkpoint deleted from the live log is in the
        # archive: history 1..last is fully readable.
        assert archiver.last_archived_lsn() >= last
        verdicts = check_archive(DiskIO(), archive)
        assert verdicts and all(v.ok for v in verdicts)

    def test_unarchivable_segment_is_kept_in_live_log(self, tmp_path):
        class RefusingArchiver:
            archived = 0

            def archive_segment(self, disk, src, first_lsn):
                return False  # e.g. archive volume full

            def prune(self):
                return 0

        db = Database.open(str(tmp_path / "db"))
        db.sql("CREATE TABLE t (id INT NOT NULL)")
        db.sql("INSERT INTO t VALUES (1)")
        db.wal.set_archiver(None)
        db.wal.archiver = RefusingArchiver()
        before = DiskIO().listdir(tmp_path / "db" / "wal")
        db.save(str(tmp_path / "db"))
        after = DiskIO().listdir(tmp_path / "db" / "wal")
        # The covered segment survived: archive-before-delete refused to
        # drop what the archiver could not confirm.
        assert set(before) <= set(after)
        db.close()


class TestRetention:
    def test_prune_respects_the_oldest_registered_backup(self, tmp_path):
        disk = DiskIO()
        wal, _ = WriteAheadLog.attach(
            disk, tmp_path / "wal", segment_bytes=256, durability="per-commit"
        )
        archiver = WalArchiver(disk, tmp_path / "arch")
        wal.set_archiver(archiver)
        _fill(wal, 40)
        spans = archiver.segment_spans()
        assert len(spans) >= 3

        # No registered backup: nothing may be pruned.
        assert archiver.retention_floor() is None
        assert archiver.prune() == 0
        assert archiver.segment_spans() == spans

        # A backup whose checkpoint covers the first two segments.
        floor = spans[1][2]
        archiver.register_backup(
            "bk1", backup_lsn=floor + 3, checkpoint_lsn=floor
        )
        pruned = archiver.prune()
        assert pruned == 2
        remaining = archiver.segment_spans()
        assert remaining[0][1] == floor + 1

        # An OLDER backup registered later lowers the floor; nothing
        # below the already-pruned point can come back, but nothing
        # above it is pruned either.
        archiver.register_backup("bk0", backup_lsn=2, checkpoint_lsn=1)
        assert archiver.retention_floor() == 1
        assert archiver.prune() == 0
        assert archiver.segment_spans() == remaining

    def test_unreadable_registry_disables_pruning(self, tmp_path):
        disk = DiskIO()
        archiver = WalArchiver(disk, tmp_path / "arch")
        archiver.register_backup("bk", backup_lsn=10, checkpoint_lsn=5)
        assert archiver.retention_floor() == 5
        (tmp_path / "arch" / "backups.json").write_bytes(b"not json{")
        assert archiver.registered_backups() == []
        assert archiver.retention_floor() is None
        assert archiver.prune() == 0


class TestCheckArchive:
    def _archive_with_segments(self, tmp_path):
        disk = DiskIO()
        wal, _ = WriteAheadLog.attach(
            disk, tmp_path / "wal", segment_bytes=256, durability="per-commit"
        )
        archiver = WalArchiver(disk, tmp_path / "arch")
        wal.set_archiver(archiver)
        _fill(wal, 40)
        names = [name for name, _f, _l in archiver.segment_spans()]
        assert len(names) >= 3
        return disk, tmp_path / "arch", names

    def test_gap_is_reported(self, tmp_path):
        disk, arch, names = self._archive_with_segments(tmp_path)
        (arch / names[1]).unlink()
        verdicts = check_archive(disk, arch)
        gaps = [v for v in verdicts if v.status == "archive-gap"]
        assert len(gaps) == 1
        assert "unreachable" in gaps[0].detail

    def test_corrupt_archived_segment_is_reported(self, tmp_path):
        disk, arch, names = self._archive_with_segments(tmp_path)
        data = bytearray((arch / names[0]).read_bytes())
        data[-3] ^= 0xFF  # even a "torn tail" is corruption in a sealed copy
        (arch / names[0]).write_bytes(bytes(data))
        verdicts = check_archive(disk, arch)
        assert any(v.status == "corrupt" for v in verdicts)

    def test_pruned_history_behind_a_registered_backup_is_flagged(self, tmp_path):
        disk, arch, names = self._archive_with_segments(tmp_path)
        archiver = WalArchiver(disk, arch)
        # A backup that would need history starting at LSN 3, but the
        # older segments are gone.
        archiver.register_backup("bk-old", backup_lsn=2, checkpoint_lsn=1)
        (arch / names[0]).unlink()
        verdicts = check_archive(disk, arch)
        flagged = [
            v
            for v in verdicts
            if v.segment == "(archive)" and v.status == "archive-gap"
        ]
        assert len(flagged) == 1
        assert "bk-old" in flagged[0].detail

    def test_database_check_includes_archive_verdicts(self, tmp_path):
        db = Database.open(str(tmp_path / "db"))
        db.sql("CREATE TABLE t (id INT NOT NULL)")
        for i in range(5):
            db.sql(f"INSERT INTO t VALUES ({i})")
        db.save(str(tmp_path / "db"))
        db.close()
        report = Database.check(str(tmp_path / "db"))
        assert report.ok
        assert report.archive_verdicts  # archiving is on by default
        rendered = "\n".join(report.render())
        assert "archive" in rendered
        # Damage the archive: the database check goes red.
        arch = tmp_path / "db" / ARCHIVE_DIR_NAME
        seg = next(p for p in sorted(arch.iterdir()) if p.suffix == ".wal")
        data = bytearray(seg.read_bytes())
        data[8] ^= 0xFF
        seg.write_bytes(bytes(data))
        report = Database.check(str(tmp_path / "db"))
        assert not report.ok
