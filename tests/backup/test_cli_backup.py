"""CLI surface: `repro backup` / `repro restore` and shell meta-commands."""

from __future__ import annotations

from repro.backup import ARCHIVE_DIR_NAME
from repro.cli import Shell, main
from repro.db.database import Database


def _seed(path):
    db = Database.open(str(path))
    db.sql("CREATE TABLE t (id INT NOT NULL, v INT)")
    for i in range(1, 4):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
    db.save(str(path))
    db.sql("INSERT INTO t VALUES (4, 40)")
    boundary = db.wal.last_lsn
    db.sql("BEGIN")
    db.sql("INSERT INTO t VALUES (5, 50)")
    mid_txn = db.wal.last_lsn
    db.sql("COMMIT")
    db.close()
    return boundary, mid_txn


class TestBackupSubcommand:
    def test_backup_then_restore_roundtrip(self, tmp_path, capsys):
        boundary, _ = _seed(tmp_path / "src")
        assert main(["backup", str(tmp_path / "src"), str(tmp_path / "bk")]) == 0
        out = capsys.readouterr().out
        assert "committed to" in out and "cut at LSN" in out

        assert main(["restore", str(tmp_path / "bk"), str(tmp_path / "dest")]) == 0
        out = capsys.readouterr().out
        assert "restored" in out and "result: ok" in out
        db = Database.load(str(tmp_path / "dest"))
        assert db.sql("SELECT COUNT(*) AS n FROM t").scalar() == 5
        db.close()

    def test_restore_to_lsn_with_archive(self, tmp_path, capsys):
        boundary, _ = _seed(tmp_path / "src")
        assert main(["backup", str(tmp_path / "src"), str(tmp_path / "bk")]) == 0
        capsys.readouterr()
        code = main(
            [
                "restore",
                str(tmp_path / "bk"),
                str(tmp_path / "dest"),
                "--to-lsn",
                str(boundary),
                "--archive",
                str(tmp_path / "src" / ARCHIVE_DIR_NAME),
            ]
        )
        assert code == 0
        assert f"at LSN {boundary}" in capsys.readouterr().out
        db = Database.load(str(tmp_path / "dest"))
        assert db.sql("SELECT COUNT(*) AS n FROM t").scalar() == 4
        db.close()

    def test_mid_transaction_target_fails_with_boundaries(self, tmp_path, capsys):
        _, mid_txn = _seed(tmp_path / "src")
        assert main(["backup", str(tmp_path / "src"), str(tmp_path / "bk")]) == 0
        capsys.readouterr()
        code = main(
            [
                "restore",
                str(tmp_path / "bk"),
                str(tmp_path / "dest"),
                "--to-lsn",
                str(mid_txn),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "restore failed" in out and "nearest boundaries" in out
        assert not (tmp_path / "dest").exists()

    def test_usage_errors(self, tmp_path, capsys):
        assert main(["backup", str(tmp_path / "src")]) == 2
        assert "usage" in capsys.readouterr().out
        assert main(["restore", str(tmp_path / "bk")]) == 2
        assert "usage" in capsys.readouterr().out
        assert (
            main(["restore", str(tmp_path / "bk"), "d", "--to-lsn", "abc"]) == 2
        )
        assert "invalid" in capsys.readouterr().out

    def test_backup_of_missing_database_fails(self, tmp_path, capsys):
        assert main(["backup", str(tmp_path / "nope"), str(tmp_path / "bk")]) == 1
        assert "backup failed" in capsys.readouterr().out

    def test_check_reports_archive_damage(self, tmp_path, capsys):
        _seed(tmp_path / "src")
        assert main(["check", str(tmp_path / "src")]) == 0
        capsys.readouterr()
        arch = tmp_path / "src" / ARCHIVE_DIR_NAME
        seg = next(p for p in sorted(arch.iterdir()) if p.suffix == ".wal")
        data = bytearray(seg.read_bytes())
        data[8] ^= 0xFF
        seg.write_bytes(bytes(data))
        assert main(["check", str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "wal_archive" in out and "corrupt" in out


class TestShellMetaCommands:
    def test_backslash_backup_and_wal_status(self, tmp_path):
        shell = Shell()
        out = []
        for line in (
            f"\\open {tmp_path / 'db'}",
            "CREATE TABLE t (id INT NOT NULL);",
            "INSERT INTO t VALUES (1);",
            f"\\backup {tmp_path / 'bk'}",
            "\\wal",
        ):
            out.extend(shell.feed_line(line))
        text = "\n".join(out)
        assert "committed to" in text and "cut at LSN" in text
        assert "backups registered" in text

    def test_backslash_backup_usage(self):
        shell = Shell()
        assert "usage" in "\n".join(shell.feed_line("\\backup"))
