"""Hot-backup lifecycle: barrier, copy, verify, refuse-overwrite."""

from __future__ import annotations

import pytest

from repro.backup import (
    BACKUP_MANIFEST_NAME,
    backup_database,
    load_backup_manifest,
    prepare_backup,
    restore_backup,
    verify_backup,
)
from repro.db.database import Database
from repro.errors import BackupError
from repro.observability.registry import get_registry
from repro.storage.diskio import DiskIO


def _seed(path, rows=5):
    db = Database.open(str(path))
    db.sql("CREATE TABLE t (id INT NOT NULL, v INT)")
    for i in range(1, rows + 1):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
    return db


def _rows(db):
    return sorted(tuple(r) for r in db.sql("SELECT id, v FROM t").rows)


class TestBackupBasics:
    def test_backup_and_restore_roundtrip(self, tmp_path):
        db = _seed(tmp_path / "src")
        db.save(str(tmp_path / "src"))
        db.sql("INSERT INTO t VALUES (6, 60)")  # WAL tail past the checkpoint
        expected = _rows(db)

        result = db.backup(str(tmp_path / "bk"))
        db.close()

        assert result.backup_lsn > result.checkpoint_lsn
        assert result.snapshot_id is not None
        assert result.files > 0 and result.bytes > 0
        assert result.wal_records == result.backup_lsn - result.checkpoint_lsn

        manifest = verify_backup(DiskIO(), tmp_path / "bk")
        assert manifest.backup_lsn == result.backup_lsn
        assert manifest.checkpoint_lsn == result.checkpoint_lsn

        restored = restore_backup(tmp_path / "bk", tmp_path / "dest")
        assert restored.target_lsn == result.backup_lsn
        assert restored.epoch == result.epoch
        rdb = Database.load(str(tmp_path / "dest"))
        assert _rows(rdb) == expected
        rdb.close()

    def test_backup_without_snapshot_is_wal_only(self, tmp_path):
        # Never checkpointed: the whole database lives in the log.
        db = _seed(tmp_path / "src", rows=3)
        expected = _rows(db)
        result = db.backup(str(tmp_path / "bk"))
        db.close()

        assert result.snapshot_id is None
        assert result.checkpoint_lsn == 0
        assert result.wal_records == result.backup_lsn

        restore_backup(tmp_path / "bk", tmp_path / "dest")
        rdb = Database.load(str(tmp_path / "dest"))
        assert _rows(rdb) == expected
        rdb.close()

    def test_backup_refuses_nondurable_database(self):
        db = Database()
        with pytest.raises(BackupError, match="durable"):
            backup_database(db, "/nonexistent/bk")

    def test_backup_refuses_to_overwrite_completed_backup(self, tmp_path):
        db = _seed(tmp_path / "src")
        db.backup(str(tmp_path / "bk"))
        with pytest.raises(BackupError, match="refusing"):
            db.backup(str(tmp_path / "bk"))
        db.close()

    def test_restore_refuses_nonempty_destination(self, tmp_path):
        db = _seed(tmp_path / "src")
        db.backup(str(tmp_path / "bk"))
        db.close()
        (tmp_path / "dest").mkdir()
        (tmp_path / "dest" / "precious.txt").write_text("do not delete")
        with pytest.raises(Exception, match="refusing"):
            restore_backup(tmp_path / "bk", tmp_path / "dest")
        assert (tmp_path / "dest" / "precious.txt").read_text() == "do not delete"

    def test_restore_of_missing_backup_raises(self, tmp_path):
        with pytest.raises(BackupError, match="torn or never finished"):
            restore_backup(tmp_path / "nothing", tmp_path / "dest")
        # The destination was never touched.
        assert not (tmp_path / "dest").exists()

    def test_backup_counters(self, tmp_path):
        registry = get_registry()
        before = registry.snapshot()
        db = _seed(tmp_path / "src")
        db.backup(str(tmp_path / "bk"))
        restore_backup(tmp_path / "bk", tmp_path / "dest")
        db.close()
        after = registry.snapshot()
        assert after.get("backup.started", 0) - before.get("backup.started", 0) == 1
        assert (
            after.get("backup.completed", 0) - before.get("backup.completed", 0) == 1
        )
        assert after.get("backup.files_copied", 0) > before.get(
            "backup.files_copied", 0
        )
        assert (
            after.get("restore.completed", 0) - before.get("restore.completed", 0)
            == 1
        )
        assert after.get("restore.records_restored", 0) > before.get(
            "restore.records_restored", 0
        )

    def test_backup_manifest_is_self_checksummed(self, tmp_path):
        db = _seed(tmp_path / "src")
        db.backup(str(tmp_path / "bk"))
        db.close()
        path = tmp_path / "bk" / BACKUP_MANIFEST_NAME
        data = path.read_bytes()
        path.write_bytes(data.replace(b'"backup_lsn"', b'"backup_lsX"'))
        with pytest.raises(BackupError):
            load_backup_manifest(DiskIO(), tmp_path / "bk")

    def test_verify_backup_catches_damaged_blob(self, tmp_path):
        db = _seed(tmp_path / "src")
        db.save(str(tmp_path / "src"))
        db.backup(str(tmp_path / "bk"))
        db.close()
        # Flip a byte in some copied image file; verification must name it.
        image = tmp_path / "bk" / "image"
        victim = next(p for p in sorted(image.rglob("*")) if p.is_file())
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        with pytest.raises(BackupError, match="checksum|size"):
            verify_backup(DiskIO(), tmp_path / "bk")
        with pytest.raises(BackupError):
            restore_backup(tmp_path / "bk", tmp_path / "dest")


class TestCheckpointDeferral:
    def test_checkpoints_defer_while_backup_in_flight(self, tmp_path):
        db = _seed(tmp_path / "src")
        db.save(str(tmp_path / "src"))
        db.sql("INSERT INTO t VALUES (100, 1000)")
        registry = get_registry()
        before = registry.counter("backup.checkpoints_deferred")

        job = prepare_backup(db, tmp_path / "bk")
        manifest_before = (tmp_path / "src" / "MANIFEST.json").read_bytes()
        db.save(str(tmp_path / "src"))  # must defer, not checkpoint
        assert registry.counter("backup.checkpoints_deferred") == before + 1
        assert (tmp_path / "src" / "MANIFEST.json").read_bytes() == manifest_before

        result = job.run()
        assert result.wal_records >= 1
        # With the backup done, checkpoints work again.
        db.save(str(tmp_path / "src"))
        assert (tmp_path / "src" / "MANIFEST.json").read_bytes() != manifest_before
        db.close()

    def test_failed_barrier_hook_releases_the_lease(self, tmp_path):
        db = _seed(tmp_path / "src")

        def hook(_db):
            raise RuntimeError("fingerprint failed")

        with pytest.raises(RuntimeError):
            prepare_backup(db, tmp_path / "bk", barrier_hook=hook)
        assert db._backups_in_flight == 0
        assert len(db.mvcc.readers) == 0
        db.close()
