"""Point-in-time recovery: every commit boundary restores exactly.

The acceptance bar from the issue: for EVERY committed transaction
boundary T in a scripted history, ``restore --to-lsn T`` must reproduce
the same table contents a reference database had immediately after T —
and every non-boundary LSN must be rejected with a typed error naming
the enclosing transaction and the nearest boundaries.
"""

from __future__ import annotations

import pytest

from repro.backup import ARCHIVE_DIR_NAME, restore_backup
from repro.db.database import Database
from repro.errors import RestoreTargetError
from repro.storage.diskio import DiskIO


def _fingerprint(db):
    rows = sorted(tuple(r) for r in db.sql("SELECT id, v FROM t").rows)
    agg = db.sql("SELECT COUNT(*) AS c, SUM(v) AS s FROM t").rows[0]
    return (tuple(agg), tuple(rows))


def _build_history(root):
    """A scripted history with auto-commits, a checkpoint, an explicit
    transaction, a rollback, and a backup taken mid-stream.

    Returns (backup_result, boundaries, committed_txn_id, last_lsn) where
    ``boundaries`` maps each commit-boundary LSN to the fingerprint the
    reference database had right after it.
    """
    db = Database.open(str(root))
    boundaries = {}

    def mark():
        boundaries[db.wal.last_lsn] = _fingerprint(db)

    db.sql("CREATE TABLE t (id INT NOT NULL, v INT)")
    mark()
    for i in (1, 2, 3):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
        mark()
    db.save(str(root))  # checkpoint: itself a valid restore target
    mark()
    db.sql("INSERT INTO t VALUES (4, 40)")
    mark()
    db.sql("BEGIN")
    committed_txn_id = db.wal.last_lsn  # txn ids are TXN_BEGIN LSNs
    db.sql("INSERT INTO t VALUES (5, 50)")
    db.sql("INSERT INTO t VALUES (6, 60)")
    db.sql("COMMIT")
    mark()

    result = db.backup(str(root.parent / "bk"))

    db.sql("INSERT INTO t VALUES (7, 70)")
    mark()
    db.sql("BEGIN")
    db.sql("INSERT INTO t VALUES (8, 80)")
    db.sql("ROLLBACK")  # the abort marker is a boundary too
    mark()
    db.sql("INSERT INTO t VALUES (9, 90)")
    mark()
    last_lsn = db.wal.last_lsn
    # Final checkpoint seals + archives the live segment, so the archive
    # holds the full post-backup history.
    db.save(str(root), force=True)
    db.close()
    return result, boundaries, committed_txn_id, last_lsn


class TestPointInTimeSweep:
    @pytest.fixture(scope="class")
    def history(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("pitr")
        root = base / "src"
        result, boundaries, txn_id, last_lsn = _build_history(root)
        return base, root, result, boundaries, txn_id, last_lsn

    def test_every_boundary_restores_exactly(self, history):
        base, root, result, boundaries, _txn, _last = history
        archive = root / ARCHIVE_DIR_NAME
        reachable = {
            lsn: fp
            for lsn, fp in boundaries.items()
            if lsn >= result.checkpoint_lsn
        }
        assert len(reachable) >= 6  # the sweep must actually sweep
        # Targets both before and after the backup cut must be present.
        assert any(lsn <= result.backup_lsn for lsn in reachable)
        assert any(lsn > result.backup_lsn for lsn in reachable)
        for lsn, expected in sorted(reachable.items()):
            dest = base / f"dest_{lsn}"
            restored = restore_backup(
                root.parent / "bk", dest, to_lsn=lsn, archive=archive
            )
            assert restored.target_lsn == lsn
            rdb = Database.load(str(dest))
            assert _fingerprint(rdb) == expected, f"state diverged at LSN {lsn}"
            rdb.close()
            report = Database.check(str(dest))
            assert report.ok, report.render()

    def test_latest_is_the_newest_boundary(self, history):
        base, root, _result, boundaries, _txn, _last = history
        newest = max(boundaries)
        restored = restore_backup(
            root.parent / "bk",
            base / "dest_latest",
            archive=root / ARCHIVE_DIR_NAME,
        )
        assert restored.target_lsn == newest
        rdb = Database.load(str(base / "dest_latest"))
        assert _fingerprint(rdb) == boundaries[newest]
        rdb.close()

    def test_restore_to_txn_lands_on_its_commit(self, history):
        base, root, _result, boundaries, txn_id, _last = history
        restored = restore_backup(
            root.parent / "bk",
            base / "dest_txn",
            to_txn=txn_id,
            archive=root / ARCHIVE_DIR_NAME,
        )
        assert restored.target_lsn in boundaries
        rdb = Database.load(str(base / "dest_txn"))
        fp = _fingerprint(rdb)
        rdb.close()
        assert fp == boundaries[restored.target_lsn]
        # The committed txn's rows (5, 6) are in; later auto-commits are not.
        ids = {row[0] for row in fp[1]}
        assert {5, 6} <= ids and 7 not in ids

    def test_every_non_boundary_lsn_is_rejected(self, history):
        base, root, result, boundaries, _txn, last_lsn = history
        archive = root / ARCHIVE_DIR_NAME
        non_boundaries = [
            lsn
            for lsn in range(result.checkpoint_lsn + 1, last_lsn + 1)
            if lsn not in boundaries
        ]
        assert non_boundaries  # txn interiors exist in the script
        for lsn in non_boundaries:
            with pytest.raises(RestoreTargetError) as excinfo:
                restore_backup(
                    root.parent / "bk",
                    base / f"reject_{lsn}",
                    to_lsn=lsn,
                    archive=archive,
                )
            err = excinfo.value
            assert "transaction" in str(err)
            assert err.previous_boundary in boundaries or (
                err.previous_boundary == result.checkpoint_lsn
            )
            # A rejected restore writes nothing.
            assert not (base / f"reject_{lsn}").exists()

    def test_target_before_the_base_image_is_rejected(self, history):
        base, root, result, boundaries, _txn, _last = history
        old = [lsn for lsn in boundaries if lsn < result.checkpoint_lsn]
        assert old  # pre-checkpoint boundaries exist in the script
        with pytest.raises(RestoreTargetError, match="predates"):
            restore_backup(
                root.parent / "bk",
                base / "dest_old",
                to_lsn=min(old),
                archive=root / ARCHIVE_DIR_NAME,
            )

    def test_target_beyond_history_is_rejected(self, history):
        base, root, _result, _boundaries, _txn, last_lsn = history
        with pytest.raises(RestoreTargetError, match="beyond the end"):
            restore_backup(
                root.parent / "bk",
                base / "dest_future",
                to_lsn=last_lsn + 100,
                archive=root / ARCHIVE_DIR_NAME,
            )

    def test_without_archive_history_stops_at_backup_lsn(self, history):
        base, root, result, boundaries, _txn, _last = history
        # No archive: the newest reachable boundary is the backup cut.
        restored = restore_backup(root.parent / "bk", base / "dest_noarch")
        assert restored.target_lsn == result.backup_lsn
        assert restored.epoch == result.epoch
        with pytest.raises(RestoreTargetError, match="beyond the end"):
            restore_backup(
                root.parent / "bk",
                base / "dest_noarch2",
                to_lsn=max(boundaries),
            )

    def test_aborted_txn_has_no_commit_target(self, history):
        base, root, _result, _boundaries, txn_id, _last = history
        # The rolled-back transaction began after the committed one; its
        # id is some TXN_BEGIN LSN past txn_id. Probe a plausible id.
        with pytest.raises(RestoreTargetError, match="no COMMIT"):
            restore_backup(
                root.parent / "bk",
                base / "dest_aborted",
                to_txn=txn_id + 1,  # not a committed txn id
                archive=root / ARCHIVE_DIR_NAME,
            )
