"""Error-path atomicity of auto-commit DML (no explicit transaction).

A statement that fails for *data* reasons — a coercion error on the
third row of a multi-row INSERT, a VARCHAR overflow produced halfway
through an UPDATE — must leave the database bit-identical to the
pre-statement state and append nothing to the WAL. These are the
ordinary production failures the fault-injection sweep's exotic faults
generalize; they get their own explicit regression tests.
"""

import pytest

from repro import Database, StoreConfig
from repro.errors import TypeMismatchError

from .conftest import fingerprint_db

_CONFIG = StoreConfig(rowgroup_size=16, bulk_load_threshold=8, delta_close_rows=8)


def seeded(storage: str) -> Database:
    db = Database(_CONFIG)
    db.sql(
        f"CREATE TABLE t (id INT NOT NULL, v VARCHAR(3), amount FLOAT) "
        f"USING {storage}"
    )
    db.insert("t", [(1, "a", 1.5), (2, "b", 2.5)])
    return db


class TestInsertCoercionFailures:
    @pytest.mark.parametrize("storage", ["columnstore", "rowstore", "both"])
    def test_bad_type_in_third_row(self, storage):
        db = seeded(storage)
        before = fingerprint_db(db)
        with pytest.raises(TypeMismatchError):
            db.insert("t", [(3, "c", 3.5), (4, "d", 4.5), ("oops", "e", 5.5)])
        assert fingerprint_db(db) == before
        db.insert("t", [(3, "c", 3.5)])  # still usable
        assert db.sql("SELECT COUNT(*) AS n FROM t").scalar() == 3

    def test_varchar_overflow_in_later_row(self):
        db = seeded("columnstore")
        before = fingerprint_db(db)
        with pytest.raises(TypeMismatchError):
            db.insert("t", [(3, "c", 3.5), (4, "toolong", 4.5)])
        assert fingerprint_db(db) == before

    def test_null_in_not_null_column(self):
        db = seeded("both")
        before = fingerprint_db(db)
        with pytest.raises(Exception):
            db.insert("t", [(3, "c", 3.5), (None, "d", 4.5)])
        assert fingerprint_db(db) == before


class TestBulkLoadCoercionFailures:
    def test_bad_row_mid_batch_above_threshold(self):
        db = seeded("columnstore")
        before = fingerprint_db(db)
        rows = [(10 + i, "x", float(i)) for i in range(12)]
        rows[7] = (17, "x", "not-a-float")
        with pytest.raises(TypeMismatchError):
            db.bulk_load("t", rows)
        assert fingerprint_db(db) == before


class TestUpdateCoercionFailures:
    @pytest.mark.parametrize("storage", ["columnstore", "rowstore", "both"])
    def test_computed_value_overflows_on_second_row(self, storage):
        # v is VARCHAR(3); the update copies a wider value into it. The
        # first matched row fits, the second overflows — the statement
        # must fail as a whole with the first row untouched.
        db = Database(_CONFIG)
        db.sql(
            f"CREATE TABLE t (id INT NOT NULL, v VARCHAR(3), w VARCHAR) "
            f"USING {storage}"
        )
        db.insert("t", [(1, "a", "ok"), (2, "b", "waytoolong")])
        before = fingerprint_db(db)
        with pytest.raises(TypeMismatchError):
            db.sql("UPDATE t SET v = w")
        assert fingerprint_db(db) == before
        assert db.sql("SELECT id, v FROM t ORDER BY id").rows == [(1, "a"), (2, "b")]


class TestWalUntouched:
    def test_failed_statement_appends_nothing(self, tmp_path):
        db = Database.open(
            str(tmp_path / "d"), durability="per-commit", default_config=_CONFIG
        )
        db.sql("CREATE TABLE t (id INT NOT NULL, v VARCHAR(3), amount FLOAT)")
        db.insert("t", [(1, "a", 1.5)])
        before = fingerprint_db(db)
        lsn = db.wal.last_lsn
        with pytest.raises(TypeMismatchError):
            db.insert("t", [(2, "b", 2.5), (3, "bad", "bad")])
        assert db.wal.last_lsn == lsn
        assert fingerprint_db(db) == before
        db.close()
        # Replay after reopen lands on the same committed state.
        assert fingerprint_db(
            Database.open(str(tmp_path / "d"), default_config=_CONFIG)
        ) == before
