"""Shared fixtures for the transaction tests.

The load-bearing helper is :func:`fingerprint_db`: a deep, *physical*
capture of every mutable structure in the engine — heap pages (including
tombstones and byte accounting), B+tree index entries, delta stores
(rows, open/closed state, id allocators), row-group directories, global
dictionaries, delete bitmaps, and catalog epochs. Statement atomicity
promises the pre-statement state back **exactly**, so the tests compare
fingerprints, not query results — a leaked allocator bump or a stale
index entry must fail the comparison even when no query can see it.
"""

import pytest

from repro.observability import MetricsRegistry
from repro.observability.registry import set_registry


@pytest.fixture
def registry():
    """A fresh metrics registry installed for the duration of one test."""
    reg = MetricsRegistry()
    previous = set_registry(reg)
    yield reg
    set_registry(previous)


def fingerprint_rowstore(rowstore) -> tuple:
    return (
        rowstore._live,
        tuple(
            (
                page.page_id,
                tuple(page.rows),
                tuple(sorted(page.deleted)),
                page.used_bytes,
            )
            for page in rowstore._pages
        ),
    )


def fingerprint_columnstore(cs) -> tuple:
    deltas = tuple(
        (
            delta_id,
            delta.state.value,
            tuple(delta.scan()),
        )
        for delta_id, delta in sorted(cs._delta_stores.items())
    )
    groups = tuple(
        (
            info.group_id,
            info.column,
            info.row_count,
            info.scheme,
            info.encoded_size_bytes,
            info.min_value,
            info.max_value,
            info.archived,
        )
        for info in cs.directory.segment_infos()
    )
    dicts = tuple(
        (col.name, tuple(cs.directory.global_dictionary(col.name)._values))
        for col in cs.schema
    )
    marks = tuple(
        (gid, tuple(cs.delete_bitmap.marks_for(gid)))
        for gid in cs.delete_bitmap.groups_with_deletes()
    )
    return (
        cs._next_row_id,
        cs._next_delta_id,
        cs._open_delta_id,
        cs.directory.next_group_id,
        deltas,
        groups,
        dicts,
        marks,
    )


def fingerprint_table(table) -> tuple:
    parts = [table.name, table.storage_kind.value, table._data_version]
    if table.rowstore is not None:
        parts.append(fingerprint_rowstore(table.rowstore))
        parts.append(
            tuple(
                (name, tuple(index._tree.items()))
                for name, index in sorted(table.indexes.items())
            )
        )
    if table.columnstore is not None:
        parts.append(fingerprint_columnstore(table.columnstore))
    return tuple(parts)


def fingerprint_db(db) -> tuple:
    return (
        db._catalog_epoch,
        tuple(
            fingerprint_table(db.catalog.table(name))
            for name in db.catalog.table_names()
        ),
    )
