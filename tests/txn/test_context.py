"""Unit tests for :class:`repro.txn.TxnContext`."""

import pytest

from repro.errors import TxnError
from repro.txn import AUTO_COMMIT_TXN, TxnContext


class TestTxnContext:
    def test_undo_runs_newest_first(self):
        txn = TxnContext(7)
        order = []
        txn.record("a", lambda: order.append("a"))
        txn.record("b", lambda: order.append("b"))
        txn.record("c", lambda: order.append("c"))
        txn.rollback()
        assert order == ["c", "b", "a"]
        assert txn.rolled_back
        assert len(txn) == 0

    def test_rollback_to_savepoint_keeps_earlier_actions(self):
        txn = TxnContext(1)
        order = []
        txn.record("a", lambda: order.append("a"))
        mark = txn.savepoint()
        txn.record("b", lambda: order.append("b"))
        txn.record("c", lambda: order.append("c"))
        undone = txn.rollback_to(mark)
        assert undone == 2
        assert order == ["c", "b"]
        assert len(txn) == 1
        assert not txn.rolled_back  # the transaction itself is still live
        txn.rollback()
        assert order == ["c", "b", "a"]

    def test_discard_drops_actions_without_running(self):
        txn = TxnContext(AUTO_COMMIT_TXN)
        order = []
        txn.record("a", lambda: order.append("a"))
        txn.discard()
        assert order == []
        assert len(txn) == 0

    def test_explicit_flag(self):
        assert TxnContext(3).explicit
        assert not TxnContext(AUTO_COMMIT_TXN).explicit

    def test_failing_undo_raises_txn_error_naming_action(self):
        txn = TxnContext(1)

        def boom():
            raise RuntimeError("disk on fire")

        txn.record("restore the frobnicator", boom)
        with pytest.raises(TxnError, match="restore the frobnicator"):
            txn.rollback()
