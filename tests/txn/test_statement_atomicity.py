"""Statement-level atomicity under injected faults at every mutation point.

The sweep wraps every low-level storage mutator (heap insert/delete,
index insert/delete, delta-store insert/delete, delete-bitmap mark,
row-group registration) with a counter that raises at call *k*. A clean
run counts the mutation points a statement touches; the sweep then
replays the statement on an identically rebuilt database for every
``k`` in 1..N and asserts the post-failure state fingerprint is
**identical** to the pre-statement fingerprint — allocator counters,
page bytes, dictionary contents and all. Finally the statement is run
clean again to prove rollback + retry converges to the same end state
(the property WAL replay determinism rests on).
"""

import pytest

from repro import Database, StoreConfig
from repro.rowstore.index import RowStoreIndex
from repro.rowstore.table import RowStoreTable
from repro.storage.delete_bitmap import DeleteBitmap
from repro.storage.deltastore import DeltaStore
from repro.storage.directory import SegmentDirectory

from .conftest import fingerprint_db

_CONFIG = StoreConfig(rowgroup_size=16, bulk_load_threshold=8, delta_close_rows=8)


class InjectedTxnFault(Exception):
    """Raised by the wrapped mutators; not a ReproError on purpose —
    atomicity must hold for unexpected exception types too."""


class FaultInjector:
    def __init__(self):
        self.active = False
        self.calls = 0
        self.fail_at = None

    def reset(self, fail_at):
        self.calls = 0
        self.fail_at = fail_at

    def tick(self, point: str) -> None:
        if not self.active:
            return
        self.calls += 1
        if self.fail_at is not None and self.calls == self.fail_at:
            raise InjectedTxnFault(f"injected fault at {point} (call {self.calls})")


MUTATION_POINTS = [
    (RowStoreTable, "insert"),
    (RowStoreTable, "delete"),
    (RowStoreIndex, "insert"),
    (RowStoreIndex, "delete"),
    (DeltaStore, "insert"),
    (DeltaStore, "delete"),
    (DeleteBitmap, "mark"),
    (SegmentDirectory, "add_row_group"),
]


@pytest.fixture
def injector(monkeypatch):
    inj = FaultInjector()
    for cls, name in MUTATION_POINTS:
        original = getattr(cls, name)
        point = f"{cls.__name__}.{name}"

        def wrapped(self, *args, _original=original, _point=point, **kwargs):
            inj.tick(_point)
            return _original(self, *args, **kwargs)

        monkeypatch.setattr(cls, name, wrapped)
    return inj


def seeded_db(storage: str) -> Database:
    db = Database(_CONFIG)
    db.sql(
        f"CREATE TABLE t (id INT NOT NULL, grp VARCHAR, amount FLOAT) "
        f"USING {storage}"
    )
    if storage in ("rowstore", "both"):
        db.create_index("t", "t_grp", ["grp"])
    # Enough rows that a columnstore has a compressed row group (bulk
    # path), a closed delta and an open delta — deletes then touch the
    # bitmap, the closed delta and the open delta in one statement.
    db.bulk_load("t", [(i, "seed", float(i)) for i in range(16)])
    db.insert("t", [(100 + i, "d1", float(i)) for i in range(9)])
    db.insert("t", [(200 + i, "d2", float(i)) for i in range(3)])
    return db


def run_sweep(injector, make_db, statement, min_points: int):
    # Clean run: count the mutation points and capture the end state.
    db = make_db()
    before = fingerprint_db(db)
    injector.reset(fail_at=None)
    injector.active = True
    statement(db)
    injector.active = False
    total = injector.calls
    after_clean = fingerprint_db(db)
    assert total >= min_points, f"expected >= {min_points} mutation points, saw {total}"
    assert after_clean != before, "statement must actually mutate state"

    # Fault sweep: fail at every mutation point in turn.
    for k in range(1, total + 1):
        db = make_db()
        assert fingerprint_db(db) == before, "db rebuild is not deterministic"
        injector.reset(fail_at=k)
        injector.active = True
        with pytest.raises(InjectedTxnFault):
            statement(db)
        injector.active = False
        assert fingerprint_db(db) == before, (
            f"state diverged after fault at mutation point {k}/{total}"
        )
        # The database stays usable: the same statement retried on the
        # rolled-back state converges to the clean end state.
        statement(db)
        assert fingerprint_db(db) == after_clean, (
            f"retry after fault at point {k}/{total} diverged"
        )


class TestInsertAtomicity:
    @pytest.mark.parametrize("storage", ["columnstore", "rowstore", "both"])
    def test_multi_row_insert(self, injector, storage, registry):
        run_sweep(
            injector,
            lambda: seeded_db(storage),
            lambda db: db.insert("t", [(300 + i, "new", float(i)) for i in range(4)]),
            min_points=4,
        )

    def test_insert_tripping_delta_close(self, injector, registry):
        # The seeded open delta (d2) holds 3 rows; 8 closes it. A fault
        # after the close transition must reopen the delta and rewind
        # the row-id allocator.
        run_sweep(
            injector,
            lambda: seeded_db("columnstore"),
            lambda db: db.insert("t", [(300 + i, "new", float(i)) for i in range(7)]),
            min_points=7,
        )


class TestDeleteAtomicity:
    @pytest.mark.parametrize("storage", ["columnstore", "both"])
    def test_delete_across_groups_and_deltas(self, injector, storage, registry):
        # Matches compressed rows (bitmap marks), closed-delta rows and
        # open-delta rows in one statement.
        run_sweep(
            injector,
            lambda: seeded_db(storage),
            lambda db: db.sql("DELETE FROM t WHERE id % 2 = 0"),
            min_points=8,
        )

    def test_delete_rowstore_with_index(self, injector, registry):
        run_sweep(
            injector,
            lambda: seeded_db("rowstore"),
            lambda db: db.sql("DELETE FROM t WHERE grp = 'd1'"),
            min_points=2,
        )


class TestUpdateAtomicity:
    @pytest.mark.parametrize("storage", ["columnstore", "rowstore", "both"])
    def test_update_is_atomic_delete_plus_insert(self, injector, storage, registry):
        run_sweep(
            injector,
            lambda: seeded_db(storage),
            lambda db: db.sql("UPDATE t SET amount = 99.5 WHERE grp = 'd1'"),
            min_points=4,
        )


class TestBulkLoadAtomicity:
    def test_bulk_load_above_threshold(self, injector, registry):
        # The compressed path registers row groups; a fault mid-load
        # must withdraw the partial groups, rewind the group-id
        # allocator and truncate the global dictionaries.
        run_sweep(
            injector,
            lambda: seeded_db("columnstore"),
            lambda db: db.bulk_load(
                "t", [(400 + i, f"g{i % 3}", float(i)) for i in range(20)]
            ),
            min_points=1,
        )

    def test_bulk_load_below_threshold_trickles(self, injector, registry):
        run_sweep(
            injector,
            lambda: seeded_db("columnstore"),
            lambda db: db.bulk_load("t", [(500 + i, "small", 1.0) for i in range(4)]),
            min_points=4,
        )


class TestFailedStatementNeverLogged:
    def test_wal_untouched_by_failed_statement(self, injector, tmp_path, registry):
        db = Database.open(
            str(tmp_path / "d"), durability="per-commit", default_config=_CONFIG
        )
        db.sql("CREATE TABLE t (id INT NOT NULL, grp VARCHAR, amount FLOAT)")
        db.insert("t", [(1, "a", 1.0), (2, "b", 2.0)])
        before = fingerprint_db(db)
        lsn_before = db.wal.last_lsn
        injector.reset(fail_at=2)
        injector.active = True
        with pytest.raises(InjectedTxnFault):
            db.insert("t", [(3, "c", 3.0), (4, "d", 4.0)])
        injector.active = False
        assert fingerprint_db(db) == before
        # Apply-then-log: the failed statement produced no redo record,
        # so a reopen replays to exactly the committed state.
        assert db.wal.last_lsn == lsn_before
        db.close()
        reopened = Database.open(str(tmp_path / "d"), default_config=_CONFIG)
        assert fingerprint_db(reopened) == before

    def test_statement_rollback_metric_counts_faults(self, injector, registry):
        db = seeded_db("columnstore")
        injector.reset(fail_at=2)
        injector.active = True
        with pytest.raises(InjectedTxnFault):
            db.insert("t", [(300, "x", 1.0), (301, "y", 2.0)])
        injector.active = False
        assert registry.counter("txn.statement_rollbacks") == 1
