"""BEGIN / COMMIT / ROLLBACK semantics across the whole stack.

Covers the Python API (begin/commit/rollback + the context manager), the
SQL surface (BEGIN, START TRANSACTION, COMMIT [WORK], ROLLBACK), the
shell prompt, refusal of checkpoints/maintenance inside a transaction,
and exact physical restoration on rollback (fingerprint comparison, not
just query results) for every statement kind and storage kind.
"""

import pytest

from repro import Database, StoreConfig, TxnError, schema, types
from repro.cli import Shell

from .conftest import fingerprint_db

_CONFIG = StoreConfig(rowgroup_size=16, bulk_load_threshold=8, delta_close_rows=8)

_SCHEMA_SQL = "(id INT NOT NULL, grp VARCHAR, amount FLOAT)"


def make_db(storage: str = "columnstore") -> Database:
    db = Database(_CONFIG)
    db.sql(f"CREATE TABLE t {_SCHEMA_SQL} USING {storage}")
    db.sql("INSERT INTO t VALUES (1, 'a', 1.5), (2, 'b', 2.5), (3, 'a', 3.5)")
    return db


def ids(db) -> list:
    return [r[0] for r in db.sql("SELECT id FROM t ORDER BY id").rows]


class TestApiSemantics:
    def test_commit_keeps_work(self, registry):
        db = make_db()
        db.begin()
        assert db.in_transaction
        db.sql("INSERT INTO t VALUES (4, 'c', 4.5)")
        db.sql("DELETE FROM t WHERE id = 1")
        db.commit()
        assert not db.in_transaction
        assert ids(db) == [2, 3, 4]
        assert registry.counter("txn.begins") == 1
        assert registry.counter("txn.commits") == 1
        assert registry.counter("txn.rollbacks") == 0

    @pytest.mark.parametrize("storage", ["columnstore", "rowstore", "both"])
    def test_rollback_restores_exact_state(self, storage, registry):
        db = make_db(storage)
        before = fingerprint_db(db)
        db.begin()
        db.sql("INSERT INTO t VALUES (4, 'c', 4.5), (5, 'c', 5.5)")
        db.sql("UPDATE t SET amount = 99.0 WHERE grp = 'a'")
        db.sql("DELETE FROM t WHERE id = 2")
        assert ids(db) == [1, 3, 4, 5]  # uncommitted work is visible locally
        db.rollback()
        assert not db.in_transaction
        assert fingerprint_db(db) == before
        assert registry.counter("txn.rollbacks") == 1

    def test_rollback_restores_delta_close_transition(self, registry):
        # delta_close_rows=8: the 8th row closes the open delta. Rolling
        # back must reopen it and rewind the row-id allocator so a retry
        # produces a structurally identical index (replay determinism).
        db = make_db()
        before = fingerprint_db(db)
        db.begin()
        db.insert("t", [(10 + i, "z", float(i)) for i in range(12)])
        db.rollback()
        assert fingerprint_db(db) == before
        db.insert("t", [(10 + i, "z", float(i)) for i in range(12)])
        after_retry = fingerprint_db(db)
        shadow = make_db()
        shadow.insert("t", [(10 + i, "z", float(i)) for i in range(12)])
        assert after_retry == fingerprint_db(shadow)

    def test_rollback_restores_bulk_load(self, registry):
        db = make_db()
        before = fingerprint_db(db)
        rows = [(100 + i, "bulk", float(i)) for i in range(20)]
        db.begin()
        db.bulk_load("t", rows)  # above bulk_load_threshold: row groups
        db.rollback()
        assert fingerprint_db(db) == before
        # Retry after rollback assigns the same group ids / dictionary ids.
        db.bulk_load("t", rows)
        shadow = make_db()
        shadow.bulk_load("t", rows)
        assert fingerprint_db(db) == fingerprint_db(shadow)

    def test_rollback_of_ddl(self, registry):
        db = make_db("rowstore")
        before = fingerprint_db(db)
        db.begin()
        db.create_table(
            "u",
            schema(("x", types.INT, False)),
            storage="rowstore",
        )
        db.insert("u", [(1,), (2,)])
        db.create_index("t", "t_grp", ["grp"])
        db.rollback()
        assert fingerprint_db(db) == before
        assert not db.catalog.has_table("u")
        assert "t_grp" not in db.table("t").indexes

    def test_rollback_of_drop_table_restores_data(self, registry):
        db = make_db()
        before = fingerprint_db(db)
        db.begin()
        db.drop_table("t")
        assert not db.catalog.has_table("t")
        db.rollback()
        assert fingerprint_db(db) == before
        assert ids(db) == [1, 2, 3]

    def test_statement_failure_keeps_transaction_usable(self, registry):
        db = make_db()
        db.begin()
        db.sql("INSERT INTO t VALUES (4, 'c', 4.5)")
        with pytest.raises(Exception):
            db.insert("t", [(5, "d", "not-a-float")])
        # The coercion failure happened before any mutation (nothing to
        # roll back); the transaction stays open and usable, and the
        # earlier statement's work is still pending and committable.
        assert db.in_transaction
        db.sql("INSERT INTO t VALUES (6, 'd', 6.5)")
        db.commit()
        assert ids(db) == [1, 2, 3, 4, 6]
        assert registry.counter("txn.statement_rollbacks") == 0

    def test_nested_begin_rejected(self, registry):
        db = make_db()
        db.begin()
        with pytest.raises(TxnError, match="already open"):
            db.begin()
        db.rollback()

    def test_commit_and_rollback_require_begin(self, registry):
        db = make_db()
        with pytest.raises(TxnError, match="COMMIT"):
            db.commit()
        with pytest.raises(TxnError, match="ROLLBACK"):
            db.rollback()

    def test_context_manager_commits(self, registry):
        db = make_db()
        with db.transaction():
            db.sql("INSERT INTO t VALUES (4, 'c', 4.5)")
        assert not db.in_transaction
        assert ids(db) == [1, 2, 3, 4]
        assert registry.counter("txn.commits") == 1

    def test_context_manager_rolls_back_on_error(self, registry):
        db = make_db()
        before = fingerprint_db(db)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.sql("INSERT INTO t VALUES (4, 'c', 4.5)")
                raise RuntimeError("abort")
        assert not db.in_transaction
        assert fingerprint_db(db) == before
        assert registry.counter("txn.rollbacks") == 1

    def test_close_rolls_back_open_transaction(self, registry):
        db = make_db()
        before = fingerprint_db(db)
        db.begin()
        db.sql("INSERT INTO t VALUES (4, 'c', 4.5)")
        db.close()
        assert not db.in_transaction
        assert fingerprint_db(db) == before
        assert registry.counter("txn.rollbacks") == 1


class TestRefusals:
    def test_save_refused_inside_transaction(self, registry, tmp_path):
        db = make_db()
        db.begin()
        with pytest.raises(TxnError, match="checkpoint"):
            db.save(str(tmp_path / "snap"))
        db.rollback()
        db.save(str(tmp_path / "snap"))  # fine after the txn ends

    def test_maintenance_refused_inside_transaction(self, registry):
        db = make_db()
        db.begin()
        with pytest.raises(TxnError):
            db.run_tuple_mover("t")
        with pytest.raises(TxnError):
            db.rebuild("t")
        with pytest.raises(TxnError):
            db.set_archival("t", True)
        db.rollback()


class TestSqlSurface:
    @pytest.mark.parametrize(
        "begin,commit",
        [
            ("BEGIN", "COMMIT"),
            ("BEGIN TRANSACTION", "COMMIT TRANSACTION"),
            ("BEGIN WORK", "COMMIT WORK"),
            ("START TRANSACTION", "COMMIT"),
        ],
    )
    def test_begin_commit_spellings(self, begin, commit, registry):
        db = make_db()
        assert db.sql(begin) is None
        assert db.in_transaction
        db.sql("INSERT INTO t VALUES (4, 'c', 4.5)")
        assert db.sql(commit) is None
        assert ids(db) == [1, 2, 3, 4]

    @pytest.mark.parametrize("rollback", ["ROLLBACK", "ROLLBACK WORK", "ROLLBACK TRANSACTION"])
    def test_rollback_spellings(self, rollback, registry):
        db = make_db()
        before = fingerprint_db(db)
        db.sql("BEGIN")
        db.sql("INSERT INTO t VALUES (4, 'c', 4.5)")
        db.sql(rollback)
        assert fingerprint_db(db) == before

    def test_commit_without_begin_is_sql_error(self, registry):
        db = make_db()
        with pytest.raises(TxnError):
            db.sql("COMMIT")


class TestShellFlow:
    def test_prompt_marks_open_transaction(self, registry):
        shell = Shell(make_db())
        assert shell.prompt == "repro=> "
        assert shell.feed_line("BEGIN;") == ["ok"]
        assert shell.prompt == "repro*=> "
        shell.feed_line("INSERT INTO t VALUES (4, 'c', 4.5);")
        assert shell.feed_line("COMMIT;") == ["ok"]
        assert shell.prompt == "repro=> "

    def test_txn_errors_surface_as_shell_errors(self, registry):
        shell = Shell(make_db())
        out = shell.feed_line("COMMIT;")
        assert out and out[0].startswith("error:")

    def test_stats_reports_open_transaction(self, registry):
        shell = Shell(make_db())
        shell.feed_line("BEGIN;")
        out = shell.run_meta("\\stats")
        assert any("transaction is open" in line for line in out)
        assert any("1 begun" in line for line in out)
