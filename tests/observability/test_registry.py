"""MetricsRegistry semantics: counters, gauges, timers, snapshots."""

from __future__ import annotations

import pytest

from repro.observability import (
    STABLE_COUNTERS,
    MetricsRegistry,
    get_registry,
    increment,
    set_registry,
    snapshot_delta,
)


class TestCounters:
    def test_counter_starts_at_zero(self):
        assert MetricsRegistry().counter("anything") == 0

    def test_increment_accumulates(self):
        registry = MetricsRegistry()
        registry.increment("scan.rows")
        registry.increment("scan.rows", 41)
        assert registry.counter("scan.rows") == 42

    def test_counters_are_isolated_between_instances(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.increment("shared.name", 5)
        assert a.counter("shared.name") == 5
        assert b.counter("shared.name") == 0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.increment("c", 3)
        registry.set_gauge("g", 7)
        registry.record_time("t", 0.5)
        registry.reset()
        assert registry.counter("c") == 0
        assert registry.gauge("g") is None
        assert registry.snapshot() == {}


class TestGauges:
    def test_set_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("cache.bytes", 100)
        registry.set_gauge("cache.bytes", 50)
        assert registry.gauge("cache.bytes") == 50

    def test_max_gauge_keeps_high_water_mark(self):
        registry = MetricsRegistry()
        registry.max_gauge("peak", 10)
        registry.max_gauge("peak", 30)
        registry.max_gauge("peak", 20)
        assert registry.gauge("peak") == 30


class TestTimers:
    def test_record_time_accumulates_count_and_seconds(self):
        registry = MetricsRegistry()
        registry.record_time("phase", 0.25)
        registry.record_time("phase", 0.50)
        snapshot = registry.snapshot()
        assert snapshot["phase.count"] == 2
        assert snapshot["phase.seconds"] == pytest.approx(0.75)

    def test_timer_context_manager_records_once(self):
        registry = MetricsRegistry()
        with registry.timer("step"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["step.count"] == 1
        assert snapshot["step.seconds"] >= 0


class TestSnapshots:
    def test_snapshot_is_a_point_in_time_copy(self):
        registry = MetricsRegistry()
        registry.increment("c", 1)
        before = registry.snapshot()
        registry.increment("c", 1)
        assert before["c"] == 1
        assert registry.snapshot()["c"] == 2

    def test_snapshot_delta_reports_only_growth(self):
        registry = MetricsRegistry()
        registry.increment("stale", 5)
        registry.increment("hot", 1)
        before = registry.snapshot()
        registry.increment("hot", 3)
        registry.increment("fresh", 2)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta == {"hot": 3, "fresh": 2}

    def test_snapshot_delta_empty_when_nothing_moved(self):
        registry = MetricsRegistry()
        registry.increment("c", 9)
        snap = registry.snapshot()
        assert snapshot_delta(snap, registry.snapshot()) == {}


class TestGlobalRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
            increment("swapped.counter", 2)
            assert mine.counter("swapped.counter") == 2
            assert previous.counter("swapped.counter") == 0
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestStableCounterNames:
    def test_names_are_unique_dotted_paths(self):
        assert len(set(STABLE_COUNTERS)) == len(STABLE_COUNTERS)
        for name in STABLE_COUNTERS:
            assert "." in name
            assert name == name.lower()
            assert " " not in name
