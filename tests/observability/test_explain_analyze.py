"""EXPLAIN ANALYZE end to end: SQL, Result.stats, CLI, engine counters."""

from __future__ import annotations

import pytest

from repro import Database, StoreConfig, schema, types
from repro.cli import Shell


@pytest.fixture()
def db():
    """128 rows of ascending ``a`` in 16-row groups: 8 row groups whose
    segment [min, max] ranges tile [0, 128) — elimination is predictable."""
    db = Database(StoreConfig(rowgroup_size=16, bulk_load_threshold=8))
    db.create_table(
        "t",
        schema(("a", types.INT, False), ("g", types.INT), ("s", types.VARCHAR)),
    )
    db.bulk_load(
        "t",
        [(i, i % 3, ["red", "green", "blue"][i % 3]) for i in range(128)],
    )
    return db


class TestSegmentElimination:
    def test_eliminated_segment_count_matches_hand_built_layout(self, db):
        # a >= 112 qualifies only the last of the 8 groups: 7 eliminated.
        result = db.sql(
            "SELECT COUNT(*) AS n FROM t WHERE a >= 112", mode="batch", stats=True
        )
        assert result.rows == [(16,)]
        assert result.stats.counter("storage.scan.units_seen") == 8
        assert result.stats.counter("storage.scan.units_eliminated") == 7

    def test_full_range_predicate_eliminates_nothing(self, db):
        result = db.sql(
            "SELECT COUNT(*) AS n FROM t WHERE a >= 0", mode="batch", stats=True
        )
        assert result.stats.counter("storage.scan.units_eliminated") == 0

    def test_elimination_shows_in_rendered_plan(self, db):
        text = db.explain_analyze(
            "SELECT COUNT(*) AS n FROM t WHERE a >= 112", mode="batch"
        )
        assert "units_eliminated=7" in text
        assert "units_seen=8" in text


class TestSpillReporting:
    SQL = "SELECT a, s, COUNT(*) AS n FROM t GROUP BY a, s"

    def test_tiny_grant_reports_nonzero_spill_bytes(self, db):
        result = db.sql(self.SQL, mode="batch", stats=True, grant_bytes=2048)
        assert result.stats.counter("exec.spill.bytes_written") > 0
        assert result.stats.counter("exec.spill.files") > 0
        # The spilling operator's own actuals carry the bytes too.
        assert any(o.runtime.spill_bytes > 0 for o in result.stats.operators)

    def test_ample_grant_spills_nothing(self, db):
        result = db.sql(self.SQL, mode="batch", stats=True)
        assert result.stats.counter("exec.spill.bytes_written") == 0

    def test_results_identical_with_and_without_spilling(self, db):
        ample = db.sql(self.SQL, mode="batch")
        starved = db.sql(self.SQL, mode="batch", stats=True, grant_bytes=2048)
        assert sorted(ample.rows) == sorted(starved.rows)


class TestResultStatsHandle:
    def test_stats_off_by_default(self, db):
        assert db.sql("SELECT COUNT(*) AS n FROM t").stats is None

    def test_per_operator_actuals(self, db):
        result = db.sql(
            "SELECT g, COUNT(*) AS n FROM t WHERE a >= 64 GROUP BY g",
            mode="batch",
            stats=True,
        )
        scans = result.stats.find("Scan")
        assert scans and scans[0].runtime.rows == 64
        root = result.stats.operators[0]
        assert root.runtime.rows == len(result.rows)
        assert result.stats.elapsed_seconds > 0
        assert result.stats.row_count == len(result.rows)

    def test_row_mode_collects_too(self, db):
        result = db.sql(
            "SELECT COUNT(*) AS n FROM t WHERE a >= 112", mode="row", stats=True
        )
        assert result.rows == [(16,)]
        assert any(o.runtime.touched for o in result.stats.operators)

    def test_to_dict_round_trips_counters(self, db):
        result = db.sql("SELECT COUNT(*) AS n FROM t WHERE a >= 112",
                        mode="batch", stats=True)
        data = result.stats.to_dict()
        assert data["rows"] == 1
        assert data["counters"]["storage.scan.units_eliminated"] == 7
        assert data["operators"][0]["label"]


class TestExplainAnalyzeSql:
    def test_explain_analyze_statement_returns_plan_rows(self, db):
        result = db.sql("EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM t WHERE a >= 112")
        assert result.columns == ["plan"]
        text = "\n".join(line for (line,) in result.rows)
        assert "executed in" in text
        assert "* actual:" in text
        assert "units_eliminated=7" in text
        assert "storage counters" in text

    def test_plain_explain_does_not_execute(self, db):
        result = db.sql("EXPLAIN SELECT COUNT(*) AS n FROM t")
        text = "\n".join(line for (line,) in result.rows)
        assert "Scan" in text
        assert "* actual:" not in text

    def test_explain_requires_select(self, db):
        from repro.errors import SqlSyntaxError

        with pytest.raises(SqlSyntaxError):
            db.sql("EXPLAIN ANALYZE DELETE FROM t")


class TestCliStats:
    def test_stats_meta_command_toggles(self, db):
        shell = Shell(db)
        out = shell.run_meta("\\stats")
        assert out[0] == "stats is off"
        assert any("transactions:" in line for line in out)
        assert shell.run_meta("\\stats on") == ["stats on"]
        out = shell.run_sql("SELECT COUNT(*) AS n FROM t WHERE a >= 112;")
        assert any("* actual:" in line for line in out)
        assert any("units_eliminated=7" in line for line in out)
        assert shell.run_meta("\\stats off") == ["stats off"]
        out = shell.run_sql("SELECT COUNT(*) AS n FROM t;")
        assert not any("* actual:" in line for line in out)

    def test_shell_stats_flag(self, db):
        shell = Shell(db, stats=True)
        out = shell.run_sql("SELECT COUNT(*) AS n FROM t;")
        assert any("executed in" in line for line in out)

    def test_non_query_statements_unaffected(self, db):
        shell = Shell(db, stats=True)
        out = shell.run_sql("DELETE FROM t WHERE a < 0;")
        assert out[0].startswith("rows_affected")
