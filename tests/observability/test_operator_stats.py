"""The instrumented-iterator wrapper: correct counts, off by default."""

from __future__ import annotations

from repro.exec.batch import Batch
from repro.exec.operators.base import BatchOperator
from repro.exec.row_engine import RowOperator
from repro.observability import collect, collecting, opstats


class EmitBatches(BatchOperator):
    """Emits hand-built batches so expected counts are known exactly."""

    def __init__(self, sizes: list[int]) -> None:
        self.sizes = sizes

    @property
    def output_names(self) -> list[str]:
        return ["v"]

    def batches(self):
        for size in self.sizes:
            yield Batch.from_pydict({"v": list(range(size))})


class ConsumeBatches(BatchOperator):
    """A pass-through parent, to check inclusive stats nest correctly."""

    def __init__(self, child: BatchOperator) -> None:
        self.child = child

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names

    def child_operators(self):
        return [self.child]

    def batches(self):
        yield from self.child.batches()


class EmitRows(RowOperator):
    def __init__(self, count: int) -> None:
        self.count = count

    @property
    def output_names(self) -> list[str]:
        return ["v"]

    def rows(self):
        for i in range(self.count):
            yield {"v": i}


class TestCollectionFlag:
    def test_off_by_default(self):
        assert not collecting()

    def test_collect_restores_previous_state(self):
        assert not collecting()
        with collect():
            assert collecting()
            with collect():
                assert collecting()
            assert collecting()
        assert not collecting()

    def test_no_stats_recorded_when_off(self):
        op = EmitBatches([4, 4])
        assert sum(b.active_count for b in op.batches()) == 8
        assert not op.op_stats.touched

    def test_enable_disable(self):
        opstats.enable()
        try:
            assert collecting()
        finally:
            opstats.disable()
        assert not collecting()


class TestBatchCounts:
    def test_counts_match_known_input(self):
        op = EmitBatches([10, 20, 5])
        with collect():
            consumed = list(op.batches())
        assert len(consumed) == 3
        assert op.op_stats.batches == 3
        assert op.op_stats.rows == 35
        assert op.op_stats.wall_seconds > 0

    def test_rows_counted_by_selection_not_physical_length(self):
        import numpy as np

        batch = Batch.from_pydict({"v": list(range(10))})
        batch.selection = np.array([1, 3, 5], dtype=np.int64)

        class EmitOne(BatchOperator):
            @property
            def output_names(self):
                return ["v"]

            def batches(self):
                yield batch

        op = EmitOne()
        with collect():
            list(op.batches())
        assert op.op_stats.rows == 3

    def test_parent_and_child_both_counted(self):
        child = EmitBatches([8, 8])
        parent = ConsumeBatches(child)
        with collect():
            list(parent.batches())
        assert parent.op_stats.rows == 16
        assert child.op_stats.rows == 16
        # Inclusive timing: the parent's wall time covers its child's.
        assert parent.op_stats.wall_seconds >= child.op_stats.wall_seconds * 0.5

    def test_partial_consumption_counts_only_what_was_pulled(self):
        op = EmitBatches([4, 4, 4])
        with collect():
            stream = op.batches()
            next(stream)
            stream.close()
        assert op.op_stats.batches == 1
        assert op.op_stats.rows == 4


class TestRowCounts:
    def test_row_operator_counts_rows(self):
        op = EmitRows(17)
        with collect():
            assert len(list(op.rows())) == 17
        assert op.op_stats.rows == 17
        assert op.op_stats.batches == 0

    def test_row_operator_silent_when_off(self):
        op = EmitRows(5)
        assert len(list(op.rows())) == 5
        assert not op.op_stats.touched


class TestWrapping:
    def test_generators_are_wrapped_exactly_once(self):
        assert getattr(EmitBatches.batches, "_instrumented", False)
        assert getattr(EmitRows.rows, "_instrumented", False)

    def test_subclass_inheriting_batches_is_not_rewrapped(self):
        class Inherits(EmitBatches):
            pass

        assert Inherits.batches is EmitBatches.batches

    def test_stats_accumulate_across_executions(self):
        op = EmitBatches([4])
        with collect():
            list(op.batches())
            list(op.batches())
        assert op.op_stats.rows == 8
        assert op.op_stats.batches == 2
