"""Tests for the B+tree, including a model-based hypothesis suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.btree import BPlusTree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get(1) is None
        assert tree.min_key() is None
        assert list(tree.items()) == []

    def test_insert_get(self):
        tree = BPlusTree()
        tree.insert(5, "five")
        tree.insert(1, "one")
        assert tree.get(5) == "five"
        assert tree.get(1) == "one"
        assert tree.get(3, "default") == "default"

    def test_insert_replaces(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert len(tree) == 1
        assert tree.get(1) == "b"

    def test_contains(self):
        tree = BPlusTree()
        tree.insert(1, None)  # None value must still count as present
        assert 1 in tree
        assert 2 not in tree

    def test_order_too_small(self):
        with pytest.raises(StorageError):
            BPlusTree(order=2)

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        for key in [9, 2, 7, 1, 8, 3]:
            tree.insert(key, key * 10)
        assert [k for k, _ in tree.items()] == [1, 2, 3, 7, 8, 9]

    def test_splits_create_depth(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key)
        assert tree.depth() > 1
        assert [k for k, _ in tree.items()] == list(range(100))
        tree.check_invariants()


class TestDelete:
    def test_delete_missing(self):
        tree = BPlusTree()
        assert tree.delete(42) is False

    def test_delete_present(self):
        tree = BPlusTree()
        tree.insert(1, "x")
        assert tree.delete(1) is True
        assert len(tree) == 0
        assert 1 not in tree

    def test_delete_all_descending(self):
        tree = BPlusTree(order=4)
        for key in range(200):
            tree.insert(key, key)
        for key in reversed(range(200)):
            assert tree.delete(key)
            tree.check_invariants()
        assert len(tree) == 0

    def test_delete_all_ascending(self):
        tree = BPlusTree(order=4)
        for key in range(200):
            tree.insert(key, key)
        for key in range(200):
            assert tree.delete(key)
        assert list(tree.items()) == []

    def test_interleaved(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 2):
            tree.insert(key, key)
        for key in range(0, 100, 4):
            assert tree.delete(key)
        tree.check_invariants()
        remaining = [k for k, _ in tree.items()]
        assert remaining == [k for k in range(0, 100, 2) if k % 4 != 0]


class TestRange:
    @pytest.fixture
    def tree(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 10):
            tree.insert(key, f"v{key}")
        return tree

    def test_full_range(self, tree):
        assert len(list(tree.range())) == 10

    def test_bounded(self, tree):
        keys = [k for k, _ in tree.range(20, 50)]
        assert keys == [20, 30, 40, 50]

    def test_exclusive_bounds(self, tree):
        keys = [k for k, _ in tree.range(20, 50, low_inclusive=False, high_inclusive=False)]
        assert keys == [30, 40]

    def test_bounds_between_keys(self, tree):
        keys = [k for k, _ in tree.range(15, 45)]
        assert keys == [20, 30, 40]

    def test_empty_range(self, tree):
        assert list(tree.range(41, 49)) == []

    def test_open_low(self, tree):
        keys = [k for k, _ in tree.range(None, 25)]
        assert keys == [0, 10, 20]

    def test_tuple_keys(self):
        tree = BPlusTree(order=4)
        tree.insert(("a", 1), "a1")
        tree.insert(("a", 2), "a2")
        tree.insert(("b", 1), "b1")
        keys = [k for k, _ in tree.range(("a", 0), ("a", 99))]
        assert keys == [("a", 1), ("a", 2)]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=300,
    ),
    st.sampled_from([4, 5, 8, 16]),
)
def test_model_based_property(operations, order):
    """The tree must behave exactly like a dict, for any operation sequence."""
    tree = BPlusTree(order=order)
    model: dict[int, int] = {}
    for op, key in operations:
        if op == "insert":
            tree.insert(key, key * 2)
            model[key] = key * 2
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    assert len(tree) == len(model)
    assert dict(tree.items()) == model
    assert [k for k, _ in tree.items()] == sorted(model)
    tree.check_invariants()


@settings(max_examples=30, deadline=None)
@given(
    st.sets(st.integers(min_value=0, max_value=1000), max_size=200),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
)
def test_range_matches_model(keys, a, b):
    low, high = min(a, b), max(a, b)
    tree = BPlusTree(order=8)
    for key in keys:
        tree.insert(key, None)
    got = [k for k, _ in tree.range(low, high)]
    assert got == sorted(k for k in keys if low <= k <= high)
