"""Segment-blob fuzzing: round-trip every encoding scheme, then truncate
at each byte offset and flip bytes, asserting only structured errors
(never ``IndexError``/``struct.error``/``KeyError``) escape
``deserialize_segment``. Seeded by ``REPRO_FAULT_SEED`` (CI matrix)."""

import os
import random

import numpy as np
import pytest

from repro import types
from repro.errors import EncodingError
from repro.storage.blob import deserialize_segment, serialize_segment
from repro.storage.encodings import Scheme
from repro.storage.segment import encode_segment

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def _build_segments():
    rng = np.random.default_rng(7)
    segments = {
        "int_bitpack": encode_segment(types.INT, np.arange(200, dtype=np.int32)),
        "int_rle": encode_segment(
            types.INT, np.repeat(np.arange(5), 40).astype(np.int32)
        ),
        "string_dict": encode_segment(
            types.VARCHAR, np.array(["aa", "bb", "cc"] * 40, dtype=object)
        ),
        "float_raw": encode_segment(types.FLOAT, rng.standard_normal(64)),
        "decimal_value_enc": encode_segment(
            types.decimal(2), (np.arange(100) * 1000 - 50_000).astype(np.int64)
        ),
        "bool_rle": encode_segment(types.BOOL, np.array([True, False] * 30)),
        "nullable_int": encode_segment(
            types.INT,
            np.arange(50, dtype=np.int32),
            np.arange(50) % 7 == 0,
        ),
        "archived_string": encode_segment(
            types.VARCHAR, np.array(["alpha", "beta"] * 100, dtype=object)
        ).to_archived(),
    }
    return segments


SEGMENTS = _build_segments()


def test_every_scheme_covered():
    schemes = {segment.scheme for segment in SEGMENTS.values()}
    assert schemes == set(Scheme)


@pytest.mark.parametrize("name", sorted(SEGMENTS))
def test_roundtrip(name):
    segment = SEGMENTS[name]
    restored = deserialize_segment(serialize_segment(segment))
    values, nulls = restored.decode()
    original_values, original_nulls = segment.decode()
    assert values.tolist() == original_values.tolist()
    if original_nulls is None:
        assert nulls is None
    else:
        assert nulls.tolist() == original_nulls.tolist()


@pytest.mark.parametrize("name", sorted(SEGMENTS))
def test_truncation_at_every_byte_offset(name):
    """Every proper prefix of a segment blob must raise a structured
    error — a truncated blob can never silently half-parse."""
    blob = serialize_segment(SEGMENTS[name])
    for cut in range(len(blob)):
        with pytest.raises(EncodingError):
            deserialize_segment(blob[:cut])


@pytest.mark.parametrize("name", sorted(SEGMENTS))
def test_single_byte_flips_raise_only_structured_errors(name):
    """Flip every byte (with a seeded mask): decode either succeeds or
    raises EncodingError — raw IndexError/struct.error/KeyError never
    escape. (Semantic detection of arbitrary flips is the manifest
    checksum's job, one layer up.)"""
    rng = random.Random(SEED)
    blob = bytearray(serialize_segment(SEGMENTS[name]))
    for index in range(len(blob)):
        mask = rng.randrange(1, 256)
        blob[index] ^= mask
        try:
            deserialize_segment(bytes(blob))
        except EncodingError:
            pass
        finally:
            blob[index] ^= mask


@pytest.mark.parametrize("name", sorted(SEGMENTS))
def test_random_multi_byte_corruption(name):
    rng = random.Random(SEED + 1)
    pristine = serialize_segment(SEGMENTS[name])
    for _ in range(150):
        blob = bytearray(pristine)
        for _ in range(rng.randrange(1, 4)):
            blob[rng.randrange(len(blob))] ^= rng.randrange(1, 256)
        try:
            deserialize_segment(bytes(blob))
        except EncodingError:
            pass


def test_garbage_blobs():
    rng = random.Random(SEED + 2)
    with pytest.raises(EncodingError):
        deserialize_segment(b"")
    with pytest.raises(EncodingError):
        deserialize_segment(b"CSEG")
    for _ in range(100):
        noise = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 200)))
        try:
            deserialize_segment(b"CSEG\x01" + noise)
        except EncodingError:
            pass
