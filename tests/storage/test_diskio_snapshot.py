"""Unit tests for the disk I/O abstraction and the snapshot protocol:
CRC-32C vectors, atomic file replacement, fault injection semantics,
manifest round-trips, verification, and garbage collection."""

import json

import pytest

from repro.errors import CorruptBlobError, RecoveryError
from repro.storage.diskio import DiskIO, FaultyDisk, InjectedFault, crc32c
from repro.storage.snapshot import (
    MANIFEST_NAME,
    Manifest,
    SnapshotWriter,
    check_database,
    collect_garbage,
    load_manifest,
    open_snapshot,
)


class TestCrc32c:
    def test_known_vectors(self):
        # RFC 3720 appendix B test vector for CRC-32C.
        assert crc32c(b"123456789") == 0xE3069283
        assert crc32c(b"") == 0
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    def test_chaining(self):
        whole = crc32c(b"hello world")
        chained = crc32c(b" world", crc32c(b"hello"))
        assert whole == chained

    def test_single_bit_flip_always_detected(self):
        data = bytes(range(256))
        reference = crc32c(data)
        for byte_index in range(len(data)):
            for bit in range(8):
                flipped = bytearray(data)
                flipped[byte_index] ^= 1 << bit
                assert crc32c(bytes(flipped)) != reference


class TestDiskIO:
    def test_write_file_is_atomic_and_clean(self, tmp_path):
        disk = DiskIO()
        target = tmp_path / "a" / "b.bin"
        disk.write_file(target, b"payload")
        assert target.read_bytes() == b"payload"
        # No temp residue after a successful write.
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_overwrite_replaces(self, tmp_path):
        disk = DiskIO()
        target = tmp_path / "f"
        disk.write_file(target, b"old")
        disk.write_file(target, b"new")
        assert target.read_bytes() == b"new"

    def test_remove_tree(self, tmp_path):
        disk = DiskIO()
        disk.write_file(tmp_path / "d" / "x", b"1")
        disk.write_file(tmp_path / "d" / "sub" / "y", b"2")
        disk.remove_tree(tmp_path / "d")
        assert not (tmp_path / "d").exists()
        disk.remove_tree(tmp_path / "d")  # missing is fine


class TestFaultyDisk:
    def test_crash_counts_write_points(self, tmp_path):
        disk = FaultyDisk(crash_after_ops=2)
        disk.write_file(tmp_path / "a", b"1")  # ops 0 (write) + 1 (rename)
        with pytest.raises(InjectedFault):
            disk.write_file(tmp_path / "b", b"2")
        assert (tmp_path / "a").read_bytes() == b"1"
        assert not (tmp_path / "b").exists()

    def test_crash_on_first_op(self, tmp_path):
        disk = FaultyDisk(crash_after_ops=0)
        with pytest.raises(InjectedFault):
            disk.write_file(tmp_path / "a", b"1")
        assert list(tmp_path.iterdir()) == []

    def test_torn_write_leaves_prefix_in_temp(self, tmp_path):
        disk = FaultyDisk(crash_after_ops=0, torn_write_bytes=3)
        with pytest.raises(InjectedFault):
            disk.write_file(tmp_path / "a", b"abcdef")
        assert not (tmp_path / "a").exists()
        assert (tmp_path / "a.tmp").read_bytes() == b"abc"

    def test_dropped_rename_reports_success(self, tmp_path):
        disk = FaultyDisk(drop_rename_of="victim")
        disk.write_file(tmp_path / "victim.bin", b"gone")
        assert not (tmp_path / "victim.bin").exists()
        assert disk.dropped_renames == [str(tmp_path / "victim.bin")]
        disk.write_file(tmp_path / "other.bin", b"kept")
        assert (tmp_path / "other.bin").read_bytes() == b"kept"

    def test_bit_flip_on_read(self, tmp_path):
        (tmp_path / "seg").write_bytes(b"\x00\x00")
        disk = FaultyDisk(flip_bit_on_read=("seg", 1, 0))
        assert disk.read_file(tmp_path / "seg") == b"\x00\x01"
        # Non-matching paths read clean.
        (tmp_path / "other").write_bytes(b"\x00")
        assert disk.read_file(tmp_path / "other") == b"\x00"

    def test_injected_fault_not_catchable_as_exception(self):
        assert not issubclass(InjectedFault, Exception)


class TestManifest:
    def test_roundtrip(self):
        from repro.storage.snapshot import ManifestEntry

        manifest = Manifest(snapshot_id=7)
        manifest.files.append(ManifestEntry(path="t/a.seg", size=12, crc32c=0xDEAD))
        restored = Manifest.from_json(manifest.to_json(), "m")
        assert restored.snapshot_id == 7
        assert restored.directory == "snap_000007"
        assert restored.files == manifest.files

    def test_self_checksum_detects_tamper(self):
        manifest = Manifest(snapshot_id=1)
        payload = bytearray(manifest.to_json())
        index = payload.index(b'"snapshot_id": 1') + len(b'"snapshot_id": ')
        payload[index : index + 1] = b"2"
        with pytest.raises(CorruptBlobError):
            Manifest.from_json(bytes(payload), "m")

    def test_garbage_is_recovery_error(self):
        with pytest.raises(RecoveryError):
            Manifest.from_json(b"not json at all", "m")
        with pytest.raises(RecoveryError):
            Manifest.from_json(b'{"format_version": 99}', "m")


class TestSnapshotWriterReader:
    def test_write_commit_open(self, tmp_path):
        disk = DiskIO()
        writer = SnapshotWriter(disk, tmp_path)
        writer.write("t/one.bin", b"alpha")
        writer.write("two.json", b"{}")
        manifest = writer.commit()
        assert manifest.snapshot_id == 1
        reader = open_snapshot(disk, tmp_path)
        assert reader.read("t/one.bin") == b"alpha"
        assert reader.exists("two.json") and not reader.exists("absent")
        with pytest.raises(RecoveryError):
            reader.read("absent")

    def test_ids_increase_and_old_snapshots_collected(self, tmp_path):
        disk = DiskIO()
        for n in range(3):
            writer = SnapshotWriter(disk, tmp_path)
            writer.write("f", f"v{n}".encode())
            writer.commit()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [MANIFEST_NAME, "snap_000003"]
        assert open_snapshot(disk, tmp_path).read("f") == b"v2"

    def test_interrupted_save_ignored_then_rolled_back(self, tmp_path):
        disk = DiskIO()
        writer = SnapshotWriter(disk, tmp_path)
        writer.write("f", b"committed")
        writer.commit()
        # An interrupted save: files written, manifest never committed.
        orphan = SnapshotWriter(disk, tmp_path)
        assert orphan.snapshot_id == 2
        orphan.write("f", b"uncommitted")
        reader = open_snapshot(disk, tmp_path)
        assert reader.read("f") == b"committed"
        # open_snapshot garbage-collected the interrupted directory.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            MANIFEST_NAME,
            "snap_000001",
        ]

    def test_next_id_skips_orphan_directories(self, tmp_path):
        disk = DiskIO()
        (tmp_path / "snap_000009").mkdir(parents=True)
        writer = SnapshotWriter(disk, tmp_path)
        assert writer.snapshot_id == 10

    def test_missing_file_detected_by_name(self, tmp_path):
        disk = DiskIO()
        writer = SnapshotWriter(disk, tmp_path)
        writer.write("t/keep.bin", b"x")
        writer.write("t/lost.bin", b"y")
        writer.commit()
        (tmp_path / "snap_000001" / "t" / "lost.bin").unlink()
        with pytest.raises(CorruptBlobError, match="lost.bin"):
            open_snapshot(disk, tmp_path)

    def test_size_mismatch_detected(self, tmp_path):
        disk = DiskIO()
        writer = SnapshotWriter(disk, tmp_path)
        writer.write("f", b"12345")
        writer.commit()
        (tmp_path / "snap_000001" / "f").write_bytes(b"123")
        with pytest.raises(CorruptBlobError, match="size mismatch"):
            open_snapshot(disk, tmp_path)

    def test_all_corrupt_files_named_at_once(self, tmp_path):
        disk = DiskIO()
        writer = SnapshotWriter(disk, tmp_path)
        writer.write("a.bin", b"aaaa")
        writer.write("b.bin", b"bbbb")
        writer.commit()
        for name in ("a.bin", "b.bin"):
            path = tmp_path / "snap_000001" / name
            data = bytearray(path.read_bytes())
            data[0] ^= 0xFF
            path.write_bytes(bytes(data))
        with pytest.raises(CorruptBlobError) as excinfo:
            open_snapshot(disk, tmp_path)
        assert "a.bin" in str(excinfo.value) and "b.bin" in str(excinfo.value)

    def test_collect_garbage_removes_tmp_files(self, tmp_path):
        disk = DiskIO()
        (tmp_path / "MANIFEST.json.tmp").write_bytes(b"torn")
        (tmp_path / "snap_000002").mkdir()
        removed = collect_garbage(disk, tmp_path, keep_id=1)
        assert removed == 1
        assert list(tmp_path.iterdir()) == []


class TestCheckDatabase:
    def test_empty_dir(self, tmp_path):
        report = check_database(DiskIO(), tmp_path)
        assert report.manifest_status == "missing"
        assert not report.ok

    def test_legacy_layout(self, tmp_path):
        (tmp_path / "catalog.json").write_text("[]")
        report = check_database(DiskIO(), tmp_path)
        assert report.manifest_status == "legacy"
        assert not report.ok

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{broken")
        report = check_database(DiskIO(), tmp_path)
        assert report.manifest_status == "corrupt"
        assert not report.ok

    def test_ok_and_render(self, tmp_path):
        disk = DiskIO()
        writer = SnapshotWriter(disk, tmp_path)
        writer.write("data.bin", b"fine")
        writer.commit()
        report = check_database(disk, tmp_path)
        assert report.ok and report.snapshot_id == 1
        text = "\n".join(report.render())
        assert "data.bin: ok" in text and "result: ok" in text

    def test_load_manifest_none_when_absent(self, tmp_path):
        assert load_manifest(DiskIO(), tmp_path) is None

    def test_undecodable_segment_reported(self, tmp_path):
        import numpy as np

        from repro import types
        from repro.storage.blob import serialize_segment
        from repro.storage.segment import encode_segment

        blob = serialize_segment(
            encode_segment(types.INT, np.arange(10, dtype=np.int32))
        )
        disk = DiskIO()
        writer = SnapshotWriter(disk, tmp_path)
        writer.write("t/rowgroups/g0.a.seg", blob[: len(blob) // 2])
        writer.commit()
        report = check_database(disk, tmp_path)
        # Checksum matches what was written, but the blob is truncated:
        # the structural decode pass must flag it.
        assert [v.status for v in report.verdicts] == ["undecodable"]
        json.loads((tmp_path / MANIFEST_NAME).read_text())  # still valid JSON
