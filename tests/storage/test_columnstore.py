"""Tests for the updatable columnstore index: delta stores, delete bitmap,
tuple mover, bulk load, rebuild and archival."""

import numpy as np
import pytest

from repro import types
from repro.errors import StorageError
from repro.schema import schema
from repro.storage.columnstore import DELTA, GROUP, ColumnStoreIndex, RowLocator
from repro.storage.config import StoreConfig
from repro.storage.tuple_mover import TupleMover


@pytest.fixture
def sch():
    return schema(("id", types.INT, False), ("name", types.VARCHAR), ("v", types.FLOAT))


@pytest.fixture
def small_config():
    return StoreConfig(rowgroup_size=50, bulk_load_threshold=40, delta_close_rows=20)


@pytest.fixture
def index(sch, small_config):
    return ColumnStoreIndex(sch, small_config)


def make_rows(sch, n, start=0):
    return [sch.coerce_row((start + i, f"n{(start + i) % 5}", float(i))) for i in range(n)]


class TestTrickleInsert:
    def test_insert_goes_to_delta(self, index, sch):
        locator = index.insert(sch.coerce_row((1, "a", 1.0)))
        assert locator.kind == DELTA
        assert index.delta_rows == 1
        assert index.compressed_rows == 0

    def test_delta_closes_at_threshold(self, index, sch):
        index.insert_many(make_rows(sch, 20))
        deltas = index.delta_stores()
        assert len(deltas) == 1
        assert not deltas[0].is_open

    def test_new_delta_opens_after_close(self, index, sch):
        index.insert_many(make_rows(sch, 25))
        deltas = index.delta_stores()
        assert len(deltas) == 2
        assert not deltas[0].is_open
        assert deltas[1].is_open
        assert index.delta_rows == 25

    def test_get_row(self, index, sch):
        locator = index.insert(sch.coerce_row((7, "x", 2.5)))
        assert index.get_row(locator) == (7, "x", 2.5)


class TestBulkLoad:
    def test_large_load_compresses_directly(self, index, sch):
        index.bulk_load(make_rows(sch, 120))
        assert index.compressed_rows == 120
        assert index.delta_rows == 0
        assert len(index.directory) == 3  # 120 rows / 50-row groups

    def test_small_load_goes_to_delta(self, index, sch):
        index.bulk_load(make_rows(sch, 10))
        assert index.compressed_rows == 0
        assert index.delta_rows == 10

    def test_columnar_load(self, index):
        columns = {
            "id": np.arange(60, dtype=np.int32),
            "name": np.array(["a"] * 60, dtype=object),
            "v": np.ones(60),
        }
        index.bulk_load_columns(columns)
        assert index.compressed_rows == 60


class TestDelete:
    def test_delete_compressed_row_marks_bitmap(self, index, sch):
        index.bulk_load(make_rows(sch, 50))
        group = next(index.directory.row_groups())
        assert index.delete(RowLocator(GROUP, group.group_id, 3))
        assert index.delete_bitmap.is_deleted(group.group_id, 3)
        assert index.live_rows == 49

    def test_double_delete_returns_false(self, index, sch):
        index.bulk_load(make_rows(sch, 50))
        group = next(index.directory.row_groups())
        locator = RowLocator(GROUP, group.group_id, 0)
        assert index.delete(locator)
        assert not index.delete(locator)

    def test_delete_delta_row_in_place(self, index, sch):
        locator = index.insert(sch.coerce_row((1, "a", 1.0)))
        assert index.delete(locator)
        assert index.delta_rows == 0
        assert index.get_row(locator) is None

    def test_delete_bad_position_raises(self, index, sch):
        index.bulk_load(make_rows(sch, 50))
        group = next(index.directory.row_groups())
        with pytest.raises(StorageError):
            index.delete(RowLocator(GROUP, group.group_id, 999))

    def test_deleted_compressed_row_unreadable(self, index, sch):
        index.bulk_load(make_rows(sch, 50))
        group = next(index.directory.row_groups())
        locator = RowLocator(GROUP, group.group_id, 2)
        assert index.get_row(locator) is not None
        index.delete(locator)
        assert index.get_row(locator) is None


class TestUpdate:
    def test_update_is_delete_plus_insert(self, index, sch):
        old = index.insert(sch.coerce_row((1, "old", 1.0)))
        new = index.update(old, sch.coerce_row((1, "new", 2.0)))
        assert index.get_row(old) is None
        assert index.get_row(new) == (1, "new", 2.0)
        assert index.live_rows == 1

    def test_update_deleted_row_raises(self, index, sch):
        locator = index.insert(sch.coerce_row((1, "a", 1.0)))
        index.delete(locator)
        with pytest.raises(StorageError):
            index.update(locator, sch.coerce_row((1, "b", 2.0)))


class TestTupleMover:
    def test_moves_closed_deltas(self, index, sch):
        index.insert_many(make_rows(sch, 45))  # two closed (20+20), one open (5)
        report = TupleMover(index).run()
        assert report.delta_stores_compressed == 2
        assert report.rows_moved == 40
        assert index.compressed_rows == 40
        assert index.delta_rows == 5

    def test_include_open(self, index, sch):
        index.insert_many(make_rows(sch, 5))
        report = TupleMover(index).run(include_open=True)
        assert report.rows_moved == 5
        assert index.delta_rows == 0
        assert index.live_rows == 5

    def test_deleted_delta_rows_not_moved(self, index, sch):
        locators = index.insert_many(make_rows(sch, 20))  # closes exactly
        # Delete from the *closed* delta store before the mover runs.
        index._delta_stores[locators[0].container_id].delete(locators[0].position)
        report = TupleMover(index).run()
        assert report.rows_moved == 19
        assert index.live_rows == 19

    def test_noop_when_nothing_closed(self, index, sch):
        index.insert_many(make_rows(sch, 3))
        report = TupleMover(index).run()
        assert report.delta_stores_compressed == 0


class TestRebuild:
    def test_rebuild_drops_deleted_rows(self, index, sch):
        index.bulk_load(make_rows(sch, 100))
        group = next(index.directory.row_groups())
        for position in range(10):
            index.delete(RowLocator(GROUP, group.group_id, position))
        index.rebuild()
        assert index.live_rows == 90
        assert index.compressed_rows == 90
        assert index.delete_bitmap.total_deleted == 0

    def test_rebuild_folds_delta_stores(self, index, sch):
        index.bulk_load(make_rows(sch, 50))
        index.insert_many(make_rows(sch, 7, start=1000))
        index.rebuild()
        assert index.delta_rows == 0
        assert index.compressed_rows == 57

    def test_rebuild_empty_index(self, index):
        index.rebuild()
        assert index.live_rows == 0


class TestArchival:
    def test_archive_toggles(self, index, sch):
        index.bulk_load(make_rows(sch, 50))
        plain_size = index.size_bytes
        index.archive()
        for group in index.directory.row_groups():
            assert group.archived
        index.unarchive()
        for group in index.directory.row_groups():
            assert not group.archived
        assert index.size_bytes == plain_size

    def test_archived_data_still_scans(self, index, sch):
        rows = make_rows(sch, 50)
        index.bulk_load(rows)
        index.archive()
        live = sorted(index._iter_live_rows())
        assert len(live) == 50
        assert live[0][0] == 0


class TestAccounting:
    def test_fraction_in_delta(self, index, sch):
        index.bulk_load(make_rows(sch, 60))
        index.insert_many(make_rows(sch, 15, start=500))
        assert index.fraction_in_delta == pytest.approx(15 / 75)

    def test_scan_units_cover_everything(self, index, sch):
        index.bulk_load(make_rows(sch, 60))
        index.insert_many(make_rows(sch, 5, start=500))
        units = list(index.scan_units())
        group_units = [u for u in units if u.kind == GROUP]
        delta_units = [u for u in units if u.kind == DELTA]
        assert sum(u.group.row_count for u in group_units) == 60
        assert sum(u.delta.row_count for u in delta_units) == 5
