"""Tests for the decoded-segment LRU cache."""

import numpy as np
import pytest

from repro import Database, StoreConfig, schema, types
from repro.storage.cache import SegmentCache
from repro.storage.segment import encode_segment


def make_segment(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    return encode_segment(types.INT, rng.integers(0, 50, n).astype(np.int32))


class TestSegmentCache:
    def test_hit_after_miss(self):
        cache = SegmentCache(capacity_bytes=1 << 20)
        segment = make_segment()
        first, _ = cache.decode(segment)
        second, _ = cache.decode(segment)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert first is second  # same cached array

    def test_distinct_segments_miss(self):
        cache = SegmentCache(capacity_bytes=1 << 20)
        cache.decode(make_segment(seed=1))
        cache.decode(make_segment(seed=2))
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_eviction_lru_order(self):
        segments = [make_segment(seed=i) for i in range(4)]
        one_size = segments[0].row_count * 4  # int32 decoded bytes
        cache = SegmentCache(capacity_bytes=one_size * 2)
        for segment in segments[:2]:
            cache.decode(segment)
        cache.decode(segments[0])  # touch 0, making 1 the LRU
        cache.decode(segments[2])  # evicts 1
        assert cache.stats.evictions == 1
        cache.decode(segments[0])
        assert cache.stats.hits == 2  # 0 still cached

    def test_oversized_segment_not_cached(self):
        cache = SegmentCache(capacity_bytes=16)
        segment = make_segment()
        cache.decode(segment)
        assert len(cache) == 0
        values, _ = cache.decode(segment)
        assert values.shape[0] == segment.row_count  # still decodes correctly

    def test_clear(self):
        cache = SegmentCache(capacity_bytes=1 << 20)
        cache.decode(make_segment())
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_correctness_through_cache(self):
        cache = SegmentCache(capacity_bytes=1 << 20)
        segment = make_segment(seed=5)
        direct, _ = segment.decode()
        cached, _ = cache.decode(segment)
        assert (direct == cached).all()


class TestCacheIntegration:
    @pytest.fixture
    def db(self):
        database = Database(
            StoreConfig(
                rowgroup_size=256,
                bulk_load_threshold=100,
                segment_cache_bytes=1 << 20,
            )
        )
        database.sql("CREATE TABLE t (a INT NOT NULL, s VARCHAR)")
        database.bulk_load("t", [(i, f"v{i % 7}") for i in range(2000)])
        return database

    def test_repeated_scans_hit(self, db):
        cache = db.table("t").columnstore.segment_cache
        db.sql("SELECT SUM(a) AS s FROM t")
        misses_after_first = cache.stats.misses
        db.sql("SELECT SUM(a) AS s FROM t")
        assert cache.stats.misses == misses_after_first
        assert cache.stats.hits > 0

    def test_results_identical_with_and_without_cache(self, db):
        cold = Database(StoreConfig(rowgroup_size=256, bulk_load_threshold=100))
        cold.sql("CREATE TABLE t (a INT NOT NULL, s VARCHAR)")
        cold.bulk_load("t", [(i, f"v{i % 7}") for i in range(2000)])
        sql = "SELECT s, COUNT(*) AS n, SUM(a) AS sa FROM t GROUP BY s ORDER BY s"
        assert db.sql(sql).rows == cold.sql(sql).rows

    def test_rebuild_produces_new_segments(self, db):
        """REBUILD swaps segment objects, so stale entries cannot be hit."""
        index = db.table("t").columnstore
        db.sql("SELECT SUM(a) AS s FROM t")
        old_ids = {
            id(group.segment("a")) for group in index.directory.row_groups()
        }
        db.sql("DELETE FROM t WHERE a < 100")
        db.rebuild("t")
        new_ids = {
            id(group.segment("a")) for group in index.directory.row_groups()
        }
        assert not (old_ids & new_ids)
        assert db.sql("SELECT COUNT(*) AS n FROM t").scalar() == 1900

    def test_disabled_by_default(self):
        database = Database()
        database.sql("CREATE TABLE t (a INT)")
        assert database.table("t").columnstore.segment_cache is None
