"""Tests for config-driven archival loading and remaining config knobs."""

import numpy as np
import pytest

from repro import Database, StoreConfig, schema, types
from repro.errors import StorageError
from repro.storage.columnstore import ColumnStoreIndex


class TestArchivalConfig:
    def test_loader_archives_when_configured(self):
        sch = schema(("a", types.INT, False), ("s", types.VARCHAR, False))
        index = ColumnStoreIndex(
            sch, StoreConfig(rowgroup_size=100, bulk_load_threshold=10, archival=True)
        )
        index.bulk_load([(i, f"v{i % 4}") for i in range(200)])
        for group in index.directory.row_groups():
            assert group.archived
        # Data still scans correctly.
        total = sum(1 for _ in index._iter_live_rows())
        assert total == 200

    def test_tuple_mover_respects_archival_config(self):
        sch = schema(("a", types.INT, False))
        index = ColumnStoreIndex(
            sch,
            StoreConfig(
                rowgroup_size=50, bulk_load_threshold=1000,
                delta_close_rows=50, archival=True,
            ),
        )
        from repro.storage.tuple_mover import TupleMover

        index.insert_many([(i,) for i in range(60)])
        TupleMover(index).run()
        groups = list(index.directory.row_groups())
        assert groups and all(g.archived for g in groups)


class TestConfigValidation:
    def test_bad_rowgroup_size(self):
        with pytest.raises(StorageError):
            StoreConfig(rowgroup_size=0)

    def test_bad_bulk_threshold(self):
        with pytest.raises(StorageError):
            StoreConfig(bulk_load_threshold=0)

    def test_bad_delta_close(self):
        with pytest.raises(StorageError):
            StoreConfig(delta_close_rows=0)

    def test_effective_delta_close_defaults_to_rowgroup(self):
        config = StoreConfig(rowgroup_size=123)
        assert config.effective_delta_close_rows == 123
        assert StoreConfig(delta_close_rows=7).effective_delta_close_rows == 7


class TestArchivalEndToEnd:
    def test_archived_db_queries_and_dml(self):
        db = Database(StoreConfig(rowgroup_size=64, bulk_load_threshold=10, archival=True))
        db.sql("CREATE TABLE t (a INT NOT NULL, s VARCHAR)")
        db.bulk_load("t", [(i, f"x{i % 3}") for i in range(200)])
        assert db.sql("SELECT COUNT(*) AS n FROM t WHERE s = 'x1'").scalar() > 0
        db.sql("DELETE FROM t WHERE a < 50")
        assert db.sql("SELECT COUNT(*) AS n FROM t").scalar() == 150
        db.rebuild("t")
        assert db.sql("SELECT COUNT(*) AS n FROM t").scalar() == 150
