"""Directory-entry durability: fsync the file AND the name that finds it.

On a metadata-lazy filesystem, fsyncing a file makes its *bytes* durable
but not the directory entry naming it — a power cut can leave a
fully-fsynced file unreachable. ``FaultyDisk(lose_unsynced_on_crash=True)``
models this: files created by ``append_file`` whose parent directory was
never ``sync_dir``-ed (or made durable by a rename into it) vanish at the
crash. These tests prove the model, then prove the two write paths that
depend on it: WAL segment creation and the snapshot protocol.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.db.database import Database
from repro.storage.diskio import DiskIO, FaultyDisk, InjectedFault
from repro.storage.snapshot import MANIFEST_NAME


class TestFaultyDiskDirEntries:
    def test_unsynced_dir_entry_vanishes_on_crash(self, tmp_path):
        disk = FaultyDisk(lose_unsynced_on_crash=True)
        target = tmp_path / "d" / "f"
        disk.append_file(target, b"hello")
        disk.sync_file(target)  # bytes durable — but the NAME is not
        disk.crash_after_ops = disk.ops
        with pytest.raises(InjectedFault):
            disk.append_file(tmp_path / "d" / "other", b"x")
        assert not target.exists()

    def test_sync_dir_makes_the_entry_durable(self, tmp_path):
        disk = FaultyDisk(lose_unsynced_on_crash=True)
        target = tmp_path / "d" / "f"
        disk.append_file(target, b"hello")
        disk.sync_file(target)
        disk.sync_dir(tmp_path / "d")
        disk.crash_after_ops = disk.ops
        with pytest.raises(InjectedFault):
            disk.append_file(tmp_path / "d" / "other", b"x")
        assert target.read_bytes() == b"hello"

    def test_rename_into_dir_also_persists_prior_entries(self, tmp_path):
        # rename fsyncs the destination directory as part of the atomic
        # protocol, so every entry in it becomes durable — the appended
        # file rides along.
        disk = FaultyDisk(lose_unsynced_on_crash=True)
        appended = tmp_path / "d" / "f"
        disk.append_file(appended, b"hello")
        disk.sync_file(appended)
        disk.write_file(tmp_path / "d" / "g", b"world")  # ends in a rename
        disk.crash_after_ops = disk.ops
        with pytest.raises(InjectedFault):
            disk.append_file(tmp_path / "d" / "other", b"x")
        assert appended.read_bytes() == b"hello"


class _OpLogDisk(DiskIO):
    """Records the order of durability-relevant calls."""

    def __init__(self):
        self.events = []

    def append_file(self, path, data):
        self.events.append(("append", str(path)))
        super().append_file(path, data)

    def sync_dir(self, path):
        self.events.append(("sync_dir", str(path)))
        super().sync_dir(path)

    def rename(self, src, dst):
        self.events.append(("rename", str(dst)))
        super().rename(src, dst)


class TestWritePathOrdering:
    def test_wal_segment_creation_syncs_its_directory(self, tmp_path):
        disk = _OpLogDisk()
        db = Database.open(str(tmp_path / "db"), disk=disk, durability="per-commit")
        db.sql("CREATE TABLE t (id INT NOT NULL)")
        wal_dir = str(tmp_path / "db" / "wal")
        creation = next(
            i
            for i, (kind, path) in enumerate(disk.events)
            if kind == "append" and "seg_" in path
        )
        dir_sync = next(
            i
            for i, (kind, path) in enumerate(disk.events)
            if kind == "sync_dir" and path == wal_dir and i > creation
        )
        # The new segment's directory entry is synced as part of the
        # append that created the file, before the commit returns.
        assert dir_sync == creation + 1
        db.close()

    def test_snapshot_dir_entry_synced_before_manifest_names_it(self, tmp_path):
        disk = _OpLogDisk()
        db = Database.open(str(tmp_path / "db"), disk=disk)
        db.sql("CREATE TABLE t (id INT NOT NULL)")
        db.sql("INSERT INTO t VALUES (1)")
        db.save(str(tmp_path / "db"), disk=disk)
        db.close()
        root = str(tmp_path / "db")
        root_sync = next(
            i
            for i, (kind, path) in enumerate(disk.events)
            if kind == "sync_dir" and path == root
        )
        manifest = next(
            i
            for i, (kind, path) in enumerate(disk.events)
            if kind == "rename" and path.endswith(MANIFEST_NAME)
        )
        # snap_<id>/'s entry is durable before MANIFEST.json points at it:
        # a crash in between leaves a manifest-less (ignorable) directory,
        # never a manifest naming files the crash unlinked.
        assert root_sync < manifest

    def test_committed_statement_survives_dir_entry_loss_model(self, tmp_path):
        # End to end: with the honest power-cut model, a committed
        # statement in a freshly-created segment file survives the crash.
        disk = FaultyDisk(lose_unsynced_on_crash=True)
        db = Database.open(str(tmp_path / "db"), disk=disk, durability="per-commit")
        db.sql("CREATE TABLE t (id INT NOT NULL)")
        db.sql("INSERT INTO t VALUES (42)")
        disk.crash_after_ops = disk.ops
        with pytest.raises(InjectedFault):
            db.sql("INSERT INTO t VALUES (43)")
        del db
        recovered = Database.load(str(tmp_path / "db"))
        rows = [tuple(r) for r in recovered.sql("SELECT id FROM t").rows]
        assert rows == [(42,)]
        recovered.close()
