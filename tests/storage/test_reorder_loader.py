"""Tests for row reordering, the bulk loader and the segment directory."""

import numpy as np
import pytest

from repro import types
from repro.errors import StorageError
from repro.schema import schema
from repro.storage import rle
from repro.storage.config import StoreConfig
from repro.storage.directory import SegmentDirectory
from repro.storage.loader import BulkLoader, rows_to_columns
from repro.storage.reorder import choose_row_order, run_total
from repro.storage.rowgroup import RowGroup
from repro.storage.segment import encode_segment


class TestReorder:
    def test_sorting_reduces_runs(self):
        rng = np.random.default_rng(1)
        columns = {
            "region": rng.integers(0, 4, 1000),
            "store": rng.integers(0, 50, 1000),
        }
        perm = choose_row_order(columns)
        before = run_total(columns)
        after = run_total({k: v[perm] for k, v in columns.items()})
        assert after < before

    def test_permutation_is_valid(self):
        columns = {"a": np.array([3, 1, 2])}
        perm = choose_row_order(columns)
        assert sorted(perm.tolist()) == [0, 1, 2]

    def test_lowest_cardinality_column_fully_sorted(self):
        rng = np.random.default_rng(2)
        columns = {
            "low": rng.integers(0, 3, 500),
            "high": rng.integers(0, 400, 500),
        }
        perm = choose_row_order(columns)
        low_sorted = columns["low"][perm]
        assert rle.run_count(low_sorted) == np.unique(columns["low"]).size

    def test_string_columns_supported(self):
        values = np.array(["b", "a", "b", "a"], dtype=object)
        perm = choose_row_order({"s": values})
        reordered = values[perm].tolist()
        assert reordered == ["a", "a", "b", "b"]

    def test_nulls_sort_first(self):
        values = np.array([5.0, 1.0, 3.0])
        mask = np.array([False, False, True])
        perm = choose_row_order({"x": values}, {"x": mask})
        assert mask[perm].tolist() == [True, False, False]

    def test_empty(self):
        assert choose_row_order({}).size == 0


@pytest.fixture
def sch():
    return schema(("k", types.INT, False), ("grp", types.VARCHAR))


class TestBulkLoader:
    def make_loader(self, sch, **config_kwargs):
        config = StoreConfig(**{"rowgroup_size": 100, "reorder_rows": True, **config_kwargs})
        directory = SegmentDirectory(sch)
        return BulkLoader(sch, directory, config), directory

    def test_chunks_into_rowgroups(self, sch):
        loader, directory = self.make_loader(sch)
        rows = [(i, f"g{i % 3}") for i in range(250)]
        groups = loader.load_rows(rows)
        assert [g.row_count for g in groups] == [100, 100, 50]
        assert directory.total_rows == 250

    def test_missing_column_raises(self, sch):
        loader, _ = self.make_loader(sch)
        with pytest.raises(StorageError):
            loader.load_columns({"k": np.arange(5, dtype=np.int32)})

    def test_unequal_lengths_raise(self, sch):
        loader, _ = self.make_loader(sch)
        with pytest.raises(StorageError):
            loader.load_columns(
                {"k": np.arange(5, dtype=np.int32), "grp": np.array(["a"] * 4, dtype=object)}
            )

    def test_reorder_improves_compression(self, sch):
        rng = np.random.default_rng(5)
        columns = {
            "k": rng.integers(0, 5, 2000).astype(np.int32),
            "grp": np.array([f"g{i}" for i in rng.integers(0, 4, 2000)], dtype=object),
        }
        loader_on, dir_on = self.make_loader(sch, rowgroup_size=2000, reorder_rows=True)
        loader_off, dir_off = self.make_loader(sch, rowgroup_size=2000, reorder_rows=False)
        loader_on.load_columns({k: v.copy() for k, v in columns.items()})
        loader_off.load_columns(columns)
        assert dir_on.encoded_size_bytes < dir_off.encoded_size_bytes

    def test_rows_to_columns_handles_nulls(self, sch):
        columns, masks = rows_to_columns(sch, [(1, None), (2, "x")])
        assert masks["grp"].tolist() == [True, False]
        assert masks["k"] is None
        assert columns["grp"].tolist() == ["", "x"]


class TestRowGroupAndDirectory:
    def test_rowgroup_validates_columns(self, sch):
        seg = encode_segment(types.INT, np.arange(3, dtype=np.int32))
        with pytest.raises(StorageError):
            RowGroup(group_id=0, schema=sch, segments={"k": seg})  # missing grp

    def test_rowgroup_validates_counts(self, sch):
        seg3 = encode_segment(types.INT, np.arange(3, dtype=np.int32))
        seg4 = encode_segment(types.VARCHAR, np.array(["a"] * 4, dtype=object))
        with pytest.raises(StorageError):
            RowGroup(group_id=0, schema=sch, segments={"k": seg3, "grp": seg4})

    def test_directory_segment_infos(self, sch):
        directory = SegmentDirectory(sch)
        loader = BulkLoader(sch, directory, StoreConfig(rowgroup_size=10))
        loader.load_rows([(i, "g") for i in range(20)])
        infos = directory.segment_infos()
        assert len(infos) == 4  # 2 groups x 2 columns
        k_infos = [i for i in infos if i.column == "k"]
        assert all(i.row_count == 10 for i in k_infos)
        assert k_infos[0].min_value == 0

    def test_directory_duplicate_group_rejected(self, sch):
        directory = SegmentDirectory(sch)
        loader = BulkLoader(sch, directory, StoreConfig(rowgroup_size=10))
        group = loader.load_rows([(1, "a")])[0]
        with pytest.raises(StorageError):
            directory.add_row_group(group)

    def test_directory_unknown_group(self, sch):
        directory = SegmentDirectory(sch)
        with pytest.raises(StorageError):
            directory.row_group(99)
        with pytest.raises(StorageError):
            directory.remove_row_group(99)


class TestDictionarySizeLimit:
    def make_loader(self, sch, limit):
        config = StoreConfig(
            rowgroup_size=1000, reorder_rows=False, dictionary_size_limit=limit
        )
        directory = SegmentDirectory(sch)
        return BulkLoader(sch, directory, config), directory

    def test_oversized_dictionaries_split_row_groups(self):
        sch = schema(("k", types.INT, False), ("s", types.VARCHAR, False))
        # Unique long strings: dictionary bytes ~ rows * 40.
        columns = {
            "k": np.arange(1000, dtype=np.int32),
            "s": np.array([f"value-{i:05d}-{'x' * 30}" for i in range(1000)], dtype=object),
        }
        loader, directory = self.make_loader(sch, limit=10_000)
        groups = loader.load_columns(columns)
        assert len(groups) > 1, "dictionary cap must split the row group"
        assert directory.total_rows == 1000
        for group in groups:
            assert BulkLoader._dictionary_bytes(group) <= 10_000
        # Data survives the splitting intact.
        decoded = np.concatenate([g.decode_column("k")[0] for g in directory.row_groups()])
        assert sorted(decoded.tolist()) == list(range(1000))

    def test_small_dictionaries_do_not_split(self):
        sch = schema(("s", types.VARCHAR, False))
        columns = {"s": np.array(["a", "b"] * 500, dtype=object)}
        loader, directory = self.make_loader(sch, limit=10_000)
        groups = loader.load_columns(columns)
        assert len(groups) == 1
