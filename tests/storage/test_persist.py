"""Tests for segment blob serialization and database persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, StoreConfig, schema, types
from repro.errors import EncodingError
from repro.storage import persist
from repro.storage.blob import deserialize_segment, serialize_segment
from repro.storage.segment import encode_segment


def roundtrip_blob(segment):
    return deserialize_segment(serialize_segment(segment))


class TestSegmentBlobs:
    def test_int_segment(self):
        values = np.array([5, 3, 5, 100, -7], dtype=np.int32)
        original = encode_segment(types.INT, values)
        restored = roundtrip_blob(original)
        assert restored.dtype == original.dtype
        assert restored.scheme == original.scheme
        assert (restored.decode()[0] == values).all()
        assert restored.min_value == -7
        assert restored.max_value == 100
        assert restored.raw_size_bytes == original.raw_size_bytes

    def test_string_segment(self):
        values = np.array(["b", "a", "b", "cc"] * 50, dtype=object)
        restored = roundtrip_blob(encode_segment(types.VARCHAR, values))
        assert restored.decode()[0].tolist() == values.tolist()
        assert restored.min_value == "a"

    def test_float_raw_segment(self):
        rng = np.random.default_rng(1)
        values = rng.standard_normal(50)
        restored = roundtrip_blob(encode_segment(types.FLOAT, values))
        assert (restored.decode()[0] == values).all()

    def test_decimal_segment(self):
        dtype = types.decimal(2)
        values = np.array([150, 2500, 150], dtype=np.int64)
        restored = roundtrip_blob(encode_segment(dtype, values))
        assert restored.dtype.scale == 2
        assert (restored.decode()[0] == values).all()

    def test_bool_segment(self):
        values = np.array([True, False, True, True])
        restored = roundtrip_blob(encode_segment(types.BOOL, values))
        assert restored.decode()[0].tolist() == values.tolist()
        assert restored.min_value is False
        assert restored.max_value is True

    def test_nullable_segment(self):
        values = np.array([1, 0, 3], dtype=np.int32)
        nulls = np.array([False, True, False])
        restored = roundtrip_blob(encode_segment(types.INT, values, nulls))
        decoded, mask = restored.decode()
        assert mask.tolist() == [False, True, False]
        assert restored.null_count == 1

    def test_all_null_segment(self):
        restored = roundtrip_blob(
            encode_segment(types.INT, np.zeros(3, dtype=np.int32), np.ones(3, dtype=bool))
        )
        assert restored.min_value is None

    def test_archived_segment(self):
        values = np.array(["alpha", "beta"] * 100, dtype=object)
        archived = encode_segment(types.VARCHAR, values).to_archived()
        restored = roundtrip_blob(archived)
        assert restored.archived
        assert restored.decode()[0].tolist() == values.tolist()

    def test_varchar_with_length(self):
        dtype = types.varchar(10)
        values = np.array(["aa", "bb"], dtype=object)
        restored = roundtrip_blob(encode_segment(dtype, values))
        assert restored.dtype.length == 10

    def test_bad_magic_rejected(self):
        with pytest.raises(EncodingError):
            deserialize_segment(b"XXXX" + b"\x00" * 32)

    def test_bad_version_rejected(self):
        blob = bytearray(serialize_segment(encode_segment(types.INT, np.array([1], dtype=np.int32))))
        blob[4] = 99
        with pytest.raises(EncodingError):
            deserialize_segment(bytes(blob))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.one_of(st.none(), st.integers(-(2**31), 2**31 - 1)),
        min_size=1,
        max_size=120,
    )
)
def test_segment_blob_roundtrip_property(raw):
    values = np.array([0 if v is None else v for v in raw], dtype=np.int32)
    nulls = np.array([v is None for v in raw])
    original = encode_segment(types.INT, values, nulls if nulls.any() else None)
    restored = roundtrip_blob(original)
    decoded, mask = restored.decode()
    for i, v in enumerate(raw):
        if v is None:
            assert mask is not None and mask[i]
        else:
            assert decoded[i] == v


class TestRowSerialization:
    def test_roundtrip_with_nulls(self):
        sch = schema(("a", types.INT, False), ("b", types.VARCHAR), ("c", types.FLOAT))
        rows = [(1, "x", 1.5), (2, None, 2.5), (3, "z", None)]
        physical = [sch.coerce_row(r) for r in rows]
        blob = persist.serialize_rows(sch, physical)
        assert persist.deserialize_rows(sch, blob) == physical

    def test_empty(self):
        sch = schema(("a", types.INT))
        assert persist.deserialize_rows(sch, persist.serialize_rows(sch, [])) == []

    def test_bools_and_dates(self):
        sch = schema(("f", types.BOOL), ("d", types.DATE))
        physical = [sch.coerce_row((True, "2024-06-01")), sch.coerce_row((False, None))]
        restored = persist.deserialize_rows(sch, persist.serialize_rows(sch, physical))
        assert restored == physical
        assert isinstance(restored[0][0], bool)

    def test_truncation_at_every_offset_is_structured(self):
        from repro.errors import StorageError

        sch = schema(("a", types.INT, False), ("b", types.VARCHAR))
        physical = [sch.coerce_row(r) for r in [(1, "x"), (2, None), (3, "zzz")]]
        blob = persist.serialize_rows(sch, physical)
        for cut in range(len(blob)):
            with pytest.raises(StorageError):
                persist.deserialize_rows(sch, blob[:cut])

    def test_trailing_garbage_rejected(self):
        from repro.errors import CorruptBlobError

        sch = schema(("a", types.INT))
        blob = persist.serialize_rows(sch, [sch.coerce_row((1,))])
        with pytest.raises(CorruptBlobError):
            persist.deserialize_rows(sch, blob + b"\x00")

    def test_mismatched_null_flags_rejected(self):
        from repro.errors import CorruptBlobError

        sch = schema(("a", types.INT))
        blob = bytearray(persist.serialize_rows(sch, [sch.coerce_row((7,))]))
        blob[1] ^= 1  # flip the single null flag: payload now over-full
        with pytest.raises(CorruptBlobError):
            persist.deserialize_rows(sch, bytes(blob))


@pytest.fixture
def populated_db(tmp_path):
    db = Database(StoreConfig(rowgroup_size=32, bulk_load_threshold=20, delta_close_rows=16))
    db.sql(
        "CREATE TABLE sales (id INT NOT NULL, region VARCHAR, "
        "amount DECIMAL(10,2), d DATE)"
    )
    db.bulk_load(
        "sales",
        [(i, f"r{i % 3}", 1.5 * i, f"2024-01-{i % 28 + 1:02d}") for i in range(100)],
    )
    db.insert("sales", [(1000 + i, "fresh", 9.99, "2024-06-01") for i in range(10)])
    db.sql("DELETE FROM sales WHERE id < 5")
    db.sql("CREATE TABLE notes (k INT, txt VARCHAR) USING rowstore")
    db.insert("notes", [(1, "alpha"), (2, None)])
    db.table("notes").create_index("by_k", ["k"])
    return db


class TestDatabasePersistence:
    def test_full_roundtrip(self, populated_db, tmp_path):
        target = tmp_path / "db"
        populated_db.save(str(target))
        reopened = Database.load(str(target))

        for query in (
            "SELECT COUNT(*) AS n FROM sales",
            "SELECT region, COUNT(*) AS n FROM sales GROUP BY region ORDER BY region",
            "SELECT SUM(amount) AS s FROM sales WHERE d >= '2024-06-01'",
            "SELECT COUNT(*) AS n FROM notes",
        ):
            assert reopened.sql(query).rows == populated_db.sql(query).rows

    def test_delta_and_bitmap_survive(self, populated_db, tmp_path):
        target = tmp_path / "db"
        populated_db.save(str(target))
        reopened = Database.load(str(target))
        original = populated_db.table("sales").columnstore
        restored = reopened.table("sales").columnstore
        assert restored.delta_rows == original.delta_rows
        assert restored.delete_bitmap.total_deleted == original.delete_bitmap.total_deleted
        assert restored.live_rows == original.live_rows

    def test_dml_continues_after_load(self, populated_db, tmp_path):
        target = tmp_path / "db"
        populated_db.save(str(target))
        reopened = Database.load(str(target))
        before = reopened.sql("SELECT COUNT(*) AS n FROM sales").scalar()
        reopened.sql("INSERT INTO sales VALUES (5000, 'new', 1.00, '2025-01-01')")
        reopened.sql("DELETE FROM sales WHERE region = 'r0'")
        after = reopened.sql("SELECT COUNT(*) AS n FROM sales").scalar()
        assert after < before + 1
        # Tuple mover still works on reopened delta stores.
        reopened.run_tuple_mover("sales", include_open=True)
        assert reopened.table("sales").columnstore.delta_rows == 0

    def test_archived_table_roundtrip(self, populated_db, tmp_path):
        populated_db.run_tuple_mover("sales", include_open=True)
        populated_db.set_archival("sales", True)
        target = tmp_path / "db"
        populated_db.save(str(target))
        reopened = Database.load(str(target))
        assert reopened.sql("SELECT COUNT(*) AS n FROM sales").rows == (
            populated_db.sql("SELECT COUNT(*) AS n FROM sales").rows
        )
        for group in reopened.table("sales").columnstore.directory.row_groups():
            assert group.archived

    def test_rowstore_index_rebuilt(self, populated_db, tmp_path):
        target = tmp_path / "db"
        populated_db.save(str(target))
        reopened = Database.load(str(target))
        index = reopened.table("notes").indexes["by_k"]
        assert len(list(index.seek_equal((1,)))) == 1
