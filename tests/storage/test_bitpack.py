"""Tests for bit packing, including round-trip property tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.storage import bitpack


class TestBitsNeeded:
    def test_zero(self):
        assert bitpack.bits_needed(0) == 0

    def test_one(self):
        assert bitpack.bits_needed(1) == 1

    def test_powers(self):
        assert bitpack.bits_needed(255) == 8
        assert bitpack.bits_needed(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            bitpack.bits_needed(-1)


class TestPackUnpack:
    def test_empty(self):
        assert bitpack.pack(np.array([], dtype=np.uint64), 5) == b""
        assert bitpack.unpack(b"", 5, 0).size == 0

    def test_width_zero_all_zeros(self):
        payload = bitpack.pack(np.zeros(10, dtype=np.uint64), 0)
        assert payload == b""
        assert (bitpack.unpack(payload, 0, 10) == 0).all()

    def test_width_zero_rejects_nonzero(self):
        with pytest.raises(EncodingError):
            bitpack.pack(np.array([0, 1], dtype=np.uint64), 0)

    def test_value_exceeding_width_rejected(self):
        with pytest.raises(EncodingError):
            bitpack.pack(np.array([8], dtype=np.uint64), 3)

    def test_simple_roundtrip(self):
        values = np.array([0, 1, 2, 3, 7, 5], dtype=np.uint64)
        payload = bitpack.pack(values, 3)
        assert len(payload) == bitpack.packed_size_bytes(6, 3)
        assert (bitpack.unpack(payload, 3, 6) == values).all()

    def test_non_byte_aligned_width(self):
        values = np.array([1000, 0, 523, 1023], dtype=np.uint64)
        payload = bitpack.pack(values, 10)
        assert (bitpack.unpack(payload, 10, 4) == values).all()

    def test_truncated_payload_detected(self):
        payload = bitpack.pack(np.arange(100, dtype=np.uint64), 7)
        with pytest.raises(EncodingError):
            bitpack.unpack(payload[:-5], 7, 100)

    def test_2d_rejected(self):
        with pytest.raises(EncodingError):
            bitpack.pack(np.zeros((2, 2), dtype=np.uint64), 4)

    def test_width_over_64_rejected(self):
        with pytest.raises(EncodingError):
            bitpack.pack(np.array([1], dtype=np.uint64), 65)

    def test_full_64_bit_values(self):
        values = np.array([2**64 - 1, 0, 2**63], dtype=np.uint64)
        payload = bitpack.pack(values, 64)
        assert (bitpack.unpack(payload, 64, 3) == values).all()


@given(
    st.lists(st.integers(min_value=0, max_value=2**40 - 1), max_size=300),
)
def test_roundtrip_property(values):
    arr = np.array(values, dtype=np.uint64)
    width = bitpack.bits_needed(int(arr.max()) if arr.size else 0)
    payload = bitpack.pack(arr, width)
    assert len(payload) == bitpack.packed_size_bytes(arr.size, width)
    recovered = bitpack.unpack(payload, width, arr.size)
    assert (recovered == arr).all()


@given(
    st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200),
    st.integers(min_value=8, max_value=16),
)
def test_wider_width_still_roundtrips(values, width):
    arr = np.array(values, dtype=np.uint64)
    payload = bitpack.pack(arr, width)
    assert (bitpack.unpack(payload, width, arr.size) == arr).all()
