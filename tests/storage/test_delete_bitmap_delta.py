"""Tests for the delete bitmap and delta stores."""

import numpy as np
import pytest

from repro import types
from repro.errors import StorageError
from repro.schema import schema
from repro.storage.delete_bitmap import DeleteBitmap
from repro.storage.deltastore import DeltaStore


class TestDeleteBitmap:
    def test_mark_and_check(self):
        bitmap = DeleteBitmap()
        assert bitmap.mark(1, 5)
        assert bitmap.is_deleted(1, 5)
        assert not bitmap.is_deleted(1, 6)
        assert not bitmap.is_deleted(2, 5)

    def test_double_mark(self):
        bitmap = DeleteBitmap()
        assert bitmap.mark(0, 0)
        assert not bitmap.mark(0, 0)
        assert bitmap.total_deleted == 1

    def test_mark_many(self):
        bitmap = DeleteBitmap()
        assert bitmap.mark_many(3, [1, 2, 3]) == 3
        assert bitmap.mark_many(3, [3, 4]) == 1
        assert bitmap.deleted_count(3) == 4

    def test_mask_for(self):
        bitmap = DeleteBitmap()
        bitmap.mark_many(0, [1, 3])
        mask = bitmap.mask_for(0, 5)
        assert mask.tolist() == [False, True, False, True, False]

    def test_mask_for_untouched_group_is_none(self):
        assert DeleteBitmap().mask_for(9, 10) is None

    def test_forget_group(self):
        bitmap = DeleteBitmap()
        bitmap.mark(1, 1)
        bitmap.forget_group(1)
        assert bitmap.total_deleted == 0
        assert bitmap.mask_for(1, 5) is None

    def test_groups_with_deletes(self):
        bitmap = DeleteBitmap()
        bitmap.mark(5, 0)
        bitmap.mark(2, 0)
        assert bitmap.groups_with_deletes() == [2, 5]


@pytest.fixture
def sch():
    return schema(("id", types.INT, False), ("v", types.VARCHAR))


class TestDeltaStore:
    def test_insert_and_get(self, sch):
        delta = DeltaStore(0, sch)
        delta.insert(10, (1, "a"))
        assert delta.get(10) == (1, "a")
        assert delta.row_count == 1

    def test_duplicate_row_id_rejected(self, sch):
        delta = DeltaStore(0, sch)
        delta.insert(1, (1, "a"))
        with pytest.raises(StorageError):
            delta.insert(1, (2, "b"))

    def test_closed_rejects_inserts(self, sch):
        delta = DeltaStore(0, sch)
        delta.close()
        with pytest.raises(StorageError):
            delta.insert(1, (1, "a"))

    def test_closed_allows_deletes(self, sch):
        delta = DeltaStore(0, sch)
        delta.insert(1, (1, "a"))
        delta.close()
        assert delta.delete(1)

    def test_scan_in_row_id_order(self, sch):
        delta = DeltaStore(0, sch)
        for row_id in [5, 1, 3]:
            delta.insert(row_id, (row_id, "x"))
        assert [rid for rid, _ in delta.scan()] == [1, 3, 5]

    def test_to_columns(self, sch):
        delta = DeltaStore(0, sch)
        delta.insert(1, (10, "a"))
        delta.insert(2, (20, None))
        columns, masks, row_ids = delta.to_columns()
        assert columns["id"].tolist() == [10, 20]
        assert columns["id"].dtype == np.int32
        assert masks["v"].tolist() == [False, True]
        assert masks["id"] is None
        assert row_ids == [1, 2]

    def test_size_bytes_grows(self, sch):
        delta = DeltaStore(0, sch)
        empty = delta.size_bytes
        delta.insert(1, (1, "hello"))
        assert delta.size_bytes > empty
