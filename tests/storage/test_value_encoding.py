"""Tests for value-based (affine) encoding."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import value_encoding as ve


class TestIntegerEncoding:
    def test_rebases_by_min(self):
        values = np.array([1000, 1001, 1005], dtype=np.int64)
        enc = ve.choose_integer_encoding(values)
        assert enc.base == 1000
        assert enc.exponent == 0
        offsets = enc.apply(values)
        assert offsets.tolist() == [0, 1, 5]

    def test_divides_common_power_of_ten(self):
        values = np.array([1500, 2500, 4000], dtype=np.int64)
        enc = ve.choose_integer_encoding(values)
        assert enc.exponent == -2  # all divisible by 100
        offsets = enc.apply(values)
        assert int(offsets.max()) == 25  # (4000-1500)/100

    def test_roundtrip(self):
        values = np.array([-500, 0, 12_300], dtype=np.int64)
        enc = ve.choose_integer_encoding(values)
        offsets = enc.apply(values)
        assert (enc.invert(offsets, np.dtype(np.int64)) == values).all()

    def test_negative_values(self):
        values = np.array([-10, -7, -1], dtype=np.int64)
        enc = ve.choose_integer_encoding(values)
        offsets = enc.apply(values)
        assert int(offsets.min()) == 0
        assert (enc.invert(offsets, np.dtype(np.int64)) == values).all()

    def test_empty(self):
        enc = ve.choose_integer_encoding(np.array([], dtype=np.int64))
        assert enc.base == 0


class TestFloatEncoding:
    def test_integral_floats(self):
        values = np.array([10.0, 12.0, 11.0])
        enc = ve.choose_float_encoding(values)
        assert enc is not None
        assert enc.exponent == 0
        recovered = enc.invert(enc.apply(values), np.dtype(np.float64))
        assert (recovered == values).all()

    def test_two_decimal_prices(self):
        values = np.array([19.99, 5.25, 100.50])
        enc = ve.choose_float_encoding(values)
        assert enc is not None
        assert enc.exponent == 2
        recovered = enc.invert(enc.apply(values), np.dtype(np.float64))
        assert (recovered == values).all()

    def test_irrational_floats_fall_back(self):
        values = np.array([0.1234567, 3.14159265])
        assert ve.choose_float_encoding(values) is None

    def test_nan_falls_back(self):
        assert ve.choose_float_encoding(np.array([1.0, np.nan])) is None

    def test_huge_floats_fall_back(self):
        assert ve.choose_float_encoding(np.array([1e300])) is None


@given(
    st.lists(
        st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=200
    )
)
def test_integer_roundtrip_property(values):
    arr = np.array(values, dtype=np.int64)
    enc = ve.choose_integer_encoding(arr)
    offsets = enc.apply(arr)
    assert int(offsets.min()) >= 0
    assert (enc.invert(offsets, np.dtype(np.int64)) == arr).all()


@given(
    st.lists(
        st.integers(min_value=-(10**6), max_value=10**6), min_size=1, max_size=100
    ),
    st.integers(min_value=0, max_value=2),
)
def test_float_with_known_scale_roundtrips(cents, scale):
    arr = np.array(cents, dtype=np.float64) / 10**scale
    enc = ve.choose_float_encoding(arr)
    assert enc is not None
    recovered = enc.invert(enc.apply(arr), np.dtype(np.float64))
    assert (recovered == arr).all()
