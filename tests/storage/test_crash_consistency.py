"""Crash-consistency suite for the snapshot persistence protocol.

Drives :meth:`Database.save` through a :class:`FaultyDisk` that simulates
a crash at *every* write point (every file write and every rename), then
reopens the directory and asserts — by full table scans — that the
database is *exactly* the pre-save or post-save state, never a hybrid.
Also exercises torn writes, silently dropped renames, single-byte on-disk
corruption (every manifest-listed file must be detected by name), bit
flips on read, recovery metrics, and stale-file garbage collection.

``REPRO_FAULT_SEED`` (CI matrix) seeds the randomized choices: torn-write
lengths and corruption offsets/bits, so different runs exercise different
byte positions without losing determinism within a run.
"""

import os
import random
import shutil

import pytest

from repro import Database, StoreConfig
from repro.cli import Shell
from repro.errors import CorruptBlobError, RecoveryError, StorageError
from repro.observability import MetricsRegistry
from repro.observability.registry import set_registry
from repro.storage.diskio import DiskIO, FaultyDisk, InjectedFault
from repro.storage.snapshot import MANIFEST_NAME, load_manifest

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

_QUERIES = (
    "SELECT * FROM sales ORDER BY id",
    "SELECT COUNT(*) AS n FROM sales",
    "SELECT region, COUNT(*) AS n FROM sales GROUP BY region ORDER BY region",
    "SELECT * FROM notes ORDER BY k",
)


def build_db() -> Database:
    """State A: mixed rowgroups + open/closed deltas + deletes + rowstore."""
    db = Database(
        StoreConfig(rowgroup_size=32, bulk_load_threshold=20, delta_close_rows=16)
    )
    db.sql("CREATE TABLE sales (id INT NOT NULL, region VARCHAR, amount FLOAT)")
    db.bulk_load("sales", [(i, f"r{i % 3}", 1.5 * i) for i in range(80)])
    db.insert("sales", [(1000 + i, "fresh", 9.9) for i in range(8)])
    db.sql("DELETE FROM sales WHERE id < 4")
    db.sql("CREATE TABLE notes (k INT, txt VARCHAR) USING rowstore")
    db.insert("notes", [(1, "alpha"), (2, None), (3, "gamma")])
    db.table("notes").create_index("by_k", ["k"])
    return db


def mutate(db: Database) -> None:
    """State A -> state B: changes every persisted file family."""
    db.sql("INSERT INTO sales VALUES (2000, 'newer', 1.0), (2001, 'newer', 2.0)")
    db.sql("DELETE FROM sales WHERE region = 'r0'")
    db.run_tuple_mover("sales", include_open=True)  # reshapes deltas/rowgroups
    db.insert("sales", [(3000, "post-mover", 4.2)])
    db.insert("notes", [(4, "delta")])


def state_of(db: Database) -> list:
    return [db.sql(query).rows for query in _QUERIES]


def count_save_ops(db: Database, scratch) -> int:
    disk = FaultyDisk()
    db.save(str(scratch / "op-probe"), disk=disk)
    return disk.ops


@pytest.fixture
def saved(tmp_path):
    """(db at state B, target dir committed at state A, state_a, state_b)."""
    db = build_db()
    target = tmp_path / "db"
    db.save(str(target))
    state_a = state_of(db)
    mutate(db)
    state_b = state_of(db)
    assert state_a != state_b
    return db, target, state_a, state_b


class TestCrashAtEveryWritePoint:
    def _sweep(self, saved, tmp_path, torn_bytes_for):
        db, target, state_a, state_b = saved
        total = count_save_ops(db, tmp_path)
        assert total >= 20, "expected a multi-file save to exercise"
        for crash_at in range(total):
            workdir = tmp_path / "crash"
            shutil.copytree(target, workdir)
            disk = FaultyDisk(
                crash_after_ops=crash_at, torn_write_bytes=torn_bytes_for(crash_at)
            )
            with pytest.raises(InjectedFault):
                db.save(str(workdir), disk=disk)
            # The crashed directory still verifies: the committed
            # snapshot is untouched.
            assert Database.check(str(workdir)).ok
            observed = state_of(Database.load(str(workdir)))
            assert observed in (state_a, state_b), (
                f"hybrid database state after crash at write point "
                f"{crash_at}/{total}"
            )
            # Crashes strictly before the manifest rename must yield the
            # pre-save state (the rename is the one and only commit point).
            assert observed == state_a
            shutil.rmtree(workdir)
        # The uninterrupted save yields exactly the post-save state.
        db.save(str(target), disk=FaultyDisk(crash_after_ops=total + 1))
        assert state_of(Database.load(str(target))) == state_b

    def test_clean_crash_every_point(self, saved, tmp_path):
        self._sweep(saved, tmp_path, torn_bytes_for=lambda _: None)

    def test_torn_write_crash_every_point(self, saved, tmp_path):
        rng = random.Random(SEED)
        self._sweep(saved, tmp_path, torn_bytes_for=lambda _: rng.randrange(1, 64))

    def test_load_rolls_back_interrupted_snapshot(self, saved, tmp_path):
        db, target, state_a, _ = saved
        workdir = tmp_path / "interrupted"
        shutil.copytree(target, workdir)
        with pytest.raises(InjectedFault):
            db.save(str(workdir), disk=FaultyDisk(crash_after_ops=5))
        snap_dirs = [p.name for p in workdir.iterdir() if p.name.startswith("snap_")]
        assert len(snap_dirs) == 2  # committed + interrupted
        assert state_of(Database.load(str(workdir))) == state_a
        # Recovery garbage-collected the interrupted snapshot directory.
        snap_dirs = [p.name for p in workdir.iterdir() if p.name.startswith("snap_")]
        assert snap_dirs == ["snap_000001"]


class TestDroppedRenames:
    def test_dropped_data_rename_detected_at_load(self, saved, tmp_path):
        db, target, _, _ = saved
        disk = FaultyDisk(drop_rename_of=".seg")
        db.save(str(target), disk=disk)  # "succeeds" with lost renames
        assert disk.dropped_renames
        with pytest.raises(StorageError) as excinfo:
            Database.load(str(target))
        assert ".seg" in str(excinfo.value)
        report = Database.check(str(target))
        assert not report.ok
        assert any(v.status == "missing" for v in report.verdicts)

    def test_dropped_manifest_rename_keeps_presave_state(self, saved, tmp_path):
        db, target, state_a, _ = saved
        disk = FaultyDisk(drop_rename_of=MANIFEST_NAME)
        db.save(str(target), disk=disk)
        assert disk.dropped_renames == [str(target / MANIFEST_NAME)]
        manifest = load_manifest(DiskIO(), target)
        assert manifest is not None and manifest.snapshot_id == 1
        assert state_of(Database.load(str(target))) == state_a


class TestOnDiskCorruption:
    def test_every_manifest_file_detects_single_byte_flip(self, saved, tmp_path):
        """For every file the manifest lists, a one-byte corruption at
        seeded offsets (always including first and last byte) is detected
        at both load and check time, with the offending path named."""
        db, target, _, _ = saved
        db.save(str(target))
        manifest = load_manifest(DiskIO(), target)
        assert manifest is not None and len(manifest.files) >= 10
        rng = random.Random(SEED)
        for entry in manifest.files:
            path = target / manifest.directory / entry.path
            pristine = path.read_bytes()
            offsets = {0, entry.size - 1, rng.randrange(entry.size)}
            for offset in offsets:
                corrupted = bytearray(pristine)
                corrupted[offset] ^= 1 << rng.randrange(8)
                path.write_bytes(bytes(corrupted))
                with pytest.raises(StorageError) as excinfo:
                    Database.load(str(target))
                assert entry.path in str(excinfo.value).replace(os.sep, "/")
                report = Database.check(str(target))
                assert not report.ok
                bad = [v for v in report.verdicts if not v.ok]
                assert [v.path for v in bad] == [entry.path]
                assert bad[0].status in ("checksum-mismatch", "size-mismatch")
            path.write_bytes(pristine)
        assert Database.check(str(target)).ok  # restored clean

    def test_corrupt_manifest_is_detected(self, saved, tmp_path):
        db, target, _, _ = saved
        manifest_path = target / MANIFEST_NAME
        data = bytearray(manifest_path.read_bytes())
        data[len(data) // 2] ^= 0x10
        manifest_path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            Database.load(str(target))
        assert Database.check(str(target)).manifest_status == "corrupt"

    def test_truncated_file_detected(self, saved, tmp_path):
        db, target, _, _ = saved
        manifest = load_manifest(DiskIO(), target)
        entry = next(e for e in manifest.files if e.path.endswith(".rows"))
        path = target / manifest.directory / entry.path
        path.write_bytes(path.read_bytes()[:-1])
        with pytest.raises(StorageError, match="size mismatch"):
            Database.load(str(target))

    def test_bit_flip_on_read_detected(self, saved, tmp_path):
        _, target, _, _ = saved
        rng = random.Random(SEED)
        disk = FaultyDisk(flip_bit_on_read=(".seg", rng.randrange(1 << 16), rng.randrange(8)))
        with pytest.raises(CorruptBlobError, match=r"\.seg"):
            Database.load(str(target), disk=disk)


class TestRecoveryObservability:
    def test_counters_report_verification_and_rollback(self, saved, tmp_path):
        db, target, state_a, _ = saved
        with pytest.raises(InjectedFault):
            db.save(str(target), disk=FaultyDisk(crash_after_ops=3))
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            Database.load(str(target))
        finally:
            set_registry(previous)
        manifest = load_manifest(DiskIO(), target)
        assert registry.counter("storage.recovery.files_verified") == len(
            manifest.files
        )
        assert registry.counter("storage.recovery.checksum_failures") == 0
        assert registry.counter("storage.recovery.snapshots_rolled_back") == 1

    def test_checksum_failure_counter(self, saved, tmp_path):
        _, target, _, _ = saved
        manifest = load_manifest(DiskIO(), target)
        path = target / manifest.directory / manifest.files[0].path
        data = bytearray(path.read_bytes())
        data[0] ^= 1
        path.write_bytes(bytes(data))
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            with pytest.raises(StorageError):
                Database.load(str(target))
        finally:
            set_registry(previous)
        assert registry.counter("storage.recovery.checksum_failures") == 1


class TestStaleFileCollection:
    def test_resave_leaves_no_orphan_files(self, saved, tmp_path):
        """Re-saving after the tuple mover merged deltas must not leave
        orphaned delta_*.rows / g*.seg files from the previous save."""
        db, target, _, state_b = saved
        db.save(str(target))
        manifest = load_manifest(DiskIO(), target)
        on_disk = {
            p.relative_to(target).as_posix()
            for p in target.rglob("*")
            if p.is_file()
        }
        listed = {f"{manifest.directory}/{e.path}" for e in manifest.files}
        assert on_disk == listed | {MANIFEST_NAME}
        # The old snapshot (with its pre-mover delta files) is gone.
        assert not (target / "snap_000001").exists()
        assert state_of(Database.load(str(target))) == state_b


class TestLegacyLayout:
    def test_pre_manifest_directory_still_loads(self, saved, tmp_path):
        """Directories written before the snapshot protocol (data files at
        the root, no manifest) remain loadable, unverified."""
        db, target, state_a, _ = saved
        legacy = tmp_path / "legacy"
        shutil.copytree(target / "snap_000001", legacy)
        assert (legacy / "catalog.json").exists()
        assert state_of(Database.load(str(legacy))) == state_a

    def test_empty_directory_is_recovery_error(self, tmp_path):
        (tmp_path / "void").mkdir()
        with pytest.raises(RecoveryError, match="no database"):
            Database.load(str(tmp_path / "void"))


class TestCheckCommand:
    def test_shell_check_meta_command(self, saved, tmp_path):
        _, target, _, _ = saved
        shell = Shell()
        out = shell.run_meta(f"\\check {target}")
        assert any("result: ok" in line for line in out)
        assert shell.run_meta("\\check") == ["usage: \\check <directory>"]

    def test_cli_check_exit_codes(self, saved, tmp_path, capsys):
        from repro.cli import main

        _, target, _, _ = saved
        assert main(["check", str(target)]) == 0
        assert "result: ok" in capsys.readouterr().out
        manifest = load_manifest(DiskIO(), target)
        victim = target / manifest.directory / manifest.files[0].path
        data = bytearray(victim.read_bytes())
        data[0] ^= 0xFF
        victim.write_bytes(bytes(data))
        assert main(["check", str(target)]) == 1
        assert "FAILED" in capsys.readouterr().out
        assert main(["check"]) == 2
