"""Tests for column segment encoding, metadata and archival."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import types
from repro.storage.dictionary import GlobalDictionary
from repro.storage.encodings import Scheme
from repro.storage.segment import encode_segment


def roundtrip(dtype, values, null_mask=None):
    segment = encode_segment(dtype, values, null_mask)
    decoded, mask = segment.decode()
    return segment, decoded, mask


class TestIntSegments:
    def test_roundtrip(self):
        values = np.array([5, 3, 5, 5, 100], dtype=np.int32)
        segment, decoded, mask = roundtrip(types.INT, values)
        assert decoded.tolist() == values.tolist()
        assert mask is None

    def test_min_max_metadata(self):
        segment, _, _ = roundtrip(types.INT, np.array([7, -2, 9], dtype=np.int32))
        assert segment.min_value == -2
        assert segment.max_value == 9

    def test_low_cardinality_wide_range_uses_dictionary(self):
        # Two distinct values a billion apart over many rows: dictionary wins.
        values = np.tile(np.array([0, 10**9], dtype=np.int64), 5000)
        segment, decoded, _ = roundtrip(types.BIGINT, values)
        assert segment.scheme is Scheme.DICT
        assert (decoded == values).all()

    def test_dense_range_uses_value_encoding(self):
        values = np.arange(1000, dtype=np.int32)
        segment, decoded, _ = roundtrip(types.INT, values)
        assert segment.scheme is Scheme.VALUE
        assert (decoded == values).all()

    def test_compresses_versus_raw(self):
        values = np.full(10_000, 42, dtype=np.int32)
        segment, _, _ = roundtrip(types.INT, values)
        assert segment.encoded_size_bytes < segment.raw_size_bytes / 50


class TestStringSegments:
    def test_roundtrip(self):
        values = np.array(["b", "a", "b", "c"], dtype=object)
        segment, decoded, _ = roundtrip(types.VARCHAR, values)
        assert segment.scheme is Scheme.DICT
        assert decoded.tolist() == ["b", "a", "b", "c"]

    def test_min_max_are_strings(self):
        segment, _, _ = roundtrip(
            types.VARCHAR, np.array(["pear", "apple", "fig"], dtype=object)
        )
        assert segment.min_value == "apple"
        assert segment.max_value == "pear"

    def test_global_dictionary_interning(self):
        gd = GlobalDictionary()
        encode_segment(types.VARCHAR, np.array(["x", "y"], dtype=object), global_dict=gd)
        encode_segment(types.VARCHAR, np.array(["y", "z"], dtype=object), global_dict=gd)
        assert len(gd) == 3
        assert gd.id_of("y") == 1  # first-seen order preserved


class TestFloatSegments:
    def test_price_like_floats_value_encode(self):
        values = np.array([19.99, 5.25, 19.99] * 100)
        segment, decoded, _ = roundtrip(types.FLOAT, values)
        assert segment.scheme is Scheme.VALUE
        assert (decoded == values).all()

    def test_awkward_floats_stored_raw(self):
        rng = np.random.default_rng(3)
        values = rng.standard_normal(100)
        segment, decoded, _ = roundtrip(types.FLOAT, values)
        assert segment.scheme is Scheme.RAW
        assert (decoded == values).all()

    def test_repeating_awkward_floats_use_dictionary(self):
        base = np.array([0.123456789, 9.87654321, 5.55555555])
        values = np.tile(base, 2000)
        segment, decoded, _ = roundtrip(types.FLOAT, values)
        assert segment.scheme is Scheme.DICT
        assert (decoded == values).all()


class TestNulls:
    def test_null_mask_roundtrip(self):
        values = np.array([1, 0, 3, 0], dtype=np.int32)
        nulls = np.array([False, True, False, True])
        segment, decoded, mask = roundtrip(types.INT, values, nulls)
        assert segment.null_count == 2
        assert mask.tolist() == [False, True, False, True]
        assert decoded[0] == 1
        assert decoded[2] == 3

    def test_nulls_excluded_from_min_max(self):
        values = np.array([100, -999, 50], dtype=np.int32)
        nulls = np.array([False, True, False])
        segment, _, _ = roundtrip(types.INT, values, nulls)
        assert segment.min_value == 50
        assert segment.max_value == 100

    def test_all_null_segment(self):
        values = np.zeros(5, dtype=np.int32)
        nulls = np.ones(5, dtype=bool)
        segment, _, mask = roundtrip(types.INT, values, nulls)
        assert segment.min_value is None
        assert mask.all()

    def test_all_false_mask_is_dropped(self):
        values = np.array([1, 2], dtype=np.int32)
        segment, _, mask = roundtrip(types.INT, values, np.zeros(2, dtype=bool))
        assert segment.null_payload is None
        assert mask is None


class TestSegmentElimination:
    def test_overlaps_range(self):
        segment, _, _ = roundtrip(types.INT, np.array([10, 20, 30], dtype=np.int32))
        assert segment.overlaps_range(25, 35)
        assert segment.overlaps_range(None, 10)
        assert segment.overlaps_range(30, None)
        assert not segment.overlaps_range(31, 40)
        assert not segment.overlaps_range(None, 9)

    def test_all_null_segment_never_overlaps(self):
        segment, _, _ = roundtrip(
            types.INT, np.zeros(3, dtype=np.int32), np.ones(3, dtype=bool)
        )
        assert not segment.overlaps_range(None, None)


class TestArchival:
    def test_archive_roundtrip_ints(self):
        values = np.arange(5000, dtype=np.int32) % 17
        segment = encode_segment(types.INT, values)
        archived = segment.to_archived()
        assert archived.archived
        decoded, _ = archived.decode()
        assert (decoded == values).all()

    def test_archive_roundtrip_strings(self):
        values = np.array(["alpha", "beta", "alpha", "gamma"] * 500, dtype=object)
        archived = encode_segment(types.VARCHAR, values).to_archived()
        decoded, _ = archived.decode()
        assert decoded.tolist() == values.tolist()

    def test_archive_is_idempotent(self):
        segment = encode_segment(types.INT, np.array([1, 2, 3], dtype=np.int32))
        archived = segment.to_archived()
        assert archived.to_archived() is archived

    def test_unarchive_restores_plain_form(self):
        values = np.array([3, 1, 4, 1, 5] * 100, dtype=np.int32)
        segment = encode_segment(types.INT, values)
        restored = segment.to_archived().to_unarchived()
        assert not restored.archived
        decoded, _ = restored.decode()
        assert (decoded == values).all()

    def test_metadata_survives_archival(self):
        values = np.array([10, 99], dtype=np.int32)
        archived = encode_segment(types.INT, values).to_archived()
        assert archived.min_value == 10
        assert archived.max_value == 99
        assert archived.overlaps_range(50, 120)


int_columns = st.lists(
    st.one_of(st.none(), st.integers(min_value=-(2**31), max_value=2**31 - 1)),
    min_size=1,
    max_size=300,
)


@settings(max_examples=60, deadline=None)
@given(int_columns)
def test_int_segment_roundtrip_property(raw):
    values = np.array([0 if v is None else v for v in raw], dtype=np.int32)
    nulls = np.array([v is None for v in raw])
    segment = encode_segment(types.INT, values, nulls if nulls.any() else None)
    decoded, mask = segment.decode()
    for i, v in enumerate(raw):
        if v is None:
            assert mask is not None and mask[i]
        else:
            assert decoded[i] == v


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.text(alphabet="abcdef", max_size=6),
        min_size=1,
        max_size=150,
    )
)
def test_string_segment_roundtrip_property(raw):
    values = np.empty(len(raw), dtype=object)
    values[:] = raw
    segment = encode_segment(types.VARCHAR, values)
    decoded, _ = segment.decode()
    assert decoded.tolist() == raw


class TestAllNullStringSegment:
    """Regression: all-NULL VARCHAR segments have an empty dictionary but a
    zero-filled code stream (found by the differential property tests)."""

    def test_decode(self):
        values = np.empty(4, dtype=object)
        values[:] = [""] * 4
        nulls = np.ones(4, dtype=bool)
        segment = encode_segment(types.VARCHAR, values, nulls)
        decoded, mask = segment.decode()
        assert mask.all()
        assert decoded.shape == (4,)

    def test_through_columnstore(self):
        from repro import Database

        db = Database()
        db.sql("CREATE TABLE t (k INT, s VARCHAR)")
        db.sql("INSERT INTO t VALUES (1, NULL), (2, NULL)")
        db.run_tuple_mover("t", include_open=True)
        assert db.sql("SELECT COUNT(*) AS n FROM t").scalar() == 2
        assert db.sql("SELECT COUNT(s) AS n FROM t").scalar() == 0
