"""Tests for the archival (LZ77) codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.storage import xpress


class TestRoundTrip:
    def test_empty(self):
        assert xpress.decompress(xpress.compress(b"")) == b""

    def test_short_literal_only(self):
        data = b"abc"
        assert xpress.decompress(xpress.compress(data)) == data

    def test_repetitive_shrinks(self):
        data = b"hello world " * 500
        compressed = xpress.compress(data)
        assert len(compressed) < len(data) // 5
        assert xpress.decompress(compressed) == data

    def test_overlapping_match(self):
        # A run of one byte exercises offset < match_len copying.
        data = b"a" * 1000
        compressed = xpress.compress(data)
        assert xpress.decompress(compressed) == data
        assert len(compressed) < 30

    def test_incompressible_data_roundtrips(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, size=4096, dtype=np.uint8).tobytes()
        compressed = xpress.compress(data)
        assert xpress.decompress(compressed) == data
        # Random bytes should not shrink (modest expansion allowed).
        assert len(compressed) <= len(data) * 1.1 + 16

    def test_long_literal_run_extension(self):
        # > 15 literals forces length-extension bytes.
        data = bytes(range(200))
        assert xpress.decompress(xpress.compress(data)) == data

    def test_long_match_extension(self):
        data = b"x" * 20 + b"unique" + b"x" * 300
        assert xpress.decompress(xpress.compress(data)) == data


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(EncodingError):
            xpress.decompress(b"NOPE" + b"\x00" * 10)

    def test_truncated(self):
        compressed = xpress.compress(b"hello world " * 10)
        with pytest.raises(EncodingError):
            xpress.decompress(compressed[: len(compressed) // 2])

    def test_too_short(self):
        with pytest.raises(EncodingError):
            xpress.decompress(b"XPR1")


class TestRatio:
    def test_ratio_one_for_empty(self):
        assert xpress.compression_ratio(b"") == 1.0

    def test_ratio_above_one_for_runs(self):
        assert xpress.compression_ratio(b"z" * 10_000) > 50


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=2000))
def test_roundtrip_property(data):
    assert xpress.decompress(xpress.compress(data)) == data


@settings(max_examples=20, deadline=None)
@given(
    st.binary(min_size=1, max_size=64),
    st.integers(min_value=1, max_value=200),
)
def test_repeated_blocks_roundtrip(block, repeats):
    data = block * repeats
    assert xpress.decompress(xpress.compress(data)) == data
