"""Edge-case tests: serde varints, xpress window boundaries, directory
archival sizes, and value-encoding extremes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import types
from repro.errors import EncodingError
from repro.storage import serde, xpress
from repro.storage import value_encoding as ve


class TestVarint:
    def test_zero(self):
        out = bytearray()
        serde.write_varint(out, 0)
        assert bytes(out) == b"\x00"
        assert serde.read_varint(bytes(out), 0) == (0, 1)

    def test_boundaries(self):
        for value in (127, 128, 16383, 16384, 2**32, 2**56):
            out = bytearray()
            serde.write_varint(out, value)
            decoded, pos = serde.read_varint(bytes(out), 0)
            assert decoded == value
            assert pos == len(out)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            serde.write_varint(bytearray(), -1)

    def test_truncated_rejected(self):
        out = bytearray()
        serde.write_varint(out, 2**40)
        with pytest.raises(EncodingError):
            serde.read_varint(bytes(out[:-1]) + b"\x80", len(out) - 1)

    @given(st.integers(min_value=0, max_value=2**62))
    def test_roundtrip_property(self, value):
        out = bytearray()
        serde.write_varint(out, value)
        assert serde.read_varint(bytes(out), 0)[0] == value

    def test_empty_payload_rejected(self):
        with pytest.raises(EncodingError):
            serde.read_varint(b"", 0)

    def test_every_truncation_rejected(self):
        out = bytearray()
        serde.write_varint(out, 2**56 + 12345)
        for cut in range(len(out)):
            with pytest.raises(EncodingError):
                serde.read_varint(bytes(out[:cut]), 0)

    def test_endless_continuation_rejected(self):
        # A corrupt run of continuation bytes must not loop unbounded.
        with pytest.raises(EncodingError):
            serde.read_varint(b"\x80" * 64, 0)


class TestSerializeValues:
    def test_unicode_strings(self):
        values = ["héllo", "日本語", "", "emoji🎉"]
        blob = serde.serialize_values(values, types.VARCHAR)
        assert serde.deserialize_values(blob, types.VARCHAR) == values

    def test_floats_exact(self):
        values = [0.1, -1e300, 1e-300, 0.0]
        blob = serde.serialize_values(values, types.FLOAT)
        assert serde.deserialize_values(blob, types.FLOAT) == values

    def test_negative_ints(self):
        values = [-(2**62), -1, 0, 2**62]
        blob = serde.serialize_values(values, types.BIGINT)
        assert serde.deserialize_values(blob, types.BIGINT) == values

    def test_empty_list(self):
        blob = serde.serialize_values([], types.INT)
        assert serde.deserialize_values(blob, types.INT) == []


class TestShortPayloads:
    """Truncated/corrupt payloads raise EncodingError, never
    IndexError/struct.error — the bounds-checked decode paths."""

    def test_truncated_string_payload(self):
        blob = serde.serialize_values(["hello", "world"], types.VARCHAR)
        for cut in range(1, len(blob)):
            with pytest.raises(EncodingError):
                serde.deserialize_values(blob[:cut], types.VARCHAR)

    def test_truncated_numeric_payload(self):
        for dtype in (types.BIGINT, types.FLOAT):
            blob = serde.serialize_values([1, 2, 3], dtype)
            for cut in range(1, len(blob)):
                with pytest.raises(EncodingError):
                    serde.deserialize_values(blob[:cut], dtype)

    def test_string_length_overruns_payload(self):
        # count=1, declared string length 100, but only 2 payload bytes.
        payload = bytearray()
        serde.write_varint(payload, 1)
        serde.write_varint(payload, 100)
        payload += b"ab"
        with pytest.raises(EncodingError):
            serde.deserialize_values(bytes(payload), types.VARCHAR)

    def test_invalid_utf8_rejected(self):
        payload = bytearray()
        serde.write_varint(payload, 1)
        serde.write_varint(payload, 2)
        payload += b"\xff\xfe"  # not valid UTF-8
        with pytest.raises(EncodingError):
            serde.deserialize_values(bytes(payload), types.VARCHAR)

    def test_count_overruns_numeric_payload(self):
        payload = bytearray()
        serde.write_varint(payload, 1_000_000)  # promises 8 MB of ints
        payload += b"\x00" * 16
        with pytest.raises(EncodingError):
            serde.deserialize_values(bytes(payload), types.BIGINT)


class TestXpressWindow:
    def test_match_just_inside_window(self):
        # A repeat at distance < 65536 must be found.
        data = b"A" * 64 + bytes(range(256)) * 250 + b"A" * 64
        assert xpress.decompress(xpress.compress(data)) == data

    def test_match_beyond_window_still_roundtrips(self):
        # Repeats farther than 64 KiB cannot be referenced, but the data
        # must still round-trip (as literals).
        block = bytes(np.random.default_rng(1).integers(0, 256, 70_000, dtype=np.uint8))
        data = block + block
        assert xpress.decompress(xpress.compress(data)) == data

    def test_min_match_boundary(self):
        # 3-byte repeats are below MIN_MATCH and stay literal.
        data = b"abcXabcYabcZ" * 10
        assert xpress.decompress(xpress.compress(data)) == data


class TestValueEncodingExtremes:
    def test_int64_extremes_roundtrip(self):
        values = np.array([-(2**60), 2**60], dtype=np.int64)
        enc = ve.choose_integer_encoding(values)
        assert (enc.invert(enc.apply(values), np.dtype(np.int64)) == values).all()

    def test_single_value_column(self):
        values = np.array([42424242], dtype=np.int64)
        enc = ve.choose_integer_encoding(values)
        offsets = enc.apply(values)
        assert int(offsets[0]) == 0  # rebased to zero
        assert enc.invert(offsets, np.dtype(np.int64))[0] == 42424242

    def test_all_zeros(self):
        values = np.zeros(10, dtype=np.int64)
        enc = ve.choose_integer_encoding(values)
        assert (enc.invert(enc.apply(values), np.dtype(np.int64)) == 0).all()

    def test_negative_exponent_preserved_through_blob(self):
        from repro.storage.blob import deserialize_segment, serialize_segment
        from repro.storage.segment import encode_segment

        values = (np.arange(100, dtype=np.int64) * 1000) - 50_000
        segment = encode_segment(types.BIGINT, values)
        assert segment.value_enc is not None and segment.value_enc.exponent < 0
        restored = deserialize_segment(serialize_segment(segment))
        assert restored.value_enc == segment.value_enc
        assert (restored.decode()[0] == values).all()


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.text(max_size=20), max_size=50),
)
def test_string_serde_roundtrip_property(values):
    blob = serde.serialize_values(values, types.VARCHAR)
    assert serde.deserialize_values(blob, types.VARCHAR) == values
