"""Tests for run-length encoding."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import rle


class TestSplitRuns:
    def test_empty(self):
        values, lengths = rle.split_runs(np.array([], dtype=np.int64))
        assert values.size == 0
        assert lengths.size == 0

    def test_single_run(self):
        values, lengths = rle.split_runs(np.array([5, 5, 5]))
        assert values.tolist() == [5]
        assert lengths.tolist() == [3]

    def test_alternating(self):
        values, lengths = rle.split_runs(np.array([1, 2, 1, 2]))
        assert values.tolist() == [1, 2, 1, 2]
        assert lengths.tolist() == [1, 1, 1, 1]

    def test_mixed(self):
        values, lengths = rle.split_runs(np.array([7, 7, 7, 2, 2, 9]))
        assert values.tolist() == [7, 2, 9]
        assert lengths.tolist() == [3, 2, 1]

    def test_run_count_matches(self):
        data = np.array([1, 1, 2, 3, 3, 3, 1])
        values, _ = rle.split_runs(data)
        assert rle.run_count(data) == values.size


class TestRleBlock:
    def test_roundtrip(self):
        data = np.array([4, 4, 4, 4, 0, 0, 9, 9, 9], dtype=np.int64)
        block = rle.encode(data)
        assert block.n_runs == 3
        assert (block.decode() == data.astype(np.uint64)).all()

    def test_empty_roundtrip(self):
        block = rle.encode(np.array([], dtype=np.int64))
        assert block.decode().size == 0

    def test_runs_accessor(self):
        block = rle.encode(np.array([1, 1, 5, 5, 5], dtype=np.int64))
        values, lengths = block.runs()
        assert values.tolist() == [1, 5]
        assert lengths.tolist() == [2, 3]

    def test_size_reflects_runs_not_rows(self):
        long_runs = rle.encode(np.full(10_000, 3, dtype=np.int64))
        no_runs = rle.encode(np.arange(10_000, dtype=np.int64))
        assert long_runs.size_bytes < no_runs.size_bytes / 100


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=500))
def test_roundtrip_property(values):
    arr = np.array(values, dtype=np.int64)
    block = rle.encode(arr)
    assert (block.decode().astype(np.int64) == arr).all()


@given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=200))
def test_run_lengths_sum_to_count(values):
    arr = np.array(values, dtype=np.int64)
    _, lengths = rle.split_runs(arr)
    assert int(lengths.sum()) == arr.size
