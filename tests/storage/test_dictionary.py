"""Tests for local and global dictionaries."""

import numpy as np
import pytest

from repro.errors import EncodingError
from repro.storage.dictionary import GlobalDictionary, LocalDictionary


class TestLocalDictionary:
    def test_build_from_strings(self):
        values = np.array(["b", "a", "b", "c", "a"], dtype=object)
        dictionary, codes = LocalDictionary.build(values)
        assert dictionary.values == ["a", "b", "c"]
        assert codes.tolist() == [1, 0, 1, 2, 0]

    def test_build_from_ints(self):
        values = np.array([30, 10, 30, 20])
        dictionary, codes = LocalDictionary.build(values)
        assert dictionary.values == [10, 20, 30]
        assert codes.tolist() == [2, 0, 2, 1]

    def test_decode_inverts_codes(self):
        values = np.array(["x", "y", "x"], dtype=object)
        dictionary, codes = LocalDictionary.build(values)
        assert dictionary.decode(codes).tolist() == ["x", "y", "x"]

    def test_decode_typed(self):
        values = np.array([5, 7, 5], dtype=np.int64)
        dictionary, codes = LocalDictionary.build(values)
        decoded = dictionary.decode_typed(codes, np.dtype(np.int64))
        assert decoded.dtype == np.int64
        assert decoded.tolist() == [5, 7, 5]

    def test_code_of(self):
        dictionary = LocalDictionary(["a", "b"])
        assert dictionary.code_of("b") == 1
        assert dictionary.code_of("zz") is None

    def test_codes_of_missing_raises(self):
        dictionary = LocalDictionary(["a"])
        with pytest.raises(EncodingError):
            dictionary.codes_of(["a", "missing"])

    def test_duplicates_rejected(self):
        with pytest.raises(EncodingError):
            LocalDictionary(["a", "a"])

    def test_size_bytes_counts_strings(self):
        small = LocalDictionary(["a"])
        big = LocalDictionary(["a" * 100])
        assert big.size_bytes > small.size_bytes


class TestRangeCodes:
    @pytest.fixture
    def dictionary(self):
        return LocalDictionary(["apple", "banana", "cherry", "damson"])

    def test_inclusive_range(self, dictionary):
        lo, hi = dictionary.range_codes("banana", "cherry", True, True)
        assert (lo, hi) == (1, 3)

    def test_exclusive_range(self, dictionary):
        lo, hi = dictionary.range_codes("banana", "cherry", False, False)
        assert (lo, hi) == (2, 2)  # empty

    def test_unbounded_low(self, dictionary):
        lo, hi = dictionary.range_codes(None, "banana", True, True)
        assert (lo, hi) == (0, 2)

    def test_unbounded_high(self, dictionary):
        lo, hi = dictionary.range_codes("cherry", None, True, True)
        assert (lo, hi) == (2, 4)

    def test_values_between_entries(self, dictionary):
        # "bx" sits between banana and cherry.
        lo, hi = dictionary.range_codes("bx", "cz", True, True)
        assert (lo, hi) == (2, 3)

    def test_empty_when_inverted(self, dictionary):
        lo, hi = dictionary.range_codes("damson", "apple", True, True)
        assert lo >= hi


class TestGlobalDictionary:
    def test_intern_assigns_stable_ids(self):
        gd = GlobalDictionary()
        assert gd.intern("a") == 0
        assert gd.intern("b") == 1
        assert gd.intern("a") == 0
        assert len(gd) == 2

    def test_lookup(self):
        gd = GlobalDictionary()
        gd.intern_all(["x", "y"])
        assert gd.id_of("y") == 1
        assert gd.value_of(0) == "x"
        assert "x" in gd
        assert gd.id_of("ghost") is None

    def test_size_grows(self):
        gd = GlobalDictionary()
        empty = gd.size_bytes
        gd.intern("some-string")
        assert gd.size_bytes > empty
