"""Tests for the row-store substrate: pages, heap table, indexes, PAGE
compression model."""

import pytest

from repro import types
from repro.errors import StorageError
from repro.rowstore.compression import (
    page_compressed_size,
    table_page_compressed_size,
)
from repro.rowstore.index import RowStoreIndex
from repro.rowstore.page import PAGE_SIZE_BYTES, Page, row_size_bytes
from repro.rowstore.table import RowId, RowStoreTable
from repro.schema import schema


@pytest.fixture
def sch():
    return schema(("id", types.INT, False), ("name", types.VARCHAR), ("v", types.FLOAT))


class TestPage:
    def test_insert_and_get(self, sch):
        page = Page(0)
        slot = page.insert((1, "a", 1.0), 32)
        assert page.get(slot) == (1, "a", 1.0)

    def test_slots_stable_after_delete(self, sch):
        page = Page(0)
        first = page.insert((1, "a", 1.0), 32)
        second = page.insert((2, "b", 2.0), 32)
        assert page.delete(first)
        assert page.get(first) is None
        assert page.get(second) == (2, "b", 2.0)
        assert page.live_count == 1
        assert page.slot_count == 2

    def test_double_delete(self):
        page = Page(0)
        slot = page.insert((1,), 16)
        assert page.delete(slot)
        assert not page.delete(slot)

    def test_full_page_rejects(self):
        page = Page(0)
        assert not page.has_room(PAGE_SIZE_BYTES)
        with pytest.raises(StorageError):
            page.insert((1,), PAGE_SIZE_BYTES)

    def test_update(self):
        page = Page(0)
        slot = page.insert((1,), 16)
        assert page.update(slot, (2,))
        assert page.get(slot) == (2,)
        assert not page.update(99, (3,))

    def test_row_size_accounts_for_strings_and_nulls(self, sch):
        small = row_size_bytes(sch, (1, None, 1.0))
        big = row_size_bytes(sch, (1, "x" * 200, 1.0))
        assert big > small + 150


class TestRowStoreTable:
    def test_insert_scan(self, sch):
        table = RowStoreTable(sch)
        rids = table.insert_many([(i, f"n{i}", float(i)) for i in range(10)])
        assert table.row_count == 10
        assert len(set(rids)) == 10
        assert [row[0] for _, row in table.scan()] == list(range(10))

    def test_pages_fill_and_roll(self, sch):
        table = RowStoreTable(sch)
        table.insert_many([(i, "x" * 100, 1.0) for i in range(500)])
        assert table.page_count > 1
        assert table.size_bytes == table.page_count * PAGE_SIZE_BYTES

    def test_get_delete_update(self, sch):
        table = RowStoreTable(sch)
        rid = table.insert((1, "a", 1.0))
        assert table.get(rid) == (1, "a", 1.0)
        assert table.update(rid, (1, "b", 2.0))
        assert table.get(rid)[1] == "b"
        assert table.delete(rid)
        assert table.get(rid) is None
        assert table.row_count == 0

    def test_bogus_rid(self, sch):
        table = RowStoreTable(sch)
        assert table.get(RowId(5, 0)) is None
        assert not table.delete(RowId(5, 0))

    def test_oversized_row_rejected(self, sch):
        table = RowStoreTable(sch)
        with pytest.raises(StorageError):
            table.insert((1, "x" * 10_000, 1.0))


class TestRowStoreIndex:
    @pytest.fixture
    def table(self, sch):
        table = RowStoreTable(sch)
        table.insert_many([(i, f"n{i % 3}", float(i)) for i in range(30)])
        return table

    def test_builds_from_existing_rows(self, table):
        index = RowStoreIndex(table, ["id"])
        assert len(index) == 30

    def test_seek_equal(self, table):
        index = RowStoreIndex(table, ["name"])
        hits = list(index.seek_equal(("n1",)))
        assert len(hits) == 10
        assert all(table.get(rid)[1] == "n1" for rid in hits)

    def test_seek_range(self, table):
        index = RowStoreIndex(table, ["id"])
        hits = [table.get(rid)[0] for rid in index.seek_range((5,), (9,))]
        assert sorted(hits) == [5, 6, 7, 8, 9]

    def test_maintained_on_delete(self, table):
        index = RowStoreIndex(table, ["id"])
        rid = next(iter(index.seek_equal((7,))))
        row = table.get(rid)
        table.delete(rid)
        index.delete(row, rid)
        assert list(index.seek_equal((7,))) == []

    def test_null_keys_not_indexed(self, sch):
        table = RowStoreTable(sch)
        rid = table.insert((1, None, 1.0))
        index = RowStoreIndex(table, ["name"])
        assert len(index) == 0
        index.insert((1, None, 1.0), rid)
        assert len(index) == 0

    def test_seek_arity_checked(self, table):
        index = RowStoreIndex(table, ["id"])
        with pytest.raises(StorageError):
            list(index.seek_equal((1, 2)))


class TestPageCompressionModel:
    def test_repeated_values_compress(self, sch):
        repeated = [(1, "same-string", 2.0)] * 100
        distinct = [(i, f"unique-{i:06d}", float(i)) for i in range(100)]
        assert page_compressed_size(sch, repeated) < page_compressed_size(sch, distinct)

    def test_common_prefixes_compress(self, sch):
        prefixed = [(i, f"/products/category/item-{i}", 1.0) for i in range(100)]
        random_strings = [(i, f"{i}-xyzzy-{i * 7919}", 1.0) for i in range(100)]
        assert page_compressed_size(sch, prefixed) < page_compressed_size(sch, random_strings)

    def test_small_ints_compress(self):
        sch2 = schema(("a", types.BIGINT, False))
        small = [(1,)] * 100
        huge = [(2**60 + i,) for i in range(100)]
        assert page_compressed_size(sch2, small) < page_compressed_size(sch2, huge)

    def test_empty_page(self, sch):
        assert page_compressed_size(sch, []) == 96

    def test_table_level_is_sum_of_pages(self, sch):
        table = RowStoreTable(sch)
        table.insert_many([(i, "x", 1.0) for i in range(200)])
        total = table_page_compressed_size(table)
        assert 0 < total < table.used_bytes
