"""save() skips rewriting snapshots whose state the path already holds."""

import pytest

from repro import Database, StoreConfig
from repro.observability import MetricsRegistry
from repro.observability.registry import set_registry
from repro.storage.diskio import DiskIO
from repro.storage.snapshot import load_manifest


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    previous = set_registry(reg)
    yield reg
    set_registry(previous)


def build_db() -> Database:
    db = Database(StoreConfig(rowgroup_size=16, bulk_load_threshold=8))
    db.sql("CREATE TABLE t (a INT NOT NULL, b VARCHAR)")
    db.bulk_load("t", [(i, f"v{i}") for i in range(20)])
    db.sql("CREATE TABLE u (k INT) USING rowstore")
    db.insert("u", [(1,), (2,)])
    return db


def snapshot_id(target) -> int:
    return load_manifest(DiskIO(), target).snapshot_id


class TestSkipUnchanged:
    def test_resave_of_unchanged_db_is_skipped(self, tmp_path, registry):
        db = build_db()
        target = tmp_path / "db"
        db.save(str(target))
        first = snapshot_id(target)
        db.save(str(target))
        assert snapshot_id(target) == first  # no new snapshot written
        assert registry.counter("storage.snapshot.saves_skipped") == 1

    def test_mutation_invalidates_skip(self, tmp_path, registry):
        db = build_db()
        target = tmp_path / "db"
        db.save(str(target))
        db.insert("t", [(100, "new")])
        db.save(str(target))
        assert snapshot_id(target) == 2
        assert registry.counter("storage.snapshot.saves_skipped") == 0

    def test_ddl_invalidates_skip(self, tmp_path, registry):
        db = build_db()
        target = tmp_path / "db"
        db.save(str(target))
        db.create_index("u", "by_k", ["k"])
        db.save(str(target))
        assert snapshot_id(target) == 2
        assert registry.counter("storage.snapshot.saves_skipped") == 0

    def test_load_then_save_same_path_is_skipped(self, tmp_path, registry):
        """The headline bug: reopening a database and saving it back used
        to rewrite every blob."""
        build_db().save(str(tmp_path / "db"))
        loaded = Database.load(str(tmp_path / "db"))
        loaded.save(str(tmp_path / "db"))
        assert snapshot_id(tmp_path / "db") == 1
        assert registry.counter("storage.snapshot.saves_skipped") == 1

    def test_save_to_different_path_still_writes(self, tmp_path, registry):
        build_db().save(str(tmp_path / "a"))
        loaded = Database.load(str(tmp_path / "a"))
        loaded.save(str(tmp_path / "b"))
        assert snapshot_id(tmp_path / "b") == 1
        assert registry.counter("storage.snapshot.saves_skipped") == 0

    def test_force_overrides_skip(self, tmp_path, registry):
        db = build_db()
        target = tmp_path / "db"
        db.save(str(target))
        db.save(str(target), force=True)
        assert snapshot_id(target) == 2
        assert registry.counter("storage.snapshot.saves_skipped") == 0

    def test_externally_cleared_directory_is_rewritten(self, tmp_path, registry):
        """Skipping is guarded by the manifest actually being there."""
        import shutil

        db = build_db()
        target = tmp_path / "db"
        db.save(str(target))
        shutil.rmtree(target)
        db.save(str(target))
        assert snapshot_id(target) >= 1
        assert registry.counter("storage.snapshot.saves_skipped") == 0

    def test_fresh_database_never_skips_first_save(self, tmp_path, registry):
        db = build_db()
        db.save(str(tmp_path / "db"))
        assert registry.counter("storage.snapshot.saves_skipped") == 0

    def test_replayed_wal_records_invalidate_skip(self, tmp_path, registry):
        target = tmp_path / "db"
        db = Database.open(str(target))
        db.sql("CREATE TABLE t (a INT)")
        db.save(str(target))
        db.insert("t", [(1,)])  # logged, not checkpointed
        db.close()
        # Reopen replays one record: the snapshot is stale, so the next
        # save must write.
        reopened = Database.open(str(target))
        reopened.save(str(target))
        assert snapshot_id(target) == 2
        assert registry.counter("storage.snapshot.saves_skipped") == 0
        # And now that the snapshot covers the log, a re-save skips.
        reopened.save(str(target))
        assert registry.counter("storage.snapshot.saves_skipped") == 1
