"""Tests for the benchmark workloads: generators, star schema and the
full 22-query suite (batch vs row equivalence on identical data)."""

import numpy as np
import pytest

from repro import StoreConfig
from repro.bench.datagen import DATASET_SPECS, make_dataset
from repro.bench.harness import ReportTable, assert_same_result, time_call
from repro.bench.queries import QUERY_SUITE, query_by_id
from repro.bench.star_schema import build_star_schema, generate_star_data


class TestDatagen:
    @pytest.mark.parametrize("spec", DATASET_SPECS, ids=lambda s: s.name)
    def test_generates_requested_rows(self, spec):
        dataset = make_dataset(spec.name, 500)
        assert dataset.row_count == 500
        assert set(dataset.columns) == set(dataset.table_schema.names)

    def test_deterministic(self):
        a = make_dataset("low_ndv_ints", 200, seed=7)
        b = make_dataset("low_ndv_ints", 200, seed=7)
        for name in a.columns:
            assert (a.columns[name] == b.columns[name]).all()

    def test_rows_match_columns(self):
        dataset = make_dataset("wide_mixed", 100)
        rows = dataset.rows()
        assert len(rows) == 100
        assert rows[0][0] == dataset.columns["order_id"][0]

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            make_dataset("nope", 10)

    def test_low_ndv_is_more_compressible_than_high_ndv(self):
        from repro.storage.columnstore import ColumnStoreIndex
        from repro.storage.config import StoreConfig

        ratios = {}
        for name in ("low_ndv_ints", "high_ndv_ints"):
            dataset = make_dataset(name, 2000)
            index = ColumnStoreIndex(
                dataset.table_schema, StoreConfig(rowgroup_size=2000)
            )
            index.bulk_load_columns(dataset.columns)
            ratios[name] = (
                index.directory.raw_size_bytes / index.directory.encoded_size_bytes
            )
        assert ratios["low_ndv_ints"] > ratios["high_ndv_ints"]


class TestStarSchema:
    def test_generate_deterministic(self):
        a = generate_star_data(100, seed=3)
        b = generate_star_data(100, seed=3)
        assert a["store_sales"] == b["store_sales"]

    def test_referential_integrity(self):
        data = generate_star_data(300)
        customer_ids = {row[0] for row in data["customer"]}
        item_ids = {row[0] for row in data["item"]}
        for fact in data["store_sales"]:
            assert fact[2] in customer_ids
            assert fact[3] in item_ids

    def test_facts_date_ordered(self):
        data = generate_star_data(200)
        dates = [row[1] for row in data["store_sales"]]
        assert dates == sorted(dates)

    def test_build_columnstore(self):
        star = build_star_schema(
            400, storage="columnstore",
            config=StoreConfig(rowgroup_size=128, bulk_load_threshold=100),
        )
        assert star.db.table("store_sales").row_count == 400
        assert star.db.table("store_sales").columnstore is not None

    def test_build_rowstore(self):
        star = build_star_schema(200, storage="rowstore")
        assert star.db.table("store_sales").rowstore is not None
        assert star.db.table("store_sales").columnstore is None


@pytest.fixture(scope="module")
def small_star():
    return build_star_schema(
        1500,
        storage="columnstore",
        config=StoreConfig(rowgroup_size=256, bulk_load_threshold=100),
    )


class TestQuerySuite:
    def test_suite_has_22_queries(self):
        assert len(QUERY_SUITE) == 22
        assert len({q.qid for q in QUERY_SUITE}) == 22

    def test_query_by_id(self):
        assert query_by_id("Q07").qid == "Q07"
        with pytest.raises(KeyError):
            query_by_id("Q99")

    @pytest.mark.parametrize("query", QUERY_SUITE, ids=lambda q: q.qid)
    def test_batch_and_row_agree(self, small_star, query):
        """Every suite query returns identical results in both modes."""
        rows = assert_same_result(
            small_star.db, small_star.db, query.sql, "batch", "row"
        )
        if query.qid not in ("Q03",):  # Q03 may legitimately select 0 rows
            assert rows >= 1


class TestHarness:
    def test_time_call(self):
        timing = time_call(lambda: [1, 2, 3], repeat=2)
        assert timing.seconds >= 0
        assert timing.result_rows == 3

    def test_report_table_renders(self):
        table = ReportTable("T", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("beta", 12345)
        table.add_note("synthetic")
        text = table.render()
        assert "alpha" in text and "12,345" in text and "note: synthetic" in text

    def test_report_table_arity_checked(self):
        table = ReportTable("T", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_assert_same_result_detects_difference(self, small_star):
        other = build_star_schema(100, storage="columnstore")
        with pytest.raises(AssertionError):
            assert_same_result(
                small_star.db,
                other.db,
                "SELECT COUNT(*) AS n FROM store_sales",
                "batch",
                "batch",
            )
