"""Tests for the data type system."""

import datetime

import numpy as np
import pytest

from repro import types
from repro.errors import TypeMismatchError
from repro.types import DataType, TypeKind, common_numeric_type


class TestCoercion:
    def test_int_accepts_python_int(self):
        assert types.INT.coerce(42) == 42

    def test_int_accepts_numpy_int(self):
        assert types.INT.coerce(np.int64(7)) == 7

    def test_int_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            types.INT.coerce(True)

    def test_int_rejects_float(self):
        with pytest.raises(TypeMismatchError):
            types.INT.coerce(1.5)

    def test_int_range_limits(self):
        assert types.INT.coerce(2**31 - 1) == 2**31 - 1
        with pytest.raises(TypeMismatchError):
            types.INT.coerce(2**31)

    def test_bigint_range(self):
        assert types.BIGINT.coerce(2**31) == 2**31
        with pytest.raises(TypeMismatchError):
            types.BIGINT.coerce(2**63)

    def test_null_passes_through(self):
        for dtype in (types.INT, types.FLOAT, types.VARCHAR, types.DATE, types.BOOL):
            assert dtype.coerce(None) is None

    def test_float_accepts_int(self):
        assert types.FLOAT.coerce(3) == 3.0

    def test_decimal_scales_floats(self):
        assert types.decimal(2).coerce(1.5) == 150

    def test_decimal_scales_ints(self):
        assert types.decimal(2).coerce(3) == 300

    def test_decimal_rounds(self):
        assert types.decimal(2).coerce(1.005) in (100, 101)  # float rounding

    def test_varchar_accepts_str(self):
        assert types.VARCHAR.coerce("hi") == "hi"

    def test_varchar_length_enforced(self):
        with pytest.raises(TypeMismatchError):
            types.varchar(3).coerce("toolong")

    def test_varchar_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            types.VARCHAR.coerce(5)

    def test_date_from_iso_string(self):
        assert types.DATE.coerce("1970-01-02") == 1

    def test_date_from_date_object(self):
        assert types.DATE.coerce(datetime.date(1970, 1, 11)) == 10

    def test_date_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            types.DATE.coerce("not-a-date")

    def test_bool(self):
        assert types.BOOL.coerce(True) is True
        with pytest.raises(TypeMismatchError):
            types.BOOL.coerce(1)


class TestPresentation:
    def test_date_round_trip(self):
        physical = types.DATE.coerce("2024-03-15")
        assert types.DATE.present(physical) == datetime.date(2024, 3, 15)

    def test_decimal_round_trip(self):
        dt = types.decimal(2)
        assert dt.present(dt.coerce(12.34)) == pytest.approx(12.34)

    def test_none_presents_as_none(self):
        assert types.INT.present(None) is None

    def test_numpy_scalars_present_as_python(self):
        assert isinstance(types.INT.present(np.int32(5)), int)
        assert isinstance(types.FLOAT.present(np.float64(1.5)), float)


class TestTypeLattice:
    def test_int_plus_int(self):
        assert common_numeric_type(types.INT, types.INT) == types.INT

    def test_int_plus_bigint(self):
        assert common_numeric_type(types.INT, types.BIGINT) == types.BIGINT

    def test_float_dominates(self):
        assert common_numeric_type(types.FLOAT, types.decimal(2)) == types.FLOAT

    def test_decimal_scale_widens(self):
        result = common_numeric_type(types.decimal(2), types.decimal(4))
        assert result.scale == 4

    def test_varchar_not_numeric(self):
        with pytest.raises(TypeMismatchError):
            common_numeric_type(types.VARCHAR, types.INT)


class TestTypeValidation:
    def test_scale_only_for_decimal(self):
        with pytest.raises(TypeMismatchError):
            DataType(TypeKind.INT, scale=2)

    def test_length_only_for_varchar(self):
        with pytest.raises(TypeMismatchError):
            DataType(TypeKind.INT, length=5)

    def test_decimal_scale_bounds(self):
        with pytest.raises(TypeMismatchError):
            types.decimal(19)

    def test_str_forms(self):
        assert str(types.INT) == "INT"
        assert str(types.decimal(3)) == "DECIMAL(18,3)"
        assert str(types.varchar(10)) == "VARCHAR(10)"
