"""Tests for table schemas and row validation."""

import pytest

from repro import types
from repro.errors import ConstraintError, SchemaError, TypeMismatchError
from repro.schema import ColumnDef, TableSchema, schema


@pytest.fixture
def sales_schema():
    return schema(
        ("id", types.INT, False),
        ("customer", types.VARCHAR),
        ("amount", types.decimal(2)),
    )


class TestSchemaConstruction:
    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            TableSchema([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchemaError):
            schema(("a", types.INT), ("A", types.INT))

    def test_rejects_bad_names(self):
        with pytest.raises(SchemaError):
            ColumnDef("has space", types.INT)
        with pytest.raises(SchemaError):
            ColumnDef("", types.INT)

    def test_underscore_names_ok(self):
        assert ColumnDef("order_date", types.DATE).name == "order_date"

    def test_names_property(self, sales_schema):
        assert sales_schema.names == ["id", "customer", "amount"]


class TestLookup:
    def test_position_case_insensitive(self, sales_schema):
        assert sales_schema.position("CUSTOMER") == 1

    def test_unknown_column(self, sales_schema):
        with pytest.raises(SchemaError):
            sales_schema.position("nope")

    def test_contains(self, sales_schema):
        assert "id" in sales_schema
        assert "missing" not in sales_schema

    def test_dtype(self, sales_schema):
        assert sales_schema.dtype("amount").scale == 2


class TestRowValidation:
    def test_coerce_valid_row(self, sales_schema):
        row = sales_schema.coerce_row((1, "alice", 9.99))
        assert row == (1, "alice", 999)

    def test_arity_mismatch(self, sales_schema):
        with pytest.raises(SchemaError):
            sales_schema.coerce_row((1, "alice"))

    def test_not_null_enforced(self, sales_schema):
        with pytest.raises(ConstraintError):
            sales_schema.coerce_row((None, "alice", 1.0))

    def test_nullable_accepts_none(self, sales_schema):
        row = sales_schema.coerce_row((1, None, None))
        assert row == (1, None, None)

    def test_type_mismatch_propagates(self, sales_schema):
        with pytest.raises(TypeMismatchError):
            sales_schema.coerce_row(("x", "alice", 1.0))

    def test_coerce_rows(self, sales_schema):
        rows = sales_schema.coerce_rows([(1, "a", 1.0), (2, "b", 2.0)])
        assert len(rows) == 2


class TestProjection:
    def test_project_reorders(self, sales_schema):
        projected = sales_schema.project(["amount", "id"])
        assert projected.names == ["amount", "id"]

    def test_project_unknown_raises(self, sales_schema):
        with pytest.raises(SchemaError):
            sales_schema.project(["ghost"])
