"""Legacy setup shim: enables `pip install -e .` on environments without
the `wheel` package (the PEP-517 editable path requires it)."""

from setuptools import setup

setup()
